"""Unit tests for the shard planner and record routing (repro.sim.shard).

The end-to-end byte-identity contract lives in
``test_shard_determinism.py``; this file pins the plan-time pieces:
partitioning, barrier tiling, the zero-lookahead guard, and the total
order of cross-domain record routing (including the property that a
window barrier can never reorder a stream it splits).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.net.boundary import WIRE_FLOW, BoundaryOutbox
from repro.net.packet import Packet
from repro.sim import BoundaryWire, ShardPlan
from repro.sim.shard import route_records


def _wire(src="a", dst="b", lookahead=0.1):
    return BoundaryWire(src=src, dst=dst, lookahead=lookahead)


class TestShardPlanBuild:
    def test_contiguous_block_partition(self):
        plan = ShardPlan.build(["a", "b", "c", "d"], shards=2)
        assert plan.assignment == (0, 0, 1, 1)
        assert plan.n_shards == 2

    def test_uneven_partition_front_loads(self):
        plan = ShardPlan.build(list("abcde"), shards=2)
        assert plan.assignment == (0, 0, 0, 1, 1)

    def test_shards_clamped_to_domain_count(self):
        plan = ShardPlan.build(["a", "b"], shards=8)
        assert plan.n_shards == 2
        assert plan.assignment == (0, 1)

    def test_shard_of_and_domains_of(self):
        plan = ShardPlan.build(["a", "b", "c", "d"], shards=2)
        assert plan.shard_of("a") == 0 and plan.shard_of("d") == 1
        assert plan.domains_of(0) == (0, 1)
        assert plan.domains_of(1) == (2, 3)

    def test_no_domains_rejected(self):
        with pytest.raises(SimulationError, match="no domains"):
            ShardPlan.build([])

    def test_duplicate_domains_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            ShardPlan.build(["a", "a"])

    def test_bad_shard_count_rejected(self):
        with pytest.raises(SimulationError, match="shards"):
            ShardPlan.build(["a"], shards=0)

    def test_unknown_boundary_domain_rejected(self):
        with pytest.raises(SimulationError, match="unknown domain"):
            ShardPlan.build(["a"], [_wire("a", "ghost")])

    def test_lookahead_is_minimum_over_wires(self):
        plan = ShardPlan.build(
            ["a", "b"],
            [_wire("a", "b", 0.5), _wire("b", "a", 0.2)],
            shards=2,
        )
        assert plan.lookahead == pytest.approx(0.2)
        assert plan.window == pytest.approx(0.2)

    def test_window_override_below_lookahead(self):
        plan = ShardPlan.build(["a", "b"], [_wire()], shards=2, window=0.05)
        assert plan.window == pytest.approx(0.05)

    def test_window_above_lookahead_rejected(self):
        with pytest.raises(SimulationError, match="exceeds the lookahead"):
            ShardPlan.build(["a", "b"], [_wire(lookahead=0.1)], window=0.2)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(SimulationError, match="window must be positive"):
            ShardPlan.build(["a", "b"], [_wire()], window=0.0)

    def test_independent_domains_need_no_window(self):
        plan = ShardPlan.build(["a", "b"], shards=2)
        assert plan.window is None
        assert plan.barriers(10.0) == (10.0,)


class TestZeroLookaheadGuard:
    def test_falls_back_to_single_degraded_shard(self):
        with pytest.warns(UserWarning, match="zero propagation delay"):
            plan = ShardPlan.build(
                ["a", "b"], [_wire(lookahead=0.0)], shards=2
            )
        assert plan.degraded
        assert plan.n_shards == 1
        assert plan.assignment == (0, 0)
        assert plan.window is None and plan.lookahead is None

    def test_warning_names_the_culprit_wire(self):
        wires = [_wire("a", "b", 0.5), _wire("b", "a", 0.0)]
        with pytest.warns(UserWarning, match="b->a"):
            ShardPlan.build(["a", "b"], wires, shards=2)

    def test_degraded_plan_runs_one_open_window(self):
        with pytest.warns(UserWarning):
            plan = ShardPlan.build(["a", "b"], [_wire(lookahead=0.0)], shards=4)
        assert plan.barriers(3.0) == (3.0,)


class TestBarriers:
    def test_tiling_ends_exactly_at_duration(self):
        plan = ShardPlan.build(["a", "b"], [_wire(lookahead=0.1)], shards=2)
        assert plan.barriers(0.35) == pytest.approx((0.1, 0.2, 0.3, 0.35))

    def test_exact_multiple_has_no_sliver(self):
        plan = ShardPlan.build(["a", "b"], [_wire(lookahead=0.1)], shards=2)
        barriers = plan.barriers(0.3)
        assert len(barriers) == 3
        assert barriers[-1] == 0.3

    def test_zero_duration_single_barrier(self):
        plan = ShardPlan.build(["a", "b"], [_wire(lookahead=0.1)], shards=2)
        assert plan.barriers(0.0) == (0.0,)

    def test_window_longer_than_duration(self):
        plan = ShardPlan.build(["a", "b"], [_wire(lookahead=5.0)], shards=2)
        assert plan.barriers(2.0) == (2.0,)


def _rec(time, seq=0):
    # (arrival_time, seq, size, created_at, app, vf_index)
    return (time, seq, 1500, 0.0, "A", 0)


class TestRouteRecords:
    def test_merges_by_time_then_source_then_position(self):
        a = [_rec(1.0, 1), _rec(3.0, 2)]
        b = [_rec(1.0, 3), _rec(2.0, 4)]
        routed = route_records([(1, "d", b), (0, "d", a)])
        assert [r[1] for r in routed["d"]] == [1, 3, 4, 2]

    def test_equal_time_same_source_keeps_wire_order(self):
        a = [_rec(1.0, 10), _rec(1.0, 11), _rec(1.0, 12)]
        routed = route_records([(0, "d", a)])
        assert [r[1] for r in routed["d"]] == [10, 11, 12]

    def test_destinations_are_independent(self):
        routed = route_records([(0, "x", [_rec(1.0, 1)]), (0, "y", [_rec(0.5, 2)])])
        assert set(routed) == {"x", "y"}

    def test_empty_shipments(self):
        assert route_records([]) == {}
        assert route_records([(0, "d", [])]) == {}


@st.composite
def _streams(draw):
    """Two per-source streams of non-decreasing arrival times (floats
    snapped to a small grid so equal timestamps are common)."""
    def stream(src):
        deltas = draw(st.lists(st.integers(min_value=0, max_value=3),
                               min_size=0, max_size=20))
        times, t = [], 0.0
        for d in deltas:
            t += d * 0.25
            times.append(t)
        return [(t, i + src * 1000, 1500, 0.0, "A", 0)
                for i, t in enumerate(times)]
    return stream(0), stream(1)


class TestBarrierSplitProperty:
    @settings(max_examples=200, deadline=None)
    @given(_streams(), st.integers(min_value=0, max_value=16))
    def test_window_split_never_reorders(self, streams, barrier_step):
        """Routing a stream in two windows == routing it whole.

        This is the invariant that makes the window count (and hence
        the shard count) invisible to a destination domain: however the
        barriers slice the traffic, concatenating the per-window trains
        reproduces the unsplit global order — equal-timestamp trains
        included.
        """
        a, b = streams
        barrier = barrier_step * 0.25
        whole = route_records([(0, "d", a), (1, "d", b)]).get("d", [])
        first = route_records([
            (0, "d", [r for r in a if r[0] <= barrier]),
            (1, "d", [r for r in b if r[0] <= barrier]),
        ]).get("d", [])
        second = route_records([
            (0, "d", [r for r in a if r[0] > barrier]),
            (1, "d", [r for r in b if r[0] > barrier]),
        ]).get("d", [])
        assert first + second == whole

    @settings(max_examples=200, deadline=None)
    @given(_streams(), st.lists(st.integers(min_value=0, max_value=16),
                                min_size=1, max_size=4))
    def test_outbox_emission_order_survives_arbitrary_splits(
        self, streams, barrier_steps
    ):
        """Boundary emission order survives any barrier placement.

        Feed two outboxes through the real lazy-sink protocol
        (``receive_later``, the exact call the link and the fluid
        lane's epilogue make), drain them at an arbitrary ladder of
        barriers, route each window's trains, and concatenate: the
        result must equal routing one whole drain. Empty drains are
        skipped, as ``_drain_shipments`` does, so the property also
        pins that skipping a window's empty shipment can never perturb
        the order.
        """
        a, b = streams
        barriers = sorted({step * 0.25 for step in barrier_steps})
        barriers.append(float("inf"))
        boxes = (BoundaryOutbox("nic0", "d"), BoundaryOutbox("nic1", "d"))
        whole = route_records([(0, "d", a), (1, "d", b)]).get("d", [])
        fed = [0, 0]
        spliced = []
        for barrier in barriers:
            shipments = []
            for i, (box, stream) in enumerate(zip(boxes, (a, b))):
                while fed[i] < len(stream) and stream[fed[i]][0] <= barrier:
                    time, seq, size, created_at, app, vf_index = stream[fed[i]]
                    box.receive_later(
                        time,
                        Packet(seq, size, WIRE_FLOW, created_at,
                               app=app, vf_index=vf_index),
                    )
                    fed[i] += 1
                train = box.drain()
                if train:
                    shipments.append((i, box.dst, train))
            spliced.extend(route_records(shipments).get("d", []))
        assert spliced == whole
        assert all(not box.records for box in boxes)
