"""Integration tests for the assembled NIC pipeline."""

import pytest

from repro.core import FlowValveFrontend
from repro.core.sched_tree import SchedulingParams
from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.net.packet import DropReason
from repro.nic import ForwardAllApp, NicConfig, NicPipeline
from repro.sim import Simulator
from repro.tc.parser import parse_script

FAIR_SCRIPT = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 40gbit ceil 40gbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
fv filter add dev eth0 parent 1: match app=A flowid 1:10
fv filter add dev eth0 parent 1: match app=B flowid 1:20
"""


def build_flowvalve_nic(sim, cfg=None, link=40e9):
    frontend = FlowValveFrontend.from_script(
        FAIR_SCRIPT, link_rate_bps=link,
        params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
    )
    sink = PacketSink(sim, rate_window=0.001, record_delays=True)
    nic = NicPipeline.with_flowvalve(
        sim, cfg if cfg is not None else NicConfig(), frontend, receiver=sink.receive
    )
    return nic, sink, frontend


def blast(sim, nic, app, pps, duration, size=64, vf=0):
    factory = PacketFactory()
    flow = FiveTuple(f"10.0.0.{vf}", "10.0.1.1", 1, 2)

    def gen():
        while sim.now < duration:
            nic.submit(factory.make(size, flow, sim.now, app=app, vf_index=vf))
            yield 1.0 / pps

    sim.process(gen())


class TestPassThrough:
    def test_forwards_everything_under_capacity(self):
        sim = Simulator(seed=1)
        sink = PacketSink(sim, record_delays=True)
        nic = NicPipeline(sim, NicConfig(), ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, "A", pps=1e6, duration=0.002)
        sim.run(until=0.003)
        assert nic.dropped == 0
        assert sink.total_packets == nic.submitted

    def test_base_latency_is_microseconds(self):
        sim = Simulator(seed=1)
        sink = PacketSink(sim, record_delays=True)
        nic = NicPipeline(sim, NicConfig(), ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, "A", pps=1e5, duration=0.002)
        sim.run(until=0.003)
        mean = sum(sink.delays) / len(sink.delays)
        # rx_dma(8) + worker(~2) + tx_fixed(4) + wire ≈ 15 us.
        assert 5e-6 < mean < 50e-6

    def test_capacity_bounded_by_workers(self):
        cfg = NicConfig()
        sim = Simulator(seed=1)
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, "A", pps=80e6, duration=0.001)  # way over capacity
        sim.run(until=0.002)
        capacity = cfg.worker_capacity_pps(cfg.costs.fixed_overhead)
        achieved = sink.total_packets / 0.002
        assert achieved < 1.1 * capacity


class TestFlowValveOnNic:
    def test_line_rate_at_large_packets(self):
        sim = Simulator(seed=1)
        nic, sink, _ = build_flowvalve_nic(sim)
        blast(sim, nic, "A", pps=2.5e6, duration=0.003, size=1518, vf=0)
        blast(sim, nic, "B", pps=2.5e6, duration=0.003, size=1518, vf=1)
        # Measure the steady window after the buckets/pipeline warm up.
        snapshot = {}
        sim.schedule_at(0.001, lambda: snapshot.update(bytes=sink.total_bytes))
        sim.run(until=0.003)
        achieved_bps = (sink.total_bytes - snapshot["bytes"]) * 8 / 0.002
        assert achieved_bps > 0.9 * 40e9

    def test_processing_bound_at_64b(self):
        sim = Simulator(seed=1)
        nic, sink, _ = build_flowvalve_nic(sim)
        blast(sim, nic, "A", pps=20e6, duration=0.002, size=64, vf=0)
        blast(sim, nic, "B", pps=20e6, duration=0.002, size=64, vf=1)
        sim.run(until=0.0025)
        mpps = sink.total_packets / 0.0025 / 1e6
        # The calibrated NP bound (±15%), far below the 59.5 Mpps wire.
        assert 16.0 < mpps < 23.0

    def test_scheduler_drops_marked(self):
        sim = Simulator(seed=1)
        nic, sink, frontend = build_flowvalve_nic(sim, link=1e9)  # tiny policy on fast NIC
        blast(sim, nic, "A", pps=2e6, duration=0.002, size=1518, vf=0)
        sim.run(until=0.003)
        assert nic.drops_by_reason[DropReason.SCHED_RED] > 0

    def test_unclassified_dropped(self):
        sim = Simulator(seed=1)
        nic, sink, _ = build_flowvalve_nic(sim)
        blast(sim, nic, "UNKNOWN", pps=1e6, duration=0.001)
        sim.run(until=0.002)
        assert sink.total_packets == 0
        assert nic.drops_by_reason[DropReason.UNCLASSIFIED] == nic.submitted

    def test_flow_cache_hits_dominate(self):
        sim = Simulator(seed=1)
        nic, sink, frontend = build_flowvalve_nic(sim)
        blast(sim, nic, "A", pps=1e6, duration=0.002)
        sim.run(until=0.003)
        assert frontend.labeler.cache_hit_ratio > 0.99

    def test_stats_summary_mentions_counts(self):
        sim = Simulator(seed=1)
        nic, _, _ = build_flowvalve_nic(sim)
        blast(sim, nic, "A", pps=1e5, duration=0.001)
        sim.run(until=0.002)
        text = nic.stats_summary()
        assert "submitted=" in text and "forwarded=" in text


class TestReorderedEgress:
    def test_delivery_order_matches_arrival_order(self):
        sim = Simulator(seed=1)
        order = []
        sink = PacketSink(sim, record_delays=False, on_delivery=lambda p: order.append(p.seq))
        frontend = FlowValveFrontend.from_script(
            FAIR_SCRIPT, link_rate_bps=40e9,
            params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
        )
        nic = NicPipeline.with_flowvalve(sim, NicConfig(), frontend, receiver=sink.receive)
        blast(sim, nic, "A", pps=2e6, duration=0.001, size=256)
        sim.run(until=0.002)
        assert order == sorted(order)
        assert len(order) > 100


class TestDropAccounting:
    """``_drop`` tallies every discard under the *caller's* reason.

    Regression tests for a bug where an already-marked packet's drop
    was tallied under its stale ``packet.drop_reason`` instead of the
    reason the current stage dropped it for.
    """

    @staticmethod
    def _nic(sim, **cfg_kwargs):
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, NicConfig(**cfg_kwargs), ForwardAllApp(), receiver=sink.receive)
        return nic, sink

    @staticmethod
    def _packet(app="A"):
        factory = PacketFactory()
        return factory.make(64, FiveTuple("10.0.0.1", "10.0.1.1", 1, 2), 0.0, app=app)

    def test_unmarked_drop_tallies_passed_reason(self):
        sim = Simulator(seed=1)
        nic, _ = self._nic(sim)
        packet = self._packet()
        nic._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
        assert nic.dropped == 1
        assert nic.drops_by_reason[DropReason.NO_BUFFER] == 1
        assert packet.dropped
        assert packet.drop_reason is DropReason.NO_BUFFER

    def test_marked_packet_keeps_mark_but_counts_under_new_reason(self):
        # A packet marked by an earlier stage (e.g. the scheduler) that
        # is then discarded by a later stage for a *different* reason
        # must keep its original mark, while the tally records what
        # actually killed it here.
        sim = Simulator(seed=1)
        nic, _ = self._nic(sim)
        packet = self._packet()
        packet.mark_dropped(DropReason.SCHED_RED)
        nic._drop(packet, DropReason.QUEUE_FULL, release_buffer=False, already_marked=True)
        assert nic.drops_by_reason[DropReason.QUEUE_FULL] == 1
        assert nic.drops_by_reason[DropReason.SCHED_RED] == 0
        assert packet.drop_reason is DropReason.SCHED_RED

    def test_already_marked_flag_with_unmarked_packet_still_marks(self):
        # Defensive path: callers pass already_marked=True for packets
        # that *should* carry a mark; if one slips through unmarked it
        # gets marked with the caller's reason rather than left clean.
        sim = Simulator(seed=1)
        nic, _ = self._nic(sim)
        packet = self._packet()
        nic._drop(packet, DropReason.QUEUE_FULL, release_buffer=False, already_marked=True)
        assert packet.drop_reason is DropReason.QUEUE_FULL
        assert nic.drops_by_reason[DropReason.QUEUE_FULL] == 1

    def test_ingress_no_buffer_drops_end_to_end(self):
        sim = Simulator(seed=1)
        nic, _ = self._nic(sim, buffer_count=4)
        factory = PacketFactory()
        flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)
        accepted = sum(
            nic.submit(factory.make(64, flow, 0.0, app="A")) for _ in range(10)
        )
        assert accepted == 4
        assert nic.drops_by_reason[DropReason.NO_BUFFER] == 6
        assert nic.dropped == 6

    def test_sched_drops_tally_under_sched_red(self):
        # Worker-path drops of scheduler-marked packets land under the
        # mark's reason (caller passes the packet's own reason there).
        sim = Simulator(seed=1)
        nic, _, _ = build_flowvalve_nic(sim, link=1e9)
        blast(sim, nic, "A", pps=5e6, duration=0.002, size=1500)
        sim.run(until=0.003)
        assert nic.drops_by_reason[DropReason.SCHED_RED] > 0
        tallied = sum(nic.drops_by_reason.values())
        assert tallied == nic.dropped

    def test_on_drop_hook_sees_every_discard(self):
        sim = Simulator(seed=1)
        seen = []
        nic = NicPipeline(
            sim, NicConfig(buffer_count=2), ForwardAllApp(),
            receiver=lambda p: None, on_drop=seen.append,
        )
        factory = PacketFactory()
        flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)
        for _ in range(5):
            nic.submit(factory.make(64, flow, 0.0, app="A"))
        assert len(seen) == 3
        assert all(p.drop_reason is DropReason.NO_BUFFER for p in seen)
