"""Tests for simulation resources: Lock, Store, TokenPool."""

import pytest

from repro.errors import CapacityError, SimulationError
from repro.sim import Lock, Simulator, Store, TokenPool


class TestLock:
    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        lock = Lock(sim)
        log = []

        def proc():
            yield lock.acquire()
            log.append(sim.now)
            lock.release()

        sim.process(proc())
        sim.run()
        assert log == [0.0]
        assert not lock.locked

    def test_fifo_ordering_under_contention(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def proc(name, hold):
            yield lock.acquire()
            order.append((name, sim.now))
            yield hold
            lock.release()

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.0))
        sim.process(proc("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_contention_statistics(self):
        sim = Simulator()
        lock = Lock(sim)

        def proc(hold):
            yield lock.acquire()
            yield hold
            lock.release()

        sim.process(proc(2.0))
        sim.process(proc(2.0))
        sim.run()
        assert lock.acquisitions == 2
        assert lock.contended_acquisitions == 1
        assert lock.total_wait_time == pytest.approx(2.0)
        assert lock.mean_wait_time == pytest.approx(2.0)

    def test_try_acquire(self):
        sim = Simulator()
        lock = Lock(sim)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_release_unheld_raises(self):
        sim = Simulator()
        lock = Lock(sim)
        with pytest.raises(SimulationError):
            lock.release()


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.try_put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        sim.process(getter())
        sim.schedule(3.0, store.try_put, "late")
        sim.run()
        assert got == [("late", 3.0)]

    def test_bounded_store_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def putter():
            yield store.put("a")
            events.append(("a-in", sim.now))
            yield store.put("b")
            events.append(("b-in", sim.now))

        def slow_getter():
            yield 5.0
            item = yield store.get()
            events.append((f"got-{item}", sim.now))

        sim.process(putter())
        sim.process(slow_getter())
        sim.run()
        assert ("a-in", 0.0) in events
        assert ("b-in", 5.0) in events  # unblocked when "a" was taken

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.is_full

    def test_try_get_empty_returns_none(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        assert [store.try_get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_counters(self):
        sim = Simulator()
        store = Store(sim)
        store.try_put("a")
        store.try_put("b")
        store.try_get()
        assert store.total_put == 2
        assert store.total_got == 1

    def test_negative_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(CapacityError):
            Store(sim, capacity=-1)

    def test_direct_handoff_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert store.try_put("direct")
        sim.run()
        assert got == ["direct"]
        assert len(store) == 0


class TestTokenPool:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=3)
        assert pool.try_acquire(2)
        assert pool.available == 1
        pool.release(2)
        assert pool.available == 3

    def test_blocking_acquire(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=1)
        order = []

        def user(name, hold):
            yield pool.acquire()
            order.append((name, sim.now))
            yield hold
            pool.release()

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_over_acquire_rejected(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=2)
        with pytest.raises(CapacityError):
            pool.acquire(3)

    def test_over_release_detected(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.release(1)

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(CapacityError):
            TokenPool(sim, capacity=0)

    def test_waiters_served_in_order_even_if_later_fits(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=2)
        order = []

        def big():
            yield pool.acquire(2)
            order.append("big")
            pool.release(2)

        def small():
            yield pool.acquire(1)
            order.append("small")
            pool.release(1)

        pool.try_acquire(1)  # leave 1 available
        sim.process(big())   # needs 2 -> waits
        sim.process(small()) # needs 1 -> must queue behind big (no starvation)
        sim.schedule(1.0, pool.release, 1)
        sim.run()
        assert order == ["big", "small"]
