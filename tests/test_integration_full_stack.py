"""Full-stack integration tests crossing subsystem boundaries.

Each test exercises a path no unit test covers end to end: kernel tc
script → offload compiler → front end → NIC model → wire → sink, with
different host-side drivers.
"""

import pytest

from repro.core import FlowValveFrontend
from repro.core.offload import compile_offload
from repro.core.sched_tree import SchedulingParams
from repro.host import (
    FixedRateSender,
    TraceWorkload,
    VirtualFunction,
    WORKLOAD_PRESETS,
    windows,
)
from repro.net import PacketFactory, PacketSink
from repro.nic import NicConfig, NicPipeline
from repro.sim import Simulator
from repro.tc.parser import parse_script

CHAINED_TC = """
tc qdisc add dev eth0 root handle 1: prio bands 2
tc qdisc add dev eth0 parent 1:2 handle 2: htb
tc class add dev eth0 parent 2: classid 2:1 htb rate 35mbit ceil 35mbit
tc class add dev eth0 parent 2:1 classid 2:10 htb rate 25mbit weight 2
tc class add dev eth0 parent 2:1 classid 2:20 htb rate 10mbit weight 1
tc filter add dev eth0 parent 1: prio 1 match app=mgmt flowid 1:1
tc filter add dev eth0 parent 1: prio 1 match app=gold flowid 2:10
tc filter add dev eth0 parent 1: prio 1 match app=bronze flowid 2:20
"""


class TestChainedPolicyOnNic:
    """A real kernel-style chained configuration, compiled and executed
    on the simulated SmartNIC."""

    def _testbed(self, link=40e6):
        sim = Simulator(seed=6)
        compiled = compile_offload(parse_script(CHAINED_TC), link)
        frontend = FlowValveFrontend(
            compiled, link_rate_bps=link,
            params=SchedulingParams(update_interval=0.05, expire_after=0.5),
        )
        sink = PacketSink(sim, rate_window=0.5, record_delays=False)
        cfg = NicConfig(line_rate_bps=40e9).scaled(1000.0)
        from dataclasses import replace
        cfg = replace(cfg, tx_ring_depth=256, dispatch_depth=512, buffer_count=2048)
        nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
        return sim, sink, nic

    def test_band_priority_and_htb_weights_together(self):
        sim, sink, nic = self._testbed()
        factory = PacketFactory()
        for i, app in enumerate(("mgmt", "gold", "bronze")):
            FixedRateSender(sim, app, factory, nic.submit,
                            rate_bps=60e6, packet_size=1500, vf_index=i,
                            demand=windows((0, 20, 5e6 if app == "mgmt" else 60e6)),
                            jitter=0.1, rng=sim.random.stream(app))
        sim.run(until=20.0)
        mgmt = sink.rates["mgmt"].mean_rate(10, 20)
        gold = sink.rates["gold"].mean_rate(10, 20)
        bronze = sink.rates["bronze"].mean_rate(10, 20)
        # Band 0 (mgmt) fully served at its 5 Mbit demand.
        assert mgmt == pytest.approx(5e6, rel=0.1)
        # Inside the chained HTB: gold:bronze ≈ rates 25:10, capped by
        # the chained root's 35 Mbit ceiling.
        assert gold + bronze == pytest.approx(35e6 * 0.97, rel=0.12)
        assert gold > 1.8 * bronze


class TestWorkloadGeneratorThroughVfs:
    """Heavy-tailed tenants through per-tenant virtual functions."""

    def test_vfs_isolate_and_account(self):
        sim = Simulator(seed=8)
        policy = parse_script("""
        fv qdisc add dev eth0 root handle 1: fv default 0
        fv class add dev eth0 parent 1: classid 1:1 fv rate 40mbit ceil 40mbit
        fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20
        fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
        fv filter add dev eth0 parent 1: match vf=0 flowid 1:10
        fv filter add dev eth0 parent 1: match vf=1 flowid 1:20
        """)
        frontend = FlowValveFrontend(
            policy, link_rate_bps=40e6,
            params=SchedulingParams(update_interval=0.05, expire_after=0.5),
        )
        sink = PacketSink(sim, rate_window=0.5, record_delays=False)
        from dataclasses import replace
        cfg = replace(NicConfig(line_rate_bps=40e9).scaled(1000.0),
                      tx_ring_depth=256, dispatch_depth=512, buffer_count=2048)
        nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
        factory = PacketFactory()
        vfs = [VirtualFunction(sim, index=i, nic_submit=nic.submit) for i in range(2)]
        from dataclasses import replace as dc_replace
        profile = dc_replace(WORKLOAD_PRESETS["web"], flow_rate_limit_bps=10e6)
        tenants = [
            TraceWorkload(sim, f"tenant{i}", profile, offered_load_bps=40e6,
                          submit=vfs[i].send, factory=factory, vf_index=i,
                          duration=20.0)
            for i in range(2)
        ]
        sim.run(until=20.0)
        # Classification by VF index, not app string.
        t0 = sink.rates["tenant0"].mean_rate(10, 20)
        t1 = sink.rates["tenant1"].mean_rate(10, 20)
        # Both oversubscribe; the fair split holds to within the
        # burstiness of heavy-tailed arrivals.
        assert t0 == pytest.approx(t1, rel=0.35)
        assert t0 + t1 == pytest.approx(0.97 * 40e6, rel=0.15)
        for vf, tenant in zip(vfs, tenants):
            assert vf.sent > 0
            assert tenant.flows_started > 10


class TestDeterminism:
    """The whole stack is reproducible: same seed, same byte counts."""

    def _run(self, seed):
        sim = Simulator(seed=seed)
        frontend = FlowValveFrontend(
            parse_script("""
            fv qdisc add dev eth0 root handle 1: fv default 0
            fv class add dev eth0 parent 1: classid 1:1 fv rate 40mbit ceil 40mbit
            fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1
            fv filter add dev eth0 parent 1: match app=A flowid 1:10
            """),
            link_rate_bps=40e6,
            params=SchedulingParams(update_interval=0.05, expire_after=0.5),
        )
        sink = PacketSink(sim, record_delays=False)
        from dataclasses import replace
        cfg = replace(NicConfig(line_rate_bps=40e9).scaled(1000.0),
                      tx_ring_depth=128, dispatch_depth=256, buffer_count=1024)
        nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
        FixedRateSender(sim, "A", PacketFactory(), nic.submit, rate_bps=60e6,
                        packet_size=1500, jitter=0.2, rng=sim.random.stream("A"))
        sim.run(until=5.0)
        return sink.total_packets, sink.total_bytes, nic.dropped

    def test_same_seed_same_world(self):
        assert self._run(42) == self._run(42)

    def test_different_seed_different_world(self):
        assert self._run(1) != self._run(2)
