"""Tests for repro.units: parsing, formatting, and line-rate math."""

import math

import pytest

from repro import units
from repro.errors import ParseError


class TestParseRate:
    def test_gbit(self):
        assert units.parse_rate("10gbit") == 10e9

    def test_mbit_fractional(self):
        assert units.parse_rate("2.5mbit") == 2.5e6

    def test_bare_number_is_bits_per_second(self):
        assert units.parse_rate("1000") == 1000.0

    def test_bytes_per_second_suffix(self):
        # tc semantics: "bps" means bytes per second.
        assert units.parse_rate("1kbps") == 8000.0

    def test_case_insensitive(self):
        assert units.parse_rate("1GBit") == 1e9

    def test_unknown_suffix_raises(self):
        with pytest.raises(ParseError):
            units.parse_rate("10parsecs")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            units.parse_rate("fast")

    def test_empty_raises(self):
        with pytest.raises(ParseError):
            units.parse_rate("")


class TestParseSize:
    def test_plain_bytes(self):
        assert units.parse_size("1514") == 1514

    def test_b_suffix(self):
        assert units.parse_size("64b") == 64

    def test_kilobytes_binary(self):
        assert units.parse_size("2k") == 2048

    def test_megabytes(self):
        assert units.parse_size("1mb") == 1024 * 1024

    def test_unknown_suffix(self):
        with pytest.raises(ParseError):
            units.parse_size("5lightyears")


class TestParseTime:
    def test_seconds(self):
        assert units.parse_time("1.5s") == 1.5

    def test_milliseconds(self):
        assert units.parse_time("10ms") == pytest.approx(0.01)

    def test_microseconds(self):
        assert units.parse_time("250us") == pytest.approx(250e-6)

    def test_bare_number_is_seconds(self):
        assert units.parse_time("3") == 3.0


class TestFormatting:
    def test_format_rate_gbit(self):
        assert units.format_rate(40e9) == "40.00Gbit"

    def test_format_rate_small(self):
        assert units.format_rate(500.0) == "500bit"

    def test_format_size(self):
        assert units.format_size(1536) == "1.50KiB"

    def test_format_time_us(self):
        assert units.format_time(161.01e-6) == "161.010us"

    def test_format_time_seconds(self):
        assert units.format_time(2.0) == "2.000s"


class TestLineRateMath:
    def test_64b_at_10g_is_14_88_mpps(self):
        # The classic line-rate constant: 10 Gbit / (84 B * 8).
        assert units.line_rate_pps(10 * units.GBIT, 64) == pytest.approx(14.88e6, rel=1e-3)

    def test_1518b_at_40g(self):
        # 40 Gbit / (1538 B * 8) = 3.25 Mpps, the Fig. 13 headline size.
        assert units.line_rate_pps(40 * units.GBIT, 1518) == pytest.approx(3.25e6, rel=1e-2)

    def test_wire_bits_includes_overhead(self):
        assert units.wire_bits(64) == (64 + 20) * 8

    def test_goodput_ratio_below_one(self):
        assert 0 < units.goodput_ratio(64) < 1

    def test_goodput_ratio_monotonic_in_size(self):
        assert units.goodput_ratio(1518) > units.goodput_ratio(64)
