"""Cross-shard determinism suite (DESIGN.md §11).

The sharded engine's headline contract: for a fixed spec, ``shards=N``
is *byte-identical* to ``shards=1`` — same per-delivery record stream
(app, seq, exact ``repr`` of the delivery timestamp), same drop
records and reasons, same rate series, same event counts. The suite
runs a fig11-style multi-host workload both ways and compares
everything except wall clock.

These tests spawn real worker processes (fork), so they are a few
seconds each — durations are kept short.
"""

import pytest

from repro.experiments.policies import motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.topology import ScaledSetup, SimulationSpec, Topology


def ring_spec(hosts, duration, *, scale=2000.0, prop=5e-5, fluid=True,
              **spec_kwargs):
    """A fig11-style ring: every host runs the motivation policy and
    demand timeline; NIC i's wire terminates at host (i+1) % hosts."""
    setup = ScaledSetup(scale=scale)
    demands = sorted(motivation_demands(setup.nominal_link_bps).items())
    config = {} if fluid else {"fluid": False}
    topo = Topology()
    for i in range(hosts):
        topo.nic(f"nic{i}", motivation_policy(setup.link_bps), **config)
        topo.host(f"host{i}", nic=f"nic{i}")
        for app, demand in demands:
            topo.app(f"host{i}", app, demand=demand)
        topo.wire(f"nic{i}", to=f"nic{(i + 1) % hosts}", propagation_delay=prop)
    return SimulationSpec(
        topology=topo, setup=setup, duration=duration, **spec_kwargs
    )


def assert_identical(a, b):
    """Field-by-field equality of two results, wall clock excluded."""
    assert a.windows == b.windows
    assert a.degraded == b.degraded
    assert sorted(a.domains) == sorted(b.domains)
    for name in a.domains:
        left, right = a.domains[name], b.domains[name]
        assert left.records == right.records, f"{name}: delivery records differ"
        assert left.drop_records == right.drop_records, f"{name}: drops differ"
        assert left.series == right.series, f"{name}: rate series differ"
        assert left.packets == right.packets
        assert left.bytes == right.bytes
        assert left.drops_by_reason == right.drops_by_reason
        assert (left.delivered, left.submitted, left.dropped, left.events) == (
            right.delivered, right.submitted, right.dropped, right.events
        )


class TestByteIdentity:
    def test_two_hosts_one_vs_two_shards(self):
        spec = ring_spec(2, duration=1.5, collect_records=True)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.shards == 1 and double.shards == 2
        assert single.total_packets > 0, "workload must actually deliver"
        assert_identical(single, double)

    def test_four_hosts_one_vs_four_shards(self):
        spec = ring_spec(4, duration=1.0, collect_records=True)
        assert_identical(spec.with_shards(1).run(), spec.with_shards(4).run())

    def test_fast_lane_totals_match_across_shards(self):
        # Without collect_records the sinks stay on the lazy/batched
        # fast path — totals and series must still be identical.
        spec = ring_spec(2, duration=1.5)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.total_packets == double.total_packets > 0
        assert single.total_events == double.total_events
        for name in single.domains:
            assert single.domains[name].series == double.domains[name].series

    def test_windows_depend_on_topology_not_shards(self):
        spec = ring_spec(2, duration=1.5)
        assert spec.with_shards(1).plan().window == spec.with_shards(2).plan().window
        assert spec.with_shards(1).run().windows == spec.with_shards(2).run().windows

    def test_window_override_preserves_identity(self):
        spec = ring_spec(2, duration=1.0, collect_records=True, window=0.05)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.windows == double.windows > 10
        assert_identical(single, double)

    def test_remote_traffic_actually_crosses_domains(self):
        # Every delivery at a sink arrived over a wire from the
        # neighbouring domain — seqs must come from the *other* bank.
        spec = ring_spec(2, duration=1.0, collect_records=True)
        result = spec.with_shards(2).run()
        bank = 1 << 40
        nic0_seqs = [seq for _, seq, _ in result.domains["nic0"].records]
        assert nic0_seqs, "nic0 saw no remote deliveries"
        assert all(seq >= bank for seq in nic0_seqs), (
            "nic0's sink terminates nic1's wire; its deliveries must "
            "carry domain 1's sequence bank"
        )


class TestFluidCrossProduct:
    """ISSUE 9's identity matrix: fluid on/off x shards 1/2/4.

    Within one fluid setting every shard count must be byte-identical —
    *including* the kernel-event count, now that the carry horizon
    makes absorption decisions window-invariant (DESIGN.md §11). Across
    fluid settings every observable (records, drops, series, tallies)
    must be identical too; only the event count drops when the lane
    engages.
    """

    def test_record_streams_identical_across_matrix(self):
        # collect_records installs a drop callback, which keeps the
        # fluid lane off (recording wrappers are eventful) — so both
        # config values exercise the construction guard and must land
        # in the same per-packet world at every shard count.
        runs = []
        for fluid in (True, False):
            spec = ring_spec(4, duration=1.0, collect_records=True, fluid=fluid)
            for shards in (1, 2, 4):
                runs.append(spec.with_shards(shards).run())
        first = runs[0]
        assert first.total_packets > 0
        for other in runs[1:]:
            assert_identical(first, other)

    def test_fast_lane_matrix_tallies_and_event_counts(self):
        # Without recording the lane engages (fluid on) or stays off
        # (fluid off). Event counts — kernel *and* per-domain — plus the
        # lane counters must be shard-invariant within each setting;
        # tallies and series must agree across all six runs.
        base_by_fluid = {}
        for fluid in (True, False):
            spec = ring_spec(4, duration=1.0, fluid=fluid)
            base = spec.with_shards(1).run()
            for shards in (2, 4):
                other = spec.with_shards(shards).run()
                assert other.total_events == base.total_events
                assert other.total_packets == base.total_packets
                for name in base.domains:
                    left, right = base.domains[name], other.domains[name]
                    assert left.series == right.series
                    assert left.events == right.events
                    assert (
                        left.fluid_absorbed, left.fluid_spills, left.fluid_suspends
                    ) == (
                        right.fluid_absorbed, right.fluid_spills, right.fluid_suspends
                    )
            base_by_fluid[fluid] = base
        on, off = base_by_fluid[True], base_by_fluid[False]
        assert on.total_packets == off.total_packets > 0
        assert on.total_submitted == off.total_submitted
        assert on.total_dropped == off.total_dropped
        for name in on.domains:
            assert on.domains[name].series == off.domains[name].series
        # The lane must actually engage on boundary NICs and pay off.
        assert on.total_fluid_absorbed > 0
        assert off.total_fluid_absorbed == 0
        assert on.total_events < off.total_events


class TestDegradedFallback:
    def test_zero_propagation_completes_with_warning(self):
        spec = ring_spec(2, duration=1.0, prop=0.0, collect_records=True)
        with pytest.warns(UserWarning, match="zero propagation delay"):
            result = spec.with_shards(2).run()
        assert result.degraded
        assert result.shards == 1
        assert result.total_packets > 0
        assert "degraded" in result.notes

    def test_degraded_tallies_match_windowed_run(self):
        # Same workload, positive lookahead vs zero: submission is
        # driven by the (identical) per-domain demand streams, so the
        # degraded fold must account the same offered load. Delivery
        # differs only through the wire delay — at scale 2000 the
        # 5e-5 s nominal propagation is 0.1 simulated seconds, which
        # strands in-flight tail frames at the horizon in the windowed
        # run. Zero delay delivers those too, so the degraded total can
        # only be at least as large.
        windowed = ring_spec(2, duration=1.0, prop=5e-5).run()
        with pytest.warns(UserWarning):
            degraded = ring_spec(2, duration=1.0, prop=0.0).run()
        assert degraded.total_submitted == windowed.total_submitted
        assert degraded.total_packets >= windowed.total_packets > 0
