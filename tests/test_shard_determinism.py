"""Cross-shard determinism suite (DESIGN.md §11).

The sharded engine's headline contract: for a fixed spec, ``shards=N``
is *byte-identical* to ``shards=1`` — same per-delivery record stream
(app, seq, exact ``repr`` of the delivery timestamp), same drop
records and reasons, same rate series, same event counts. The suite
runs a fig11-style multi-host workload both ways and compares
everything except wall clock.

These tests spawn real worker processes (fork), so they are a few
seconds each — durations are kept short.
"""

import pytest

from repro.experiments.policies import motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.topology import ScaledSetup, SimulationSpec, Topology


def ring_spec(hosts, duration, *, scale=2000.0, prop=5e-5, **spec_kwargs):
    """A fig11-style ring: every host runs the motivation policy and
    demand timeline; NIC i's wire terminates at host (i+1) % hosts."""
    setup = ScaledSetup(scale=scale)
    demands = sorted(motivation_demands(setup.nominal_link_bps).items())
    topo = Topology()
    for i in range(hosts):
        topo.nic(f"nic{i}", motivation_policy(setup.link_bps))
        topo.host(f"host{i}", nic=f"nic{i}")
        for app, demand in demands:
            topo.app(f"host{i}", app, demand=demand)
        topo.wire(f"nic{i}", to=f"nic{(i + 1) % hosts}", propagation_delay=prop)
    return SimulationSpec(
        topology=topo, setup=setup, duration=duration, **spec_kwargs
    )


def assert_identical(a, b):
    """Field-by-field equality of two results, wall clock excluded."""
    assert a.windows == b.windows
    assert a.degraded == b.degraded
    assert sorted(a.domains) == sorted(b.domains)
    for name in a.domains:
        left, right = a.domains[name], b.domains[name]
        assert left.records == right.records, f"{name}: delivery records differ"
        assert left.drop_records == right.drop_records, f"{name}: drops differ"
        assert left.series == right.series, f"{name}: rate series differ"
        assert left.packets == right.packets
        assert left.bytes == right.bytes
        assert left.drops_by_reason == right.drops_by_reason
        assert (left.delivered, left.submitted, left.dropped, left.events) == (
            right.delivered, right.submitted, right.dropped, right.events
        )


class TestByteIdentity:
    def test_two_hosts_one_vs_two_shards(self):
        spec = ring_spec(2, duration=1.5, collect_records=True)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.shards == 1 and double.shards == 2
        assert single.total_packets > 0, "workload must actually deliver"
        assert_identical(single, double)

    def test_four_hosts_one_vs_four_shards(self):
        spec = ring_spec(4, duration=1.0, collect_records=True)
        assert_identical(spec.with_shards(1).run(), spec.with_shards(4).run())

    def test_fast_lane_totals_match_across_shards(self):
        # Without collect_records the sinks stay on the lazy/batched
        # fast path — totals and series must still be identical.
        spec = ring_spec(2, duration=1.5)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.total_packets == double.total_packets > 0
        assert single.total_events == double.total_events
        for name in single.domains:
            assert single.domains[name].series == double.domains[name].series

    def test_windows_depend_on_topology_not_shards(self):
        spec = ring_spec(2, duration=1.5)
        assert spec.with_shards(1).plan().window == spec.with_shards(2).plan().window
        assert spec.with_shards(1).run().windows == spec.with_shards(2).run().windows

    def test_window_override_preserves_identity(self):
        spec = ring_spec(2, duration=1.0, collect_records=True, window=0.05)
        single = spec.with_shards(1).run()
        double = spec.with_shards(2).run()
        assert single.windows == double.windows > 10
        assert_identical(single, double)

    def test_remote_traffic_actually_crosses_domains(self):
        # Every delivery at a sink arrived over a wire from the
        # neighbouring domain — seqs must come from the *other* bank.
        spec = ring_spec(2, duration=1.0, collect_records=True)
        result = spec.with_shards(2).run()
        bank = 1 << 40
        nic0_seqs = [seq for _, seq, _ in result.domains["nic0"].records]
        assert nic0_seqs, "nic0 saw no remote deliveries"
        assert all(seq >= bank for seq in nic0_seqs), (
            "nic0's sink terminates nic1's wire; its deliveries must "
            "carry domain 1's sequence bank"
        )


class TestDegradedFallback:
    def test_zero_propagation_completes_with_warning(self):
        spec = ring_spec(2, duration=1.0, prop=0.0, collect_records=True)
        with pytest.warns(UserWarning, match="zero propagation delay"):
            result = spec.with_shards(2).run()
        assert result.degraded
        assert result.shards == 1
        assert result.total_packets > 0
        assert "degraded" in result.notes

    def test_degraded_tallies_match_windowed_run(self):
        # Same workload, positive lookahead vs zero: submission is
        # driven by the (identical) per-domain demand streams, so the
        # degraded fold must account the same offered load. Delivery
        # differs only through the wire delay — at scale 2000 the
        # 5e-5 s nominal propagation is 0.1 simulated seconds, which
        # strands in-flight tail frames at the horizon in the windowed
        # run. Zero delay delivers those too, so the degraded total can
        # only be at least as large.
        windowed = ring_spec(2, duration=1.0, prop=5e-5).run()
        with pytest.warns(UserWarning):
            degraded = ring_spec(2, duration=1.0, prop=0.0).run()
        assert degraded.total_submitted == windowed.total_submitted
        assert degraded.total_packets >= windowed.total_packets > 0
