"""Tests for the fv command-line tool."""

import json

import pytest

from repro.cli import main

POLICY = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10mbit ceil 10mbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1
fv filter add dev eth0 parent 1: match app=A flowid 1:10
fv filter add dev eth0 parent 1: match app=B flowid 1:20
"""


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "policy.fv"
    path.write_text(POLICY)
    return str(path)


class TestCheck:
    def test_valid_policy_ok(self, policy_file, capsys):
        assert main(["check", policy_file, "--link", "10mbit"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "3 classes" in out

    def test_invalid_policy_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.fv"
        path.write_text(POLICY + "fv filter add dev eth0 parent 1: match app=X flowid 9:9\n")
        assert main(["check", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails(self, capsys):
        assert main(["check", "/nonexistent/policy.fv"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.fv"
        path.write_text("fv qdisc add dev eth0 root frobnicate\n")
        assert main(["check", str(path)]) == 1


class TestShow:
    def test_prints_tree(self, policy_file, capsys):
        assert main(["show", policy_file, "--link", "10mbit"]) == 0
        out = capsys.readouterr().out
        assert "1:10" in out and "1:20" in out
        assert "θ=" in out


class TestSimulate:
    def test_enforces_weighted_split(self, policy_file, capsys):
        code = main([
            "simulate", policy_file, "--link", "10mbit",
            "--app", "A=20mbit", "--app", "B=20mbit",
            "--duration", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "A" in out and "B" in out and "total" in out

    def test_requires_an_app(self, policy_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", policy_file])
        assert "--app" in str(excinfo.value)

    def test_rejects_malformed_app_spec(self, policy_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", policy_file, "--app", "nonsense"])
        assert "NAME=RATE" in str(excinfo.value)
        assert "'nonsense'" in str(excinfo.value)

    def test_rejects_duplicate_app_names(self, policy_file):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "simulate", policy_file,
                "--app", "A=2mbit", "--app", "A=4mbit",
            ])
        assert "duplicate app name 'A'" in str(excinfo.value)

    def test_rejects_bad_rate_suffix(self, policy_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", policy_file, "--app", "A=5zbit"])
        message = str(excinfo.value)
        assert "bad rate for app 'A'" in message
        assert "zbit" in message

    def test_nic_mode_with_trace_and_metrics(self, tmp_path, capsys):
        # The DES pipeline wants a policy whose rates justify scaling.
        policy = tmp_path / "policy.fv"
        policy.write_text(POLICY.replace("10mbit", "10gbit"))
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        code = main([
            "simulate", str(policy), "--link", "10gbit",
            "--app", "A=9gbit", "--app", "B=9gbit",
            "--duration", "5", "--scale", "500",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out
        rows = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert rows, "trace JSONL must not be empty"
        kinds = {(row["source"], row["kind"]) for row in rows}
        assert ("nic.pipeline", "drop") in kinds
        assert ("core.sched", "rate_update") in kinds
        assert ("nic.tm", "queue_depth") in kinds
        snapshots = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert snapshots and snapshots[-1]["nic.submitted"] > 0
        assert snapshots[-1]["time"] == pytest.approx(5.0)

    def test_trace_implies_nic_mode(self, tmp_path, capsys):
        policy = tmp_path / "policy.fv"
        policy.write_text(POLICY.replace("10mbit", "10gbit"))
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "simulate", str(policy), "--link", "10gbit",
            "--app", "A=9gbit", "--duration", "2", "--scale", "1000",
            "--trace", str(trace_path), "--trace-limit", "50",
        ])
        assert code == 0
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 50  # --trace-limit keeps the newest N

    def test_nic_mode_rejects_bad_scale(self, policy_file, capsys):
        code = main([
            "simulate", policy_file, "--nic", "--app", "A=20mbit",
            "--scale", "0",
        ])
        assert code == 1
        assert "scale" in capsys.readouterr().err

    def test_achieved_rates_respect_policy(self, policy_file, capsys):
        main([
            "simulate", policy_file, "--link", "10mbit",
            "--app", "A=20mbit", "--app", "B=20mbit",
            "--duration", "20",
        ])
        out = capsys.readouterr().out
        # Parse the achieved column for app A: ~6.5 Mbit (2/3 of 9.7).
        for line in out.splitlines():
            if line.strip().startswith("A:"):
                achieved = line.split("achieved")[1].strip()
                value = float(achieved.replace("Mbit", ""))
                assert 5.5 < value < 7.5
                break
        else:
            pytest.fail(f"no per-app line in output:\n{out}")


class TestSimulateScheduler:
    """fv simulate --scheduler NAME: the crossbar DES runtime."""

    @pytest.fixture
    def policy_10g(self, tmp_path):
        path = tmp_path / "policy.fv"
        path.write_text(POLICY.replace("10mbit", "10gbit"))
        return str(path)

    def test_crossbar_scheduler_runs(self, policy_10g, capsys):
        code = main([
            "simulate", policy_10g, "--link", "10gbit",
            "--app", "A=9gbit", "--app", "B=9gbit",
            "--duration", "2", "--scale", "500",
            "--scheduler", "wfq", "--backend", "eiffel",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler=wfq" in out and "backend=eiffel" in out
        assert "port[wfq[eiffel]]" in out
        assert "total" in out

    def test_default_scheduler_path_unchanged(self, policy_file, capsys):
        # --scheduler flowvalve is the default route: identical output
        # shape to a plain `fv simulate`.
        code = main([
            "simulate", policy_file, "--link", "10mbit",
            "--app", "A=20mbit", "--duration", "5",
            "--scheduler", "flowvalve",
        ])
        assert code == 0
        assert "achieved" in capsys.readouterr().out

    def test_scheduler_excludes_trace(self, policy_10g, tmp_path, capsys):
        code = main([
            "simulate", policy_10g, "--link", "10gbit",
            "--app", "A=9gbit", "--duration", "2", "--scale", "500",
            "--scheduler", "wfq", "--trace", str(tmp_path / "t.jsonl"),
        ])
        assert code == 1
        assert "flowvalve" in capsys.readouterr().err

    def test_unknown_scheduler_reported(self, policy_10g, capsys):
        code = main([
            "simulate", policy_10g, "--link", "10gbit",
            "--app", "A=9gbit", "--duration", "1", "--scale", "500",
            "--scheduler", "cake",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "cake" in err and "registered" in err
