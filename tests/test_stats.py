"""Tests for the stats package: series, rates, latency, CPU, report."""

import pytest

from repro.stats import (
    CpuReport,
    EwmaRate,
    LatencySummary,
    RateSeries,
    Table,
    TimeSeries,
    WindowedRate,
    jitter,
    percentile,
    summarize_latencies,
)


class TestTimeSeries:
    def test_append_and_value_at(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.value_at(1.5) == 10.0
        assert ts.value_at(2.0) == 20.0
        assert ts.value_at(0.5, default=-1.0) == -1.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.append(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(1.0, 1.0)

    def test_slice(self):
        ts = TimeSeries()
        for t in range(5):
            ts.append(float(t), float(t * 10))
        times, values = ts.slice(1.0, 3.0)
        assert list(times) == [1.0, 2.0]
        assert list(values) == [10.0, 20.0]


class TestRateSeries:
    def test_binning(self):
        rs = RateSeries(window=1.0)
        rs.add(0.5, 100.0)
        rs.add(0.9, 100.0)
        rs.add(1.5, 300.0)
        samples = dict(rs.samples())
        assert samples[1.0] == pytest.approx(200.0)
        assert samples[2.0] == pytest.approx(300.0)

    def test_mean_rate(self):
        rs = RateSeries(window=1.0)
        for t in range(4):
            rs.add(t + 0.5, 100.0)
        assert rs.mean_rate(0.0, 4.0) == pytest.approx(100.0)
        assert rs.mean_rate(2.0, 4.0) == pytest.approx(100.0)

    def test_rate_at_outside_data(self):
        rs = RateSeries(window=1.0)
        rs.add(0.5, 100.0)
        assert rs.rate_at(5.0) == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RateSeries(window=0.0)

    def test_mean_rate_prorates_partial_tail_window(self):
        # Regression: a steady 100 units/s stream stopped mid-bin used
        # to report sum/whole-bins = 250/3 ≈ 83 over [0, 2.5) because
        # the divisor counted the final bin in full.
        rs = RateSeries(window=1.0)
        t = 0.0
        while t < 2.5:
            rs.add(t, 10.0)  # 100 units/s
            t += 0.1
        assert rs.mean_rate(0.0, 2.5) == pytest.approx(100.0)
        # Bin-aligned queries are unchanged by the fix.
        assert rs.mean_rate(0.0, 2.0) == pytest.approx(100.0)

    def test_mean_rate_prorates_mid_run_window(self):
        # A mid-run window ending inside a *fully populated* bin takes
        # that bin's amount pro-rata over the whole bin.
        rs = RateSeries(window=1.0)
        t = 0.0
        while t < 4.0:
            rs.add(t, 10.0)
            t += 0.1
        assert rs.mean_rate(0.0, 2.5) == pytest.approx(100.0, rel=0.01)
        assert rs.mean_rate(1.5, 3.5) == pytest.approx(100.0, rel=0.01)

    def test_add_rejects_negative_time(self):
        # Regression: int(-0.25/0.1) == -2 used to land the amount in
        # the *last* bin via Python negative indexing.
        rs = RateSeries(window=0.1)
        rs.add(0.05, 100.0)
        rs.add(0.95, 100.0)
        with pytest.raises(ValueError):
            rs.add(-0.25, 100.0)
        # The last bin is untouched by the rejected add.
        assert rs.rate_at(0.95) == pytest.approx(1000.0)
        assert rs.total == pytest.approx(200.0)


class TestWindowedRate:
    def test_roll_computes_rate(self):
        wr = WindowedRate(start_time=0.0)
        wr.observe(1000.0)
        assert wr.roll(2.0) == pytest.approx(500.0)
        assert wr.last_rate == pytest.approx(500.0)

    def test_zero_interval_keeps_previous(self):
        wr = WindowedRate(start_time=0.0)
        wr.observe(1000.0)
        wr.roll(1.0)
        assert wr.roll(1.0) == pytest.approx(1000.0)  # unchanged

    def test_reset(self):
        wr = WindowedRate()
        wr.observe(500.0)
        wr.roll(1.0)
        wr.reset(2.0)
        assert wr.last_rate == 0.0
        assert wr.pending == 0.0


class TestEwmaRate:
    def test_converges_to_constant_rate(self):
        ewma = EwmaRate(tau=0.1)
        t = 0.0
        for _ in range(500):
            t += 0.01
            ewma.observe(t, 10.0)  # 1000 units/s
        assert ewma.observe(t + 0.01, 10.0) == pytest.approx(1000.0, rel=0.05)

    def test_decays_when_idle(self):
        ewma = EwmaRate(tau=0.1)
        t = 0.0
        for _ in range(200):
            t += 0.01
            ewma.observe(t, 10.0)
        assert ewma.rate(t + 1.0) < 0.01 * ewma.rate(t)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            EwmaRate(tau=0.0)

    def test_first_sample_counts_as_impulse(self):
        # Regression: the first observe() used to return 0.0 and fold
        # nothing in, biasing short-flow estimates low.
        ewma = EwmaRate(tau=0.1)
        rate = ewma.observe(1.0, 50.0)
        assert rate == pytest.approx(50.0 / 0.1)
        assert ewma.rate(1.0) == pytest.approx(500.0)

    def test_first_sample_matches_same_instant_branch(self):
        # The first sample must behave exactly like a same-instant
        # arrival: amount/tau folded into the rate.
        first = EwmaRate(tau=0.05)
        first.observe(2.0, 30.0)
        primed = EwmaRate(tau=0.05)
        primed.observe(2.0, 0.0)   # establish last_time with no amount
        primed.observe(2.0, 30.0)  # dt == 0 branch
        assert first.rate(2.0) == pytest.approx(primed.rate(2.0))


class TestLatency:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)

    def test_percentile_single_sample_any_p(self):
        for p in (0, 37.5, 50, 100):
            assert percentile([42.0], p) == 42.0

    def test_percentile_sorts_input(self):
        shuffled = [3.0, 1.0, 4.0, 2.0]
        assert percentile(shuffled, 50) == pytest.approx(2.5)
        assert percentile(shuffled, 0) == 1.0
        assert percentile(shuffled, 100) == 4.0
        assert shuffled == [3.0, 1.0, 4.0, 2.0]  # caller's list untouched

    def test_percentile_exact_rank_no_interpolation(self):
        # Odd count: p=50 lands exactly on the middle sample.
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50) == 3.0
        # p=25 on 5 samples: rank 1.0 exactly.
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 25) == 2.0

    def test_percentile_matches_numpy_linear(self):
        # Reference values from numpy.percentile(..., method="linear").
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 90) == pytest.approx(37.0)
        assert percentile(samples, 10) == pytest.approx(13.0)

    def test_jitter_zero_for_constant(self):
        assert jitter([5.0, 5.0, 5.0]) == 0.0

    def test_jitter_single_sample(self):
        assert jitter([5.0]) == 0.0

    def test_summary(self):
        summary = summarize_latencies([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_summary_empty(self):
        summary = summarize_latencies([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_scaled(self):
        summary = LatencySummary(3, 2.0, 2.0, 3.0, 3.0, 1.0, 0.5)
        scaled = summary.scaled(0.5)
        assert scaled.mean == 1.0
        assert scaled.jitter == 0.25
        assert scaled.count == 3


class TestCpuReport:
    def test_core_equivalents(self):
        report = CpuReport()
        report.core(0).charge("sched:enqueue", 5.0)
        report.core(1).charge("app:x", 2.0)
        assert report.core_equivalents(10.0, "sched") == pytest.approx(0.5)
        assert report.core_equivalents(10.0, "") == pytest.approx(0.7)

    def test_cores_in_use(self):
        report = CpuReport()
        report.core(0).charge("a", 9.0)
        report.core(1).charge("a", 0.1)
        assert report.cores_in_use(10.0, threshold=0.05) == 1

    def test_negative_charge_rejected(self):
        report = CpuReport()
        with pytest.raises(ValueError):
            report.core(0).charge("a", -1.0)


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("title", ["a", "bb"])
        table.add_row(1, 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "1" in lines[3] and "22" in lines[3]

    def test_wrong_cell_count_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestFormatSeries:
    def test_one_line_per_sample(self):
        from repro.stats import format_series

        text = format_series("App0", [(5.0, 1.23), (10.0, 4.56)], value_unit="G")
        lines = text.splitlines()
        assert lines[0] == "App0:"
        assert "5.00s" in lines[1] and "1.23G" in lines[1]
        assert "10.00s" in lines[2]
