"""Tests for the rank-queue backends (PIFO heap, Eiffel bucket queue)
and the PIFO↔Eiffel conformance suite."""

import random

import pytest

from repro.errors import SchedulingError
from repro.net import FiveTuple, PacketFactory
from repro.sched import EiffelBucketQueue, PifoQueue, make_queue

FLOW = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)


def mint(n, size=1500):
    factory = PacketFactory()
    return [factory.make(size, FLOW, 0.0, app=f"p{i}") for i in range(n)]


class TestPifo:
    def test_pops_in_rank_order(self):
        queue = PifoQueue()
        pkts = mint(4)
        for rank, pkt in zip([3.0, 1.0, 4.0, 2.0], pkts):
            queue.push(rank, pkt)
        ranks = [queue.pop()[0] for _ in range(4)]
        assert ranks == [1.0, 2.0, 3.0, 4.0]
        assert queue.pop() is None

    def test_equal_ranks_are_fifo(self):
        queue = PifoQueue()
        pkts = mint(5)
        for pkt in pkts:
            queue.push(7.0, pkt)
        out = [queue.pop()[1] for _ in range(5)]
        assert out == pkts

    def test_peek_rank(self):
        queue = PifoQueue()
        assert queue.peek_rank() is None
        queue.push(9.0, mint(1)[0])
        assert queue.peek_rank() == 9.0
        assert len(queue) == 1

    def test_pop_max_removes_largest(self):
        queue = PifoQueue()
        pkts = mint(4)
        for rank, pkt in zip([2.0, 8.0, 5.0, 1.0], pkts):
            queue.push(rank, pkt)
        rank, pkt = queue.pop_max()
        assert rank == 8.0 and pkt is pkts[1]
        # The remaining entries still pop in order.
        assert [queue.pop()[0] for _ in range(3)] == [1.0, 2.0, 5.0]

    def test_pop_max_tie_takes_latest_arrival(self):
        queue = PifoQueue()
        pkts = mint(3)
        for pkt in pkts:
            queue.push(4.0, pkt)
        _, pkt = queue.pop_max()
        assert pkt is pkts[-1]

    def test_pop_max_empty(self):
        assert PifoQueue().pop_max() is None

    def test_clear(self):
        queue = PifoQueue()
        queue.push(1.0, mint(1)[0])
        queue.clear()
        assert len(queue) == 0 and queue.pop() is None


class TestEiffel:
    def test_rejects_bad_geometry(self):
        with pytest.raises(SchedulingError):
            EiffelBucketQueue(granularity=0.0)
        with pytest.raises(SchedulingError):
            EiffelBucketQueue(n_buckets=1)

    def test_pops_in_rank_order(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=16)
        pkts = mint(4)
        for rank, pkt in zip([3.0, 1.0, 4.0, 2.0], pkts):
            queue.push(rank, pkt)
        assert [queue.pop()[0] for _ in range(4)] == [1.0, 2.0, 3.0, 4.0]
        assert queue.pop() is None

    def test_same_bucket_is_fifo(self):
        # Ranks 5.1 and 5.9 share the granularity-1 bucket: arrival
        # order wins inside it (the documented approximation).
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=16)
        a, b = mint(2)
        queue.push(5.9, a)
        queue.push(5.1, b)
        assert queue.pop()[1] is a
        assert queue.pop()[1] is b

    def test_overflow_spills_and_drains_in_order(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=8)
        pkts = mint(20)
        ranks = list(range(20))
        random.Random(3).shuffle(ranks)
        for rank, pkt in zip(ranks, pkts):
            queue.push(float(rank), pkt)
        assert queue.overflow_pushes > 0
        popped = [queue.pop()[0] for _ in range(20)]
        assert popped == sorted(float(r) for r in ranks)

    def test_rebase_after_drain(self):
        # Drain the wheel, then push far beyond the horizon: the next
        # pop re-bases the wheel onto the spill heap.
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=8)
        a, b = mint(2)
        queue.push(0.0, a)
        queue.pop()
        queue.push(1000.0, b)
        assert queue.overflow_pushes == 1
        rank, pkt = queue.pop()
        assert rank == 1000.0 and pkt is b
        assert queue.rebases == 1
        assert queue.base_rank == 1000.0

    def test_late_push_clamps_into_head_bucket(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=8)
        a, b, c = mint(3)
        queue.push(4.0, a)
        queue.pop()  # head advances; base_rank == 4.0
        queue.push(6.0, b)
        queue.push(1.0, c)  # below the released floor
        assert queue.late_pushes == 1
        # The late packet serves next (head bucket), before rank 6.
        assert queue.pop()[1] is c
        assert queue.pop()[1] is b

    def test_peek_rank(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=4)
        assert queue.peek_rank() is None
        queue.push(100.0, mint(1)[0])  # straight to overflow
        assert queue.peek_rank() == 100.0

    def test_pop_max_prefers_overflow(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=4)
        a, b = mint(2)
        queue.push(1.0, a)
        queue.push(50.0, b)  # overflow
        rank, pkt = queue.pop_max()
        assert rank == 50.0 and pkt is b
        assert queue.pop_max()[1] is a
        assert queue.pop_max() is None

    def test_pop_max_in_wheel_takes_largest(self):
        queue = EiffelBucketQueue(granularity=2.0, n_buckets=8)
        pkts = mint(3)
        for rank, pkt in zip([1.0, 9.0, 8.5], pkts):
            queue.push(rank, pkt)
        rank, pkt = queue.pop_max()
        assert rank == 9.0 and pkt is pkts[1]

    def test_clear_resets_geometry(self):
        queue = EiffelBucketQueue(granularity=1.0, n_buckets=4)
        queue.push(2.0, mint(1)[0])
        queue.push(99.0, mint(1)[0])
        queue.clear()
        assert len(queue) == 0
        assert queue.base_rank == 0.0 and queue.peek_rank() is None


class TestConformance:
    """PIFO and Eiffel must agree wherever Eiffel is exact: ranks on
    the granularity lattice, pushes at or above the released floor."""

    def _pair(self, n_buckets=16):
        return PifoQueue(), EiffelBucketQueue(granularity=1.0, n_buckets=n_buckets)

    def test_batch_identical_order_with_overflow(self):
        pifo, eiffel = self._pair(n_buckets=16)
        rng = random.Random(11)
        pkts = mint(400)
        for pkt in pkts:
            rank = float(rng.randrange(0, 64))  # 4× the wheel horizon
            pifo.push(rank, pkt)
            eiffel.push(rank, pkt)
        assert eiffel.overflow_pushes > 0
        while len(pifo):
            expect = pifo.pop()
            got = eiffel.pop()
            assert got[0] == expect[0]
            assert got[1] is expect[1]
        assert eiffel.pop() is None

    def test_interleaved_identical_order(self):
        # WFQ-like envelope: new ranks never fall below the largest
        # rank already released (the virtual-time floor).
        pifo, eiffel = self._pair(n_buckets=32)
        rng = random.Random(23)
        factory = PacketFactory()
        floor = 0.0
        mismatches = 0
        for _ in range(2000):
            if rng.random() < 0.6 or len(pifo) == 0:
                rank = floor + float(rng.randrange(0, 200))
                pkt = factory.make(1500, FLOW, 0.0)
                pifo.push(rank, pkt)
                eiffel.push(rank, pkt)
            else:
                expect = pifo.pop()
                got = eiffel.pop()
                if got[1] is not expect[1]:
                    mismatches += 1
                floor = max(floor, expect[0])
        assert mismatches == 0
        assert eiffel.rebases + eiffel.overflow_pushes > 0  # exercised

    def test_fifo_ranks_serve_fifo_everywhere(self):
        pifo, eiffel = self._pair()
        pkts = mint(50)
        for i, pkt in enumerate(pkts):
            pifo.push(float(i), pkt)
            eiffel.push(float(i), pkt)
        assert [pifo.pop()[1] for _ in range(50)] == pkts
        assert [eiffel.pop()[1] for _ in range(50)] == pkts


class TestFactory:
    def test_builds_both_backends(self):
        assert isinstance(make_queue("pifo"), PifoQueue)
        eiffel = make_queue("eiffel", granularity=2.0, n_buckets=8)
        assert isinstance(eiffel, EiffelBucketQueue)
        assert eiffel.granularity == 2.0 and eiffel.n_buckets == 8

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError):
            make_queue("calendar")
