"""Tests for scheduling-tree construction and per-class updates."""

import pytest

from repro.core.sched_tree import SchedulingParams, SchedulingTree
from repro.errors import PolicyError, UnknownClassError
from repro.tc import parse_script

MOTIVATION_SCRIPT = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10mbit ceil 10mbit
fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0 rate 10mbit
fv class add dev eth0 parent 1:1 classid 1:2 fv prio 1 rate 8mbit
fv class add dev eth0 parent 1:2 classid 1:20 fv weight 1 borrow 1:3
fv class add dev eth0 parent 1:2 classid 1:3 fv weight 2
fv class add dev eth0 parent 1:3 classid 1:30 fv prio 0 rate 4mbit borrow 1:20
fv class add dev eth0 parent 1:3 classid 1:31 fv prio 1 rate 2mbit guarantee 2mbit threshold 4mbit borrow 1:20
fv filter add dev eth0 parent 1: prio 1 match app=NC flowid 1:10
fv filter add dev eth0 parent 1: prio 1 match app=WS flowid 1:20
fv filter add dev eth0 parent 1: prio 1 match app=KVS flowid 1:30
fv filter add dev eth0 parent 1: prio 1 match app=ML flowid 1:31
"""


@pytest.fixture
def tree():
    policy = parse_script(MOTIVATION_SCRIPT)
    return SchedulingTree.from_policy(
        policy, link_rate_bps=10e6, params=SchedulingParams(update_interval=0.1, expire_after=1.0)
    )


class TestConstruction:
    def test_node_count(self, tree):
        assert len(tree) == 7

    def test_root_identified(self, tree):
        assert tree.root.classid == "1:1"
        assert tree.root.is_root

    def test_depths(self, tree):
        assert tree.node("1:1").depth == 0
        assert tree.node("1:10").depth == 1
        assert tree.node("1:31").depth == 3

    def test_leaves(self, tree):
        assert {n.classid for n in tree.leaves()} == {"1:10", "1:20", "1:30", "1:31"}

    def test_path_from_root(self, tree):
        path = [n.classid for n in tree.node("1:31").path_from_root()]
        assert path == ["1:1", "1:2", "1:3", "1:31"]

    def test_unknown_class_raises(self, tree):
        with pytest.raises(UnknownClassError):
            tree.node("9:99")

    def test_contains(self, tree):
        assert "1:30" in tree
        assert "9:99" not in tree

    def test_multiple_top_classes_rejected(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv class add dev eth0 parent 1: classid 1:1 fv rate 1mbit\n"
            "fv class add dev eth0 parent 1: classid 1:2 fv rate 1mbit\n"
        )
        with pytest.raises(PolicyError, match="single top class"):
            SchedulingTree.from_policy(policy)

    def test_no_classes_rejected(self):
        policy = parse_script("fv qdisc add dev eth0 root handle 1: fv\n")
        with pytest.raises(PolicyError, match="no classes"):
            SchedulingTree.from_policy(policy)

    def test_link_rate_synthesises_root_rate(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: prio\n"
            "fv class add dev eth0 parent 1: classid 1:1 fv\n"
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
        )
        tree = SchedulingTree.from_policy(policy, link_rate_bps=40e9)
        assert tree.root.theta == pytest.approx(0.97 * 40e9)


class TestPrimedRates:
    """prime() must produce the static policy rates before any traffic."""

    def test_root_theta(self, tree):
        # 3% of the configured rate is withheld as Tx-FIFO headroom.
        assert tree.root.theta == pytest.approx(0.97 * 10e6)

    def test_priority_class_gets_full_parent(self, tree):
        assert tree.node("1:10").theta == pytest.approx(0.97 * 10e6)

    def test_residual_class_initially_full(self, tree):
        # No NC consumption measured yet, so the residual is the whole parent.
        assert tree.node("1:2").theta == pytest.approx(0.97 * 10e6)

    def test_weighted_split(self, tree):
        # The root grants 97% of its configured rate (link_headroom).
        assert tree.node("1:20").theta == pytest.approx(0.97 * 10e6 / 3)
        assert tree.node("1:3").theta == pytest.approx(0.97 * 20e6 / 3)

    def test_describe_contains_all_classes(self, tree):
        text = tree.describe()
        for classid in ("1:1", "1:10", "1:2", "1:20", "1:3", "1:30", "1:31"):
            assert classid in text


class TestUpdateGating:
    def test_update_respects_interval(self, tree):
        node = tree.node("1:10")
        node.touch(0.05)
        assert not node.update(0.05)  # < update_interval since prime
        assert node.update(0.15)
        assert not node.update(0.2)
        assert node.update(0.3)

    def test_try_begin_blocks_second_updater(self, tree):
        node = tree.node("1:10")
        node.touch(0.5)
        assert node.try_begin_update(0.5)
        assert not node.try_begin_update(0.5)  # flag held
        node.end_update()
        # Interval not elapsed relative to last_update (still 0) — but
        # begin/end without perform doesn't advance last_update.
        assert node.try_begin_update(0.5)
        node.end_update()

    def test_update_counts(self, tree):
        node = tree.node("1:10")
        node.touch(0.5)
        node.update(0.5)
        assert node.updates == 1

    def test_gamma_rolls_at_update(self, tree):
        node = tree.node("1:10")
        node.touch(0.1)
        node.update(0.1)
        node.count_forwarded(1_000_000.0)
        node.touch(0.3)
        node.update(0.3)
        # One epoch's raw Γ (1 Mbit over 0.2 s = 5 Mbit/s) folded in at
        # the EWMA weight gamma_alpha.
        alpha = node.params.gamma_alpha
        assert node.gamma_rate == pytest.approx(alpha * 1_000_000.0 / 0.2)

    def test_gamma_converges_to_steady_rate(self, tree):
        node = tree.node("1:10")
        t = 0.1
        for _ in range(25):
            node.touch(t)
            node.update(t)
            node.count_forwarded(5e6 * 0.1)  # 5 Mbit/s worth per epoch
            t += 0.1
        assert node.gamma_rate == pytest.approx(5e6, rel=0.02)


class TestExpiry:
    def test_idle_class_status_reset(self, tree):
        node = tree.node("1:10")
        node.touch(0.1)
        node.update(0.1)
        node.count_forwarded(5e6)
        node.touch(0.2)
        node.update(0.25)
        assert node.gamma_rate > 0
        # 2 simulated seconds of silence (> expire_after=1.0).
        node.update(2.5)
        assert node.gamma_rate == 0.0

    def test_active_class_not_reset(self, tree):
        node = tree.node("1:10")
        node.touch(0.1)
        node.update(0.1)
        node.count_forwarded(5e6)
        node.touch(0.9)
        node.update(0.95)
        assert node.gamma_rate > 0

    def test_is_active_window(self, tree):
        node = tree.node("1:10")
        node.touch(1.0)
        assert node.is_active(1.5)
        assert node.is_active(2.0)
        assert not node.is_active(2.1)


class TestSchedulingParams:
    def test_defaults_valid(self):
        params = SchedulingParams()
        assert params.update_interval == 0.001

    def test_bad_interval_rejected(self):
        with pytest.raises(PolicyError):
            SchedulingParams(update_interval=0.0)

    def test_expire_below_interval_rejected(self):
        with pytest.raises(PolicyError):
            SchedulingParams(update_interval=0.01, expire_after=0.005)

    def test_bad_gamma_mode_rejected(self):
        with pytest.raises(PolicyError):
            SchedulingParams(gamma_mode="both")

    def test_scaled_stretches_time_constants(self):
        scaled = SchedulingParams.scaled(1000.0)
        assert scaled.update_interval == pytest.approx(1.0)
        assert scaled.expire_after == pytest.approx(10.0)
