"""Unit tests for the fluid fast-forward lane (``repro.nic.fluid``).

The lane's *equivalence* contract (bit-identity with fluid=off) is
pinned by ``test_burst_ingress_equivalence.py`` and the benchmark's
fluid-off count; these tests pin the lane's *mechanics*: the
construction guard that decides when it may engage at all, the
engaged/mixed mode split, spill-triggered suspension, the micro-queue
draining at the horizon, and the absorption statistics the bench and
docs quote.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.frontend import FlowValveFrontend
from repro.experiments import hotpath
from repro.experiments.base import ScaledSetup, _scale_demand
from repro.experiments.policies import motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.host import FixedRateSender
from repro.net import PacketFactory, PacketSink
from repro.net.boundary import BoundaryOutbox
from repro.nic import NicPipeline
from repro.sim import Simulator


def _world(*, fluid=True, on_drop=None, receiver=None, boundary=None):
    setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    cfg = replace(setup.nic_config(), fluid=fluid)
    if boundary is not None:
        recv = None  # boundary and receiver are mutually exclusive
    else:
        recv = receiver if receiver is not None else sink.receive
    nic = NicPipeline.with_flowvalve(
        sim, cfg, frontend,
        receiver=recv,
        on_drop=on_drop,
        boundary=boundary,
    )
    factory = PacketFactory()
    for index, (app, demand) in enumerate(
        sorted(motivation_demands(setup.nominal_link_bps).items())
    ):
        FixedRateSender(
            sim, app, factory, nic.submit,
            rate_bps=setup.sender_rate(), packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index, jitter=0.1, rng=sim.random.stream(app),
        )
    return sim, nic, sink


class TestConstructionGuard:
    """The lane engages only when every bypassed channel is lazy/absent."""

    def test_engages_on_the_lazy_fast_path(self):
        _, nic, _ = _world()
        assert nic._fluid is not None

    def test_config_knob_disables(self):
        _, nic, _ = _world(fluid=False)
        assert nic._fluid is None

    def test_drop_callback_disables(self):
        drops = []
        _, nic, _ = _world(on_drop=drops.append)
        assert nic._fluid is None

    def test_eventful_receiver_disables(self):
        # A wrapper around the sink defeats lazy delivery, and with it
        # the lane (it replays Link.send at virtual timestamps, which
        # is only invisible when deliveries fold lazily).
        sink_box = []

        def receive(packet):
            sink_box.append(packet)

        _, nic, _ = _world(receiver=receive)
        assert nic.link._lazy_sink is None
        assert nic._fluid is None

    def test_fluid_off_still_runs_the_batched_fast_path(self):
        sim, nic, sink = _world(fluid=False)
        sim.run(until=0.2)
        assert nic.fast_path
        assert nic.submitted > 0
        assert sink.total_packets > 0


class TestBoundaryEmission:
    """Boundary egress (DESIGN.md §11): the lane engages when the wire
    terminates in a :class:`BoundaryOutbox` and appends wire records at
    the exact virtual serialisation-finish times the eventful path
    would have committed."""

    def test_boundary_sink_engages(self):
        outbox = BoundaryOutbox("nic0", "nic1")
        _, nic, _ = _world(boundary=outbox)
        assert nic.link._lazy_sink is outbox
        assert nic._fluid is not None

    def test_drop_callback_still_disables_with_boundary(self):
        drops = []
        outbox = BoundaryOutbox("nic0", "nic1")
        _, nic, _ = _world(boundary=outbox, on_drop=drops.append)
        assert nic.link._lazy_sink is outbox
        assert nic._fluid is None

    def test_emitted_records_bit_identical_to_fluid_off(self):
        # The emit half of the cross-boundary contract: the analytic
        # epilogue's (time, seq, ...) tuples must equal the batched
        # per-packet path's, field for field, float repr included.
        on_box = BoundaryOutbox("nic0", "nic1")
        sim_on, nic_on, _ = _world(boundary=on_box)
        sim_on.run(until=1.0)
        off_box = BoundaryOutbox("nic0", "nic1")
        sim_off, nic_off, _ = _world(fluid=False, boundary=off_box)
        sim_off.run(until=1.0)
        assert nic_on._fluid is not None and nic_off._fluid is None
        assert on_box.records, "boundary world must actually emit frames"
        assert on_box.records == off_box.records
        assert sim_on.events_executed < sim_off.events_executed

    def test_records_commit_in_wire_order(self):
        box = BoundaryOutbox("nic0", "nic1")
        sim, nic, _ = _world(boundary=box)
        sim.run(until=1.0)
        assert nic._fluid.absorbed > 0
        times = [record[0] for record in box.records]
        assert times == sorted(times)


class TestAbsorptionMechanics:
    def test_lane_absorbs_most_packets_on_the_hotpath_workload(self):
        sim, nic = hotpath.build()
        sim.run(until=2.0)
        lane = nic._fluid
        assert lane is not None
        # After warm-up (cold caches force real walks) the steady state
        # is almost fully absorbed; spills stay a tiny fraction.
        assert lane.absorbed > 0.9 * (lane.absorbed + lane.spills)
        # Mid-run a handful of submissions are still crossing the Rx
        # DMA latency; everything that arrived went through the lane.
        assert lane.absorbed + lane.spills <= nic.submitted
        assert lane.absorbed + lane.spills >= 0.99 * nic.submitted

    def test_spills_route_through_the_real_path_unharmed(self):
        sim, nic = hotpath.build()
        sim.run(until=2.0)
        lane = nic._fluid
        # Cold-start packets spill (first packet per flow misses the
        # EMC) yet everything is accounted for: no packet is lost
        # between the lane and the per-packet path.
        assert lane.spills > 0
        assert nic.forwarded > 0 and nic.dropped > 0
        assert nic.forwarded + nic.dropped <= nic.submitted

    def test_in_flight_drains_by_end_of_run(self):
        sim, nic = hotpath.build()
        sim.run(until=1.0)
        lane = nic._fluid
        # The end hook flushes every deferred micro-step at the horizon.
        assert lane.in_flight == 0
        assert not lane._micro

    def test_suspend_happens_and_is_rare(self):
        sim, nic = hotpath.build()
        sim.run(until=20.0)
        lane = nic._fluid
        # Engaged-mode spills force materialising the private micro
        # queue back into kernel events; the workload hits this path
        # but it must stay rare or the lane isn't paying for itself.
        assert lane.suspends > 0
        assert lane.suspends < 0.01 * lane.absorbed

    def test_event_budget_headline(self):
        # The tentpole number: well under one kernel event per packet.
        sim, nic = hotpath.build()
        sim.run(until=20.0)
        assert nic.submitted == hotpath.SEED_PACKETS
        assert sim.events_executed / nic.submitted < 0.15

    def test_fluid_off_reproduces_committed_event_count(self):
        sim, nic = hotpath.build(fluid=False)
        sim.run(until=20.0)
        assert nic._fluid is None
        assert sim.events_executed == 451_618
        assert nic.submitted == hotpath.SEED_PACKETS
