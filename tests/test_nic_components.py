"""Tests for the SmartNIC model's components."""

import pytest

from repro.errors import BufferExhausted, ConfigError
from repro.net import FiveTuple, PacketFactory
from repro.net.packet import DropReason
from repro.nic import BufferPool, CycleCosts, MemoryHierarchy, NicConfig, ReorderBuffer, RxQueue, TxRing
from repro.sim import Simulator


@pytest.fixture
def factory():
    return PacketFactory()


def make_packet(factory, seq_hint=0):
    return factory.make(64, FiveTuple("a", "b", 1, 2), 0.0)


class TestNicConfig:
    def test_defaults_valid(self):
        cfg = NicConfig()
        assert cfg.n_workers == 50
        assert cfg.freq_hz == 1.2e9

    def test_seconds_conversion(self):
        cfg = NicConfig(freq_hz=1e9)
        assert cfg.seconds(1000) == pytest.approx(1e-6)

    def test_worker_capacity(self):
        cfg = NicConfig(freq_hz=1.2e9, n_workers=50)
        assert cfg.worker_capacity_pps(3000) == pytest.approx(20e6)

    def test_scaled_preserves_ratios(self):
        cfg = NicConfig()
        scaled = cfg.scaled(100.0)
        assert scaled.freq_hz == pytest.approx(cfg.freq_hz / 100)
        assert scaled.line_rate_bps == pytest.approx(cfg.line_rate_bps / 100)
        assert scaled.rx_dma_latency == pytest.approx(cfg.rx_dma_latency * 100)
        # Depth × serialisation-time products are preserved.
        assert scaled.tx_ring_depth == max(16, cfg.tx_ring_depth // 100)

    def test_bad_lock_mode_rejected(self):
        with pytest.raises(ConfigError):
            NicConfig(lock_mode="optimistic")

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            NicConfig(costs=CycleCosts(meter=-1))

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            NicConfig().scaled(0.0)


class TestMemoryHierarchy:
    def test_standard_regions_present(self):
        memory = MemoryHierarchy()
        for name in ("LMEM", "CLS", "CTM", "IMEM", "EMEM"):
            assert memory.region(name).name == name

    def test_latency_ordering(self):
        memory = MemoryHierarchy()
        assert (
            memory.region("LMEM").read_cycles
            < memory.region("CLS").read_cycles
            < memory.region("IMEM").read_cycles
            < memory.region("EMEM").read_cycles
        )

    def test_latency_hiding(self):
        memory = MemoryHierarchy()
        assert memory.hidden(160, threads_per_me=4) == 40
        assert memory.hidden(160, threads_per_me=1) == 160


class TestRings:
    def test_rx_queue_tail_drop(self, factory):
        sim = Simulator()
        queue = RxQueue(sim, vf_index=0, depth=2)
        assert queue.offer(make_packet(factory))
        assert queue.offer(make_packet(factory))
        overflow = make_packet(factory)
        assert not queue.offer(overflow)
        assert overflow.drop_reason is DropReason.QUEUE_FULL
        assert queue.tail_drops == 1

    def test_tx_ring_high_water_mark(self, factory):
        sim = Simulator()
        ring = TxRing(sim, depth=10)
        for _ in range(4):
            ring.offer(make_packet(factory))
        ring.try_get()
        assert ring.max_occupancy == 4
        assert len(ring) == 3


class TestReorderBuffer:
    def test_in_order_release(self, factory):
        released = []
        reorder = ReorderBuffer(released.append)
        t0, t1, t2 = (reorder.take_ticket() for _ in range(3))
        p0, p1, p2 = (make_packet(factory) for _ in range(3))
        reorder.complete(t2, p2)   # finishes first but must wait
        assert released == []
        reorder.complete(t0, p0)
        assert released == [p0]
        reorder.complete(t1, p1)
        assert released == [p0, p1, p2]

    def test_drop_frees_slot(self, factory):
        released = []
        reorder = ReorderBuffer(released.append)
        t0 = reorder.take_ticket()
        t1 = reorder.take_ticket()
        p1 = make_packet(factory)
        reorder.complete(t1, p1)
        reorder.complete(t0, None)  # dropped packet
        assert released == [p1]

    def test_double_complete_rejected(self, factory):
        reorder = ReorderBuffer(lambda p: None)
        ticket = reorder.take_ticket()
        reorder.complete(ticket, None)
        with pytest.raises(ValueError):
            reorder.complete(ticket, None)

    def test_in_flight_accounting(self):
        reorder = ReorderBuffer(lambda p: None)
        t0 = reorder.take_ticket()
        reorder.take_ticket()
        assert reorder.in_flight == 2
        reorder.complete(t0, None)
        assert reorder.in_flight == 1

    def test_drop_only_completions_advance_next_release(self, factory):
        # A run of pure drops (None completions) must advance the
        # release cursor so a later forward is emitted immediately.
        released = []
        reorder = ReorderBuffer(released.append)
        tickets = [reorder.take_ticket() for _ in range(4)]
        for ticket in tickets[:3]:
            reorder.complete(ticket, None)
        assert reorder._next_release == 3
        assert released == []
        p3 = make_packet(factory)
        reorder.complete(tickets[3], p3)
        assert released == [p3]
        assert reorder.in_flight == 0

    def test_out_of_order_drops_advance_through_parked_run(self, factory):
        # Parked drop-only completions are swept past in one go once
        # the head ticket arrives, advancing _next_release over the
        # whole run without emitting anything for the drops.
        released = []
        reorder = ReorderBuffer(released.append)
        t0, t1, t2, t3 = (reorder.take_ticket() for _ in range(4))
        reorder.complete(t1, None)
        reorder.complete(t2, None)
        p3 = make_packet(factory)
        reorder.complete(t3, p3)
        assert released == [] and reorder.parked == 3
        reorder.complete(t0, None)  # head drop releases the whole run
        assert released == [p3]
        assert reorder._next_release == 4
        assert reorder.parked == 0

    def test_double_complete_of_parked_ticket_rejected(self, factory):
        reorder = ReorderBuffer(lambda p: None)
        reorder.take_ticket()  # ticket 0 stays outstanding
        t1 = reorder.take_ticket()
        reorder.complete(t1, make_packet(factory))  # parks
        with pytest.raises(ValueError):
            reorder.complete(t1, None)

    def test_max_parked_high_water_mark(self, factory):
        released = []
        reorder = ReorderBuffer(released.append)
        tickets = [reorder.take_ticket() for _ in range(5)]
        packets = [make_packet(factory) for _ in range(5)]
        # Complete in reverse: 4, 3, 2, 1 park (watermark 4), then 0.
        for ticket, packet in list(zip(tickets, packets))[:0:-1]:
            reorder.complete(ticket, packet)
        assert reorder.parked == 4
        assert reorder.max_parked == 4
        reorder.complete(tickets[0], packets[0])
        assert released == packets
        assert reorder.parked == 0
        assert reorder.max_parked == 4  # watermark survives the drain


class TestBufferPool:
    def test_allocate_release_cycle(self):
        sim = Simulator()
        pool = BufferPool(sim, count=2, recycle_delay=0.0)
        assert pool.try_allocate()
        assert pool.try_allocate()
        assert not pool.try_allocate()
        assert pool.exhaustion_drops == 1
        pool.release()
        assert pool.free == 1

    def test_recycle_delay(self):
        sim = Simulator()
        pool = BufferPool(sim, count=1, recycle_delay=0.5)
        pool.try_allocate()
        pool.release()
        assert pool.free == 0  # still with the manager core
        sim.run()
        assert pool.free == 1

    def test_min_free_watermark(self):
        sim = Simulator()
        pool = BufferPool(sim, count=3, recycle_delay=0.0)
        pool.try_allocate()
        pool.try_allocate()
        assert pool.min_free == 1

    def test_double_release_rejected(self):
        sim = Simulator()
        pool = BufferPool(sim, count=1, recycle_delay=0.0)
        pool.try_allocate()
        pool.release()
        with pytest.raises(BufferExhausted):
            pool.release()
