"""The kernel run lane: ``EventQueue.push_run`` / ``EventRun``.

A run is a pre-sorted train of future callbacks occupying a single
heap slot (DESIGN.md §7); the event loop drains it in place, peeking
each item against the heap top and the zero-delay FIFO. These tests
pin down the ordering contract (interleaving with ``push``,
``push_batch`` and the nowq at equal timestamps resolves exactly as
individual pushes would), cancellation of an in-flight run, degenerate
trains, and the horizon/``step()`` unbundling paths — plus a
microbenchmark asserting the lane actually collapses kernel events.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.events import EventRun


def _mark(log, tag):
    return (lambda: log.append(tag),)


class TestPushRunOrdering:
    def test_train_fires_in_time_order_as_one_kernel_event(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run(
            [(t, log.append, (t,)) for t in (0.1, 0.2, 0.3)]
        )
        assert len(run) == 3
        assert run.next_time == 0.1
        sim.run()
        assert log == [0.1, 0.2, 0.3]
        # The whole drained segment costs ONE executed kernel event.
        assert sim.events_executed == 1
        assert len(run) == 0
        assert run.next_time is None

    def test_interleaves_with_heap_events_exactly(self):
        sim = Simulator()
        log = []
        sim.schedule(0.15, log.append, "heap:0.15")
        sim._queue.push_run([
            (0.1, log.append, ("run:0.1",)),
            (0.2, log.append, ("run:0.2",)),
        ])
        sim.schedule(0.25, log.append, "heap:0.25")
        sim.run()
        assert log == ["run:0.1", "heap:0.15", "run:0.2", "heap:0.25"]

    def test_equal_time_ties_resolve_by_insertion_seq_across_lanes(self):
        # seqs are drawn from the shared counter at insertion: a run
        # item inserted *before* an equal-time push fires first, one
        # inserted *after* fires second — just like individual pushes.
        sim = Simulator()
        log = []
        sim._queue.push_run([(0.1, log.append, ("run-first",))])
        sim.schedule_at(0.1, log.append, "push-second")
        sim._queue.push_run([(0.1, log.append, ("run-third",))])
        sim._queue.push_batch([(0.1, log.append, ("batch-fourth",))])
        sim.run()
        assert log == ["run-first", "push-second", "run-third", "batch-fourth"]

    def test_zero_delay_fifo_preempts_at_equal_time(self):
        # A callback scheduled with delay 0 *during* a drain goes to
        # the nowq with a later seq but the same timestamp; the drain
        # must yield to it before any same-time run item inserted
        # after it... and run earlier-seq run items first.
        sim = Simulator()
        log = []

        def spawner():
            log.append("run:first")
            sim.schedule(0.0, log.append, "nowq:child")

        sim._queue.push_run([
            (0.1, spawner, ()),
            (0.1, log.append, ("run:second",)),
            (0.2, log.append, ("run:third",)),
        ])
        sim.run()
        # run:second was inserted (seq-wise) before nowq:child was
        # created, so it fires first; the nowq child still beats the
        # strictly-later 0.2 item.
        assert log == ["run:first", "run:second", "nowq:child", "run:third"]

    def test_empty_train_is_a_noop(self):
        sim = Simulator()
        run = sim._queue.push_run([])
        assert len(run) == 0
        assert sim.pending_events == 0
        sim.run()
        assert sim.events_executed == 0

    def test_singleton_train(self):
        sim = Simulator()
        log = []
        sim._queue.push_run([(0.5, log.append, ("only",))])
        assert sim.pending_events == 1
        final = sim.run()
        assert log == ["only"]
        assert final == 0.5

    def test_non_monotone_train_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim._queue.push_run([
                (0.2, print, ()),
                (0.1, print, ()),
            ])

    def test_extend_cancelled_run_rejected(self):
        sim = Simulator()
        run = sim._queue.push_run([(0.1, print, ())])
        run.cancel()
        with pytest.raises(SimulationError):
            sim._queue.extend_run(run, [(0.2, print, ())])


class TestMergeRun:
    """``EventQueue.merge_run``: sorted merge + stale-key re-keying.

    Merging lets every sender share ONE run (the fluid-lane ingress
    path): new entries may interleave with or precede the pending
    items. When the merged head moves earlier than the queued heap key,
    a fresh heap entry is pushed and the old one goes *stale*; the
    event loop and ``peek_time`` must skip any popped run entry whose
    ``(time, seq)`` key no longer matches ``run._key``.
    """

    def test_merge_interleaves_by_time(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, log.append, (0.1,)), (0.3, log.append, (0.3,))])
        sim._queue.merge_run(run, [(0.2, log.append, (0.2,)), (0.4, log.append, (0.4,))])
        sim.run()
        assert log == [0.1, 0.2, 0.3, 0.4]

    def test_merge_head_earlier_rekeys_and_stale_entry_skipped(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.5, log.append, ("late",))])
        old_key = run._key
        sim._queue.merge_run(run, [(0.1, log.append, ("early",))])
        assert run._key != old_key
        assert run.next_time == 0.1
        # Both heap entries exist; the stale one must be discarded, not
        # double-fire the run.
        sim.run()
        assert log == ["early", "late"]

    def test_stale_entry_invisible_to_peek_time(self):
        sim = Simulator()
        run = sim._queue.push_run([(0.5, print, ())])
        sim._queue.merge_run(run, [(0.1, print, ())])
        assert sim._queue.peek_time() == 0.1

    def test_merge_equal_time_ties_follow_insertion_order(self):
        # Merged items draw their seq at merge time: an equal-time heap
        # push issued *between* the original train and the merge fires
        # between them, exactly as individual pushes would.
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, log.append, ("train",))])
        sim.schedule_at(0.1, log.append, "push")
        sim._queue.merge_run(run, [(0.1, log.append, ("merged",))])
        sim.run()
        assert log == ["train", "push", "merged"]

    def test_merge_into_drained_unqueued_run_requeues(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, log.append, ("first",))])
        sim.run()
        assert log == ["first"] and not run._queued
        sim._queue.merge_run(run, [(0.2, log.append, ("second",))])
        sim.run()
        assert log == ["first", "second"]

    def test_merge_while_executing_rearms_with_merged_head(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, None, ()), (0.5, log.append, ("tail",))])

        def merge_more():
            log.append("head")
            sim._queue.merge_run(run, [(0.2, log.append, ("merged",))])

        run._items[0] = (run._items[0][0], run._items[0][1], merge_more, ())
        sim.run()
        assert log == ["head", "merged", "tail"]

    def test_merge_into_cancelled_run_rejected(self):
        sim = Simulator()
        run = sim._queue.push_run([(0.1, print, ())])
        run.cancel()
        with pytest.raises(SimulationError):
            sim._queue.merge_run(run, [(0.2, print, ())])

    def test_non_monotone_merge_entries_rejected(self):
        sim = Simulator()
        run = sim._queue.push_run([(0.1, print, ())])
        with pytest.raises(SimulationError):
            sim._queue.merge_run(run, [(0.3, print, ()), (0.2, print, ())])

    def test_merged_items_count_one_kernel_event_per_segment(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, log.append, (1,)), (0.2, log.append, (2,))])
        sim._queue.merge_run(run, [(0.15, log.append, (1.5,)), (0.3, log.append, (3,))])
        sim.run()
        assert log == [1, 1.5, 2, 3]
        # One contiguous drain segment: one executed kernel event.
        assert sim.events_executed == 1


class TestRunCancellation:
    def test_cancel_before_any_item_fires(self):
        sim = Simulator()
        log = []
        run = sim._queue.push_run([(0.1, log.append, ("a",)), (0.2, log.append, ("b",))])
        run.cancel()
        sim.run()
        assert log == []
        assert sim.pending_events == 0

    def test_cancel_mid_flight_from_a_timer(self):
        # A heap event between two run items cancels the train: the
        # already-executed prefix stands, the tail never fires, and the
        # queue's live count drops to zero.
        sim = Simulator()
        log = []
        run = sim._queue.push_run([
            (0.1, log.append, ("a",)),
            (0.3, log.append, ("b",)),
        ])
        sim.schedule_at(0.2, run.cancel)
        sim.run()
        assert log == ["a"]
        assert sim.pending_events == 0

    def test_cancel_from_inside_an_item_stops_the_rest_of_the_segment(self):
        sim = Simulator()
        log = []
        run = EventRun()
        sim._queue.extend_run(run, [
            (0.1, log.append, ("a",)),
            (0.1, run.cancel, ()),
            (0.1, log.append, ("never",)),
        ])
        sim.run()
        assert log == ["a"]
        assert sim.pending_events == 0

    def test_cancelled_run_prunes_from_peek_time(self):
        sim = Simulator()
        run = sim._queue.push_run([(0.1, print, ())])
        sim.schedule_at(0.4, lambda: None)
        run.cancel()
        assert sim._queue.peek_time() == 0.4


class TestRunHorizonAndStep:
    def test_horizon_splits_a_train_across_two_runs(self):
        sim = Simulator()
        log = []
        sim._queue.push_run([(t, log.append, (t,)) for t in (0.1, 0.2, 0.3, 0.4)])
        sim.run(until=0.25)
        assert log == [0.1, 0.2]
        assert sim.now == 0.25
        sim.run(until=1.0)
        assert log == [0.1, 0.2, 0.3, 0.4]

    def test_item_exactly_at_horizon_fires(self):
        sim = Simulator()
        log = []
        sim._queue.push_run([(0.1, log.append, (0.1,)), (0.2, log.append, (0.2,))])
        sim.run(until=0.2)
        assert log == [0.1, 0.2]

    def test_step_unbundles_one_item_at_a_time(self):
        sim = Simulator()
        log = []
        sim._queue.push_run([(0.1, log.append, ("a",)), (0.2, log.append, ("b",))])
        assert sim.step() is True
        assert log == ["a"]
        assert sim.now == 0.1
        assert sim.step() is True
        assert log == ["a", "b"]
        assert sim.step() is False

    def test_extend_while_in_flight_rearms_the_train(self):
        # Feed the run from one of its own items: the appended tail
        # must keep draining within the same lane.
        sim = Simulator()
        log = []
        run = EventRun()

        def feed():
            log.append("head")
            sim._queue.extend_run(run, [(0.3, log.append, ("tail",))])

        sim._queue.extend_run(run, [(0.1, feed, ())])
        sim.run()
        assert log == ["head", "tail"]


class TestRunLaneMicrobench:
    def test_train_collapses_kernel_events(self):
        # 10k callbacks as one train vs 10k heap events: identical
        # callback order and final time, kernel event count 1 vs 10k.
        n = 10_000
        times = [1e-6 * (i + 1) for i in range(n)]

        sim_run = Simulator()
        got_run = []
        sim_run._queue.push_run([(t, got_run.append, (t,)) for t in times])
        sim_run.run()

        sim_evt = Simulator()
        got_evt = []
        sim_evt._queue.push_batch([(t, got_evt.append, (t,)) for t in times])
        sim_evt.run()

        assert got_run == got_evt == times
        assert sim_run.now == sim_evt.now
        assert sim_evt.events_executed == n
        assert sim_run.events_executed == 1
