"""Tests for offload compilation (qdisc chaining, §III-E)."""

import pytest

from repro.core import FlowValve
from repro.core.offload import compile_offload
from repro.core.scheduling import Verdict
from repro.core.sched_tree import SchedulingParams
from repro.errors import PolicyError
from repro.net import FiveTuple, PacketFactory
from repro.tc.parser import parse_script
from repro.tc.validate import validate_policy

from conftest import TEST_PARAMS, constant, drive_valve

#: The paper's chaining shape: PRIO at root, HTB under band 2.
CHAINED = """
tc qdisc add dev eth0 root handle 1: prio bands 3
tc qdisc add dev eth0 parent 1:2 handle 2: htb
tc class add dev eth0 parent 2: classid 2:1 htb rate 8mbit ceil 8mbit
tc class add dev eth0 parent 2:1 classid 2:10 htb rate 6mbit weight 2
tc class add dev eth0 parent 2:1 classid 2:20 htb rate 2mbit weight 1
tc filter add dev eth0 parent 1: prio 1 match app=NC flowid 1:1
tc filter add dev eth0 parent 1: prio 1 match app=KVS flowid 2:10
tc filter add dev eth0 parent 1: prio 1 match app=ML flowid 2:20
"""


class TestCompileOffload:
    def test_single_htb_passthrough(self):
        policy = parse_script(
            "tc qdisc add dev eth0 root handle 1: htb\n"
            "tc class add dev eth0 parent 1: classid 1:1 htb rate 1mbit\n"
        )
        assert compile_offload(policy, 10e6) is policy

    def test_chained_tree_validates(self):
        compiled = compile_offload(parse_script(CHAINED), 10e6)
        validate_policy(compiled)

    def test_bands_become_priority_classes(self):
        compiled = compile_offload(parse_script(CHAINED), 10e6)
        bands = [c for c in compiled.classes if c.classid.startswith("f:b")]
        assert len(bands) == 3
        assert sorted(c.prio for c in bands) == [0, 1, 2]

    def test_htb_classes_grafted_under_band(self):
        compiled = compile_offload(parse_script(CHAINED), 10e6)
        class_map = compiled.class_map()
        leaf = class_map["f:210"]
        assert class_map[leaf.parent].parent == "f:b2"

    def test_filters_rewritten(self):
        compiled = compile_offload(parse_script(CHAINED), 10e6)
        targets = {f.match["app"]: f.flowid for f in compiled.filters}
        assert targets["NC"] == "f:b1"
        assert targets["KVS"] == "f:210"
        assert targets["ML"] == "f:220"

    def test_prio_under_prio_rejected(self):
        policy = parse_script(
            "tc qdisc add dev eth0 root handle 1: prio\n"
            "tc qdisc add dev eth0 parent 1:2 handle 2: prio\n"
        )
        with pytest.raises(PolicyError, match="only HTB"):
            compile_offload(policy, 10e6)

    def test_chaining_under_htb_rejected(self):
        policy = parse_script(
            "tc qdisc add dev eth0 root handle 1: htb\n"
            "tc class add dev eth0 parent 1: classid 1:1 htb rate 1mbit\n"
            "tc qdisc add dev eth0 parent 1:1 handle 2: htb\n"
        )
        with pytest.raises(PolicyError, match="chaining under an HTB root"):
            compile_offload(policy, 10e6)

    def test_band_out_of_range_rejected(self):
        policy = parse_script(
            "tc qdisc add dev eth0 root handle 1: prio bands 2\n"
            "tc qdisc add dev eth0 parent 1:5 handle 2: htb\n"
            "tc class add dev eth0 parent 2: classid 2:1 htb rate 1mbit\n"
        )
        with pytest.raises(PolicyError, match="out of range"):
            compile_offload(policy, 10e6)

    def test_unknown_filter_target_rejected(self):
        policy = parse_script(
            CHAINED + "tc filter add dev eth0 parent 1: match app=X flowid 9:9\n"
        )
        with pytest.raises(PolicyError, match="matches no band"):
            compile_offload(policy, 10e6)


class TestChainedEnforcement:
    """The compiled tree behaves like the chained qdiscs would:
    PRIO strictness across bands, HTB weights within the band."""

    def _valve(self):
        compiled = compile_offload(parse_script(CHAINED), 10e6)
        return FlowValve(compiled, link_rate_bps=10e6, params=TEST_PARAMS)

    def test_band0_preempts_chained_htb(self):
        valve = self._valve()
        rates = drive_valve(
            valve, {"NC": constant(20e6), "KVS": constant(20e6)}, duration=20.0
        )
        assert rates["NC"] > 0.9 * 9.7e6
        assert rates["KVS"] < 1e6

    def test_htb_weights_inside_band(self):
        valve = self._valve()
        rates = drive_valve(
            valve, {"KVS": constant(20e6), "ML": constant(20e6)}, duration=20.0
        )
        # 2:1 inside the band, capped by the chained HTB's own
        # 8 Mbit ceiling (which survives compilation as a CeilCap).
        assert rates["KVS"] == pytest.approx(2 * rates["ML"], rel=0.15)
        assert rates["KVS"] + rates["ML"] == pytest.approx(8e6, rel=0.1)

    def test_label_paths_span_both_layers(self):
        valve = self._valve()
        packet = PacketFactory().make(1250, FiveTuple("a", "b", 1, 2), 0.0, app="KVS")
        valve.process(packet, 0.1)
        assert packet.hierarchy_label[0] == "f:1"
        assert "f:b2" in packet.hierarchy_label
        assert packet.leaf_class == "f:210"
