"""Tests for network primitives: packets, flows, links, sinks."""

import pytest

from repro.net import FiveTuple, Flow, FlowTable, Link, Packet, PacketFactory, PacketSink
from repro.net.packet import DropReason
from repro.sim import Simulator
from repro.units import wire_bits


class TestPacket:
    def test_factory_assigns_unique_sequences(self):
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        packets = [factory.make(64, flow, 0.0) for _ in range(5)]
        assert [p.seq for p in packets] == [0, 1, 2, 3, 4]
        assert factory.created == 5

    def test_leaf_class_empty_when_unlabelled(self):
        factory = PacketFactory()
        packet = factory.make(64, FiveTuple("a", "b", 1, 2), 0.0)
        assert packet.leaf_class == ""

    def test_one_way_delay_negative_until_delivered(self):
        factory = PacketFactory()
        packet = factory.make(64, FiveTuple("a", "b", 1, 2), 1.0)
        assert packet.one_way_delay == -1.0
        packet.delivered_at = 1.5
        assert packet.one_way_delay == pytest.approx(0.5)

    def test_mark_dropped(self):
        factory = PacketFactory()
        packet = factory.make(64, FiveTuple("a", "b", 1, 2), 0.0)
        packet.mark_dropped(DropReason.SCHED_RED)
        assert packet.dropped
        assert packet.drop_reason is DropReason.SCHED_RED


class TestFiveTuple:
    def test_reversed(self):
        ft = FiveTuple("1.1.1.1", "2.2.2.2", 10, 20)
        assert ft.reversed() == FiveTuple("2.2.2.2", "1.1.1.1", 20, 10)

    def test_str_contains_protocol(self):
        assert "tcp" in str(FiveTuple("a", "b", 1, 2, 6))
        assert "udp" in str(FiveTuple("a", "b", 1, 2, 17))

    def test_hashable(self):
        ft = FiveTuple("a", "b", 1, 2)
        assert ft in {ft}


class TestFlowTable:
    def test_observe_creates_and_accounts(self):
        table = FlowTable()
        ft = FiveTuple("a", "b", 1, 2)
        flow = table.observe(ft, 100, now=1.0)
        table.observe(ft, 200, now=2.0)
        assert flow.packets == 2
        assert flow.bytes == 300
        assert flow.last_seen == 2.0

    def test_expire_removes_idle_flows(self):
        table = FlowTable(idle_timeout=1.0)
        table.observe(FiveTuple("a", "b", 1, 2), 100, now=0.0)
        table.observe(FiveTuple("c", "d", 3, 4), 100, now=2.0)
        evicted = table.expire(now=2.5)
        assert evicted == 1
        assert len(table) == 1

    def test_drop_accounting(self):
        table = FlowTable()
        ft = FiveTuple("a", "b", 1, 2)
        table.observe(ft, 100, now=0.0, dropped=True)
        assert table.get(ft).drops == 1


class TestLink:
    def test_serialization_time_includes_overhead(self):
        sim = Simulator()
        link = Link(sim, 10e9)
        factory = PacketFactory()
        packet = factory.make(64, FiveTuple("a", "b", 1, 2), 0.0)
        assert link.serialization_time(packet) == pytest.approx(wire_bits(64) / 10e9)

    def test_back_to_back_frames_queue_on_wire(self):
        sim = Simulator()
        received = []
        link = Link(sim, 1e6, receiver=received.append)
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        p1 = factory.make(1250, flow, 0.0)  # (1250+20)*8 = 10160 bits
        p2 = factory.make(1250, flow, 0.0)
        link.send(p1)
        link.send(p2)
        sim.run()
        assert received == [p1, p2]
        assert p2.delivered_at == pytest.approx(2 * 10160 / 1e6)

    def test_propagation_delay_added(self):
        sim = Simulator()
        link = Link(sim, 1e9, propagation_delay=0.5)
        factory = PacketFactory()
        packet = factory.make(100, FiveTuple("a", "b", 1, 2), 0.0)
        finish = link.send(packet)
        sim.run()
        assert packet.delivered_at == pytest.approx(finish + 0.5)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, 1e9)
        factory = PacketFactory()
        for _ in range(3):
            link.send(factory.make(100, FiveTuple("a", "b", 1, 2), 0.0))
        assert link.frames_sent == 3
        assert link.bytes_sent == 300

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), 0.0)


class TestLinkUtilization:
    """Utilization window accounting under schedule-time counters.

    The counters are bumped when a frame is *accepted* (batched egress
    commits whole serialisation windows ahead of the clock), so a
    mid-run reading used to over-report: wire time that finishes after
    the observation instant was counted inside it, and a full second of
    committed backlog made ``utilization(0.5)`` read 2.0 clamped to 1.0
    rather than the true fraction.
    """

    def _link_with_frame(self, rate=1e6, size=1250):
        sim = Simulator()
        link = Link(sim, rate)
        packet = PacketFactory().make(size, FiveTuple("a", "b", 1, 2), 0.0)
        link.send(packet)  # wire busy until wire_bits(size)/rate
        return link, wire_bits(size) / rate

    def test_half_serialized_frame_counts_half(self):
        # Observe mid-frame: exactly the elapsed part of the committed
        # serialisation window is inside [0, elapsed], so the wire was
        # 100% busy for that window — not 200% clamped down.
        link, ser = self._link_with_frame()
        assert link.utilization(ser / 2) == pytest.approx(1.0)
        assert link.utilization(ser / 4) == pytest.approx(1.0)

    def test_committed_backlog_not_counted_before_it_serialises(self):
        sim = Simulator()
        link = Link(sim, 1e6)
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        ser = wire_bits(1250) / 1e6
        for _ in range(4):  # 4 back-to-back frames committed at t=0
            link.send(factory.make(1250, flow, 0.0))
        # Wire busy [0, 4*ser]; a window covering one frame's worth of
        # time is fully busy but no more than that.
        assert link.utilization(ser) == pytest.approx(1.0)
        # A window past the backlog sees the true fraction.
        assert link.utilization(8 * ser) == pytest.approx(0.5)

    def test_post_run_value_matches_historical_formula(self):
        link, ser = self._link_with_frame()
        elapsed = 10 * ser
        assert link.utilization(elapsed) == pytest.approx(ser / elapsed)

    def test_idle_window_after_busy_period(self):
        link, ser = self._link_with_frame()
        # Exactly at busy_until the overhang correction vanishes.
        assert link.utilization(ser) == pytest.approx(1.0)

    def test_zero_cases(self):
        sim = Simulator()
        link = Link(sim, 1e6)
        assert link.utilization(0.0) == 0.0
        assert link.utilization(1.0) == 0.0  # no frames sent


class TestPacketSinkLazyFold:
    """The lazy-delivery fold and its explicit ``until=`` bound."""

    def _lazy_world(self):
        sim = Simulator()
        sink = PacketSink(sim, rate_window=1.0, record_delays=True)
        link = Link(sim, 1e6, receiver=sink.receive)
        link.enable_lazy_delivery(sink)
        return sim, sink, link

    def test_mid_run_tallies_match_eventful_route(self):
        # Same deliveries through both routes, observed mid-run at a
        # time when some are matured and some are still pending.
        def run(lazy):
            sim = Simulator()
            sink = PacketSink(sim, rate_window=1.0, record_delays=True)
            link = Link(sim, 1e6, receiver=sink.receive)
            if lazy:
                link.enable_lazy_delivery(sink)
            factory = PacketFactory()
            flow = FiveTuple("a", "b", 1, 2)
            for i in range(6):
                sim.schedule_at(
                    i * 0.1, link.send, factory.make(1250, flow, i * 0.1, app="A")
                )
            sim.run(until=0.35)  # 4 sends committed, 2 still to come
            return (
                sink.total_packets,
                sink.total_bytes,
                dict(sink.bytes),
                list(sink.delays),
            )

        assert run(lazy=True) == run(lazy=False)

    def test_throughput_folds_to_explicit_bound(self):
        # The stale-clock case: deliveries committed to the wire inside
        # the window but past sim.now used to be silently excluded,
        # under-reporting the rate the eventful route would show.
        sim, sink, link = self._lazy_world()
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        ser = wire_bits(1250) / 1e6
        for _ in range(4):
            link.send(factory.make(1250, flow, 0.0, app="A"))
        # Clock still at 0, all four deliveries pending with times
        # ser..4*ser; a bound covering two of them folds exactly two.
        bound = 2 * ser + 1e-12
        assert sink.throughput_bps("A", bound) == pytest.approx(
            2 * 1250 * 8 / bound
        )
        assert sink.total_throughput_bps(bound) == pytest.approx(
            2 * 1250 * 8 / bound
        )
        # Widening the bound picks up the rest; tallies never regress.
        full = 4 * ser + 1e-12
        assert sink.throughput_bps("A", full) == pytest.approx(
            4 * 1250 * 8 / full
        )

    def test_fold_assigns_delivered_at_original_instants(self):
        sim, sink, link = self._lazy_world()
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        p1 = factory.make(1250, flow, 0.0, app="A")
        p2 = factory.make(1250, flow, 0.0, app="A")
        f1 = link.send(p1)
        f2 = link.send(p2)
        sim.run()  # drain hook ends the run at the last delivery
        assert sink.total_packets == 2
        assert p1.delivered_at == pytest.approx(f1)
        assert p2.delivered_at == pytest.approx(f2)
        assert sink.delays == [pytest.approx(f1), pytest.approx(f2)]


class TestPacketSink:
    def _deliver(self, sink, sim, app, size=100, at=1.0):
        factory = getattr(self, "_factory", None)
        if factory is None:
            factory = self._factory = PacketFactory()
        packet = factory.make(size, FiveTuple("a", "b", 1, 2), 0.0, app=app)
        sim.schedule_at(at, sink.receive, packet)

    def test_per_app_accounting(self):
        sim = Simulator()
        sink = PacketSink(sim)
        self._deliver(sink, sim, "A", size=100, at=1.0)
        self._deliver(sink, sim, "B", size=200, at=1.5)
        sim.run()
        assert sink.packets["A"] == 1
        assert sink.bytes["B"] == 200
        assert sink.total_packets == 2

    def test_delays_tracked_per_app(self):
        sim = Simulator()
        sink = PacketSink(sim)
        self._deliver(sink, sim, "A", at=1.0)
        self._deliver(sink, sim, "B", at=2.0)
        sim.run()
        assert len(sink.delays_by_app["A"]) == 1
        assert sink.delays_by_app["B"][0] == pytest.approx(2.0)

    def test_delay_recording_respects_start(self):
        sim = Simulator()
        sink = PacketSink(sim, delay_start=2.0)
        self._deliver(sink, sim, "A", at=1.0)
        self._deliver(sink, sim, "A", at=3.0)
        sim.run()
        assert len(sink.delays) == 1
        assert sink.delays[0] == pytest.approx(3.0)

    def test_delivery_callback(self):
        sim = Simulator()
        seen = []
        sink = PacketSink(sim, on_delivery=seen.append)
        self._deliver(sink, sim, "A", at=1.0)
        sim.run()
        assert len(seen) == 1

    def test_throughput_helpers(self):
        sim = Simulator()
        sink = PacketSink(sim)
        self._deliver(sink, sim, "A", size=1250, at=1.0)
        sim.run()
        assert sink.throughput_bps("A", 10.0) == pytest.approx(1000.0)
        assert sink.total_throughput_bps(10.0) == pytest.approx(1000.0)
