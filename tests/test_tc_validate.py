"""Tests for policy validation."""

import pytest

from repro.errors import ValidationError
from repro.tc import (
    ClassSpec,
    FilterSpec,
    PolicyConfig,
    QdiscSpec,
    parse_classid,
    validate_policy,
)
from repro.errors import PolicyError


def minimal_policy() -> PolicyConfig:
    policy = PolicyConfig()
    policy.add_qdisc(QdiscSpec(kind="fv", handle="1:"))
    policy.add_class(ClassSpec(classid="1:1", parent="1:", rate=10e9, ceil=10e9))
    policy.add_class(ClassSpec(classid="1:10", parent="1:1", rate=5e9))
    policy.add_filter(FilterSpec(flowid="1:10", match={"app": "A"}))
    return policy


class TestParseClassid:
    def test_major_minor(self):
        assert parse_classid("1:10") == (1, 16)  # hex, tc convention

    def test_bare_handle(self):
        assert parse_classid("1:") == (1, 0)

    def test_missing_colon_rejected(self):
        with pytest.raises(PolicyError):
            parse_classid("110")

    def test_garbage_rejected(self):
        with pytest.raises(PolicyError):
            parse_classid("x:y:z")


class TestValidation:
    def test_valid_policy_passes(self):
        validate_policy(minimal_policy())

    def test_missing_root_qdisc(self):
        policy = PolicyConfig()
        policy.add_class(ClassSpec(classid="1:1", parent="1:", rate=1e9))
        with pytest.raises(ValidationError, match="root qdisc"):
            validate_policy(policy)

    def test_orphan_class_parent(self):
        policy = minimal_policy()
        policy.add_class(ClassSpec(classid="1:99", parent="1:77", rate=1e9))
        with pytest.raises(ValidationError, match="neither a class nor a qdisc"):
            validate_policy(policy)

    def test_rate_above_ceil_rejected(self):
        policy = PolicyConfig()
        policy.add_qdisc(QdiscSpec(kind="fv", handle="1:"))
        policy.add_class(ClassSpec(classid="1:1", parent="1:", rate=10e9, ceil=5e9))
        with pytest.raises(ValidationError, match="exceeds ceil"):
            validate_policy(policy)

    def test_child_rate_above_parent_ceil_rejected(self):
        policy = minimal_policy()
        policy.add_class(ClassSpec(classid="1:20", parent="1:1", rate=20e9))
        with pytest.raises(ValidationError, match="exceeds parent ceil"):
            validate_policy(policy)

    def test_filter_to_missing_class_rejected(self):
        policy = minimal_policy()
        policy.add_filter(FilterSpec(flowid="1:77", match={}))
        with pytest.raises(ValidationError, match="does not exist"):
            validate_policy(policy)

    def test_filter_to_interior_class_rejected(self):
        policy = minimal_policy()
        policy.add_filter(FilterSpec(flowid="1:1", match={}))
        with pytest.raises(ValidationError, match="not a leaf"):
            validate_policy(policy)

    def test_self_borrow_rejected(self):
        policy = minimal_policy()
        policy.add_class(ClassSpec(classid="1:20", parent="1:1", rate=1e9, borrow=("1:20",)))
        with pytest.raises(ValidationError, match="borrow from itself"):
            validate_policy(policy)

    def test_borrow_unknown_class_rejected(self):
        policy = minimal_policy()
        policy.add_class(ClassSpec(classid="1:20", parent="1:1", rate=1e9, borrow=("9:99",)))
        with pytest.raises(ValidationError, match="does not exist"):
            validate_policy(policy)

    def test_bad_match_field_reported(self):
        policy = minimal_policy()
        policy.add_filter(FilterSpec(flowid="1:10", match={"nope": "x"}))
        with pytest.raises(ValidationError, match="unknown match field"):
            validate_policy(policy)

    def test_default_class_must_exist(self):
        policy = PolicyConfig()
        policy.add_qdisc(QdiscSpec(kind="htb", handle="1:", default=0x30))
        policy.add_class(ClassSpec(classid="1:1", parent="1:", rate=1e9))
        with pytest.raises(ValidationError, match="default class"):
            validate_policy(policy)

    def test_default_class_resolves(self):
        policy = PolicyConfig()
        policy.add_qdisc(QdiscSpec(kind="htb", handle="1:", default=0x10))
        policy.add_class(ClassSpec(classid="1:1", parent="1:", rate=1e9))
        policy.add_class(ClassSpec(classid="1:10", parent="1:1", rate=1e9))
        validate_policy(policy)

    def test_multiple_problems_all_reported(self):
        policy = minimal_policy()
        policy.add_filter(FilterSpec(flowid="1:77", match={}))
        policy.add_class(ClassSpec(classid="1:99", parent="1:77", rate=1e9))
        with pytest.raises(ValidationError) as excinfo:
            validate_policy(policy)
        message = str(excinfo.value)
        assert "1:77" in message and "1:99" in message


class TestPolicyConfigHelpers:
    def test_children_of(self):
        policy = minimal_policy()
        assert [c.classid for c in policy.children_of("1:1")] == ["1:10"]

    def test_leaves(self):
        policy = minimal_policy()
        assert [c.classid for c in policy.leaves()] == ["1:10"]

    def test_duplicate_class_rejected(self):
        policy = minimal_policy()
        with pytest.raises(PolicyError):
            policy.add_class(ClassSpec(classid="1:10", parent="1:1", rate=1e9))
