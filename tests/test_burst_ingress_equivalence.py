"""Burst-vs-per-packet ingress equivalence: the bit-exactness contract.

``NicConfig.ingress_burst`` lets open-loop senders precompute trains of
emission instants and hand them to ``NicPipeline.submit_burst`` as one
run-lane entry (DESIGN.md §7). The contract mirrors the fast-path one
in ``test_nic_fastpath_equivalence.py``: not "statistically close" but
*bit-identical observable behaviour* — the same interleaved rx/drop
record stream, drop reasons, per-app byte counts, scheduler stats, and
jitter RNG draw order, with strictly fewer kernel events. Both sides
run with ``fast_path=True``; only the ingress mode differs.

A second section checks the lazy-sink fold (sink tallies under burst
ingress with direct sink delivery) and that ack-clocked TCP senders —
which deliberately ignore the burst pipe (see ``host/tcp.py``) — are
unaffected by the knob.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.frontend import FlowValveFrontend
from repro.core.sched_tree import SchedulingParams
from repro.experiments.base import ScaledSetup, _scale_demand
from repro.experiments.policies import fair_policy, motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.host import FixedRateSender, TcpApp, TcpParams, TcpRegistry, windows
from repro.net import PacketFactory, PacketSink
from repro.nic import NicConfig, NicPipeline
from repro.sim import Simulator


def _observe(sim, nic, sink, records, senders):
    stats = nic.app.scheduler.stats
    return {
        "records": records,
        "submitted": nic.submitted,
        "forwarded": nic.forwarded,
        "dropped": nic.dropped,
        "drops_by_reason": {r.value: n for r, n in nic.drops_by_reason.items()},
        "delivered": sink.total_packets,
        "bytes_by_app": dict(sink.bytes),
        "sent_by_sender": [s.sent_packets for s in senders],
        "frames_out": nic.traffic_manager.frames_out,
        "tx_tail_drops": nic.tx_ring.tail_drops,
        "buffer_exhaustion_drops": nic.buffers.exhaustion_drops,
        "sched_decisions": stats.decisions,
        "sched_forwarded": stats.forwarded,
        "sched_dropped": stats.dropped,
        "sched_updates_run": stats.updates_run,
        "sched_updates_skipped": stats.updates_skipped,
        "sched_borrowed": stats.forwarded_on_borrowed_tokens,
        # One extra draw per jitter stream: identical values here prove
        # the burst path consumed the RNG in the exact per-packet order
        # and count (otherwise the streams would be out of phase).
        "next_jitter_draw": {
            name: sim.random.stream(name).random() for name in sorted(
                s.name for s in senders
            )
        },
        "final_time": sim.now,
        "events": sim.events_executed,
    }


def _run_fig11_motivation(ingress_burst: int, duration: float = 6.0) -> dict:
    """The golden-trace NIC workload (Fig. 11(a) motivation mix)."""
    setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    records = []
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)

    def receive(packet):
        records.append(f"rx:{packet.seq}")
        sink.receive(packet)

    def on_drop(packet):
        records.append(f"drop:{packet.seq}:{packet.drop_reason.value}")

    config = replace(setup.nic_config(), ingress_burst=ingress_burst)
    nic = NicPipeline.with_flowvalve(
        sim, config, frontend, receiver=receive, on_drop=on_drop,
    )
    factory = PacketFactory()
    senders = []
    for index, (app, demand) in enumerate(sorted(motivation_demands(setup.nominal_link_bps).items())):
        senders.append(FixedRateSender(
            sim, app, factory, nic.submit,
            rate_bps=setup.sender_rate(), packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index, jitter=0.1, rng=sim.random.stream(app),
        ))
    sim.run(until=duration)
    return _observe(sim, nic, sink, records, senders)


def _run_fig13_blast(ingress_burst: int, size: int = 1518, window: float = 0.004) -> dict:
    """Fig. 13-style full-rate blast: four apps oversubscribing a
    40 Gbit fair policy at full modelled rates, keeping the Tx ring and
    the scheduler's RED drops under pressure while trains are long."""
    sim = Simulator(seed=11)
    params = SchedulingParams(update_interval=0.0005, expire_after=0.005)
    frontend = FlowValveFrontend(fair_policy(40e9, 4), link_rate_bps=40e9, params=params)
    records = []
    sink = PacketSink(sim, rate_window=window, record_delays=False)

    def receive(packet):
        records.append(f"rx:{packet.seq}")
        sink.receive(packet)

    def on_drop(packet):
        records.append(f"drop:{packet.seq}:{packet.drop_reason.value}")

    config = NicConfig(ingress_burst=ingress_burst)
    nic = NicPipeline.with_flowvalve(
        sim, config, frontend, receiver=receive, on_drop=on_drop
    )
    factory = PacketFactory()
    senders = []
    per_app_rate = 1.6 * 40e9 / 4
    for i in range(4):
        senders.append(FixedRateSender(
            sim, f"App{i}", factory, nic.submit, rate_bps=per_app_rate,
            packet_size=size, vf_index=i, jitter=0.05,
            rng=sim.random.stream(f"App{i}"),
        ))
    sim.run(until=window)
    return _observe(sim, nic, sink, records, senders)


class TestBurstIngressEquivalence:
    def test_fig11_motivation_workload_bit_identical(self):
        burst = _run_fig11_motivation(ingress_burst=64)
        plain = _run_fig11_motivation(ingress_burst=0)
        # Trained ingress must actually engage (fewer kernel events) ...
        assert burst["events"] < plain["events"]
        # ... while every observable — including the full interleaved
        # rx/drop stream and the RNG phase — matches exactly.
        del burst["events"], plain["events"]
        assert burst["records"] == plain["records"]
        assert burst == plain
        # The per-arrival admission contract only holds trivially while
        # buffers never exhaust; guard the workload against drifting
        # into the documented NO_BUFFER record-time caveat.
        assert burst["drops_by_reason"]["no_buffer"] == 0
        assert burst["delivered"] > 0
        assert burst["dropped"] > 0

    def test_fig13_full_rate_blast_bit_identical(self):
        burst = _run_fig13_blast(ingress_burst=64)
        plain = _run_fig13_blast(ingress_burst=0)
        assert burst["events"] < plain["events"]
        del burst["events"], plain["events"]
        assert burst["records"] == plain["records"]
        assert burst == plain
        assert burst["drops_by_reason"]["no_buffer"] == 0
        assert burst["delivered"] > 0
        assert burst["dropped"] > 0

    def test_short_train_lengths_bit_identical(self):
        # A tiny cap forces many short trains and exercises the
        # train-boundary wake arithmetic; still bit-identical.
        small = _run_fig11_motivation(ingress_burst=2, duration=2.0)
        plain = _run_fig11_motivation(ingress_burst=0, duration=2.0)
        del small["events"], plain["events"]
        assert small == plain


class TestLazySinkUnderBurst:
    def _run(self, ingress_burst: int, duration: float = 4.0) -> dict:
        # Direct sink delivery (no record wrapper, no on_delivery): the
        # pipeline routes deliveries through the sink's lazy fold.
        setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
        sim = Simulator(seed=setup.seed)
        frontend = FlowValveFrontend(
            motivation_policy(setup.link_bps),
            link_rate_bps=setup.link_bps,
            params=setup.sched_params(),
        )
        sink = PacketSink(sim, rate_window=1.0, record_delays=False)
        config = replace(setup.nic_config(), ingress_burst=ingress_burst)
        nic = NicPipeline.with_flowvalve(
            sim, config, frontend, receiver=sink.receive,
        )
        factory = PacketFactory()
        senders = []
        for index, (app, demand) in enumerate(sorted(motivation_demands(setup.nominal_link_bps).items())):
            senders.append(FixedRateSender(
                sim, app, factory, nic.submit,
                rate_bps=setup.sender_rate(), packet_size=1500,
                demand=_scale_demand(demand, setup.scale),
                vf_index=index, jitter=0.1, rng=sim.random.stream(app),
            ))
        final = sim.run(until=duration)
        return {
            "final": final,
            "delivered": sink.total_packets,
            "total_bytes": sink.total_bytes,
            "bytes_by_app": dict(sink.bytes),
            "packets_by_app": dict(sink.packets),
            "mean_rates": {
                app: sink.rates[app].mean_rate(1.0, duration)
                for app in sorted(sink.rates)
            },
            "sent": [s.sent_packets for s in senders],
            "forwarded": nic.forwarded,
            "dropped": nic.dropped,
            "events": sim.events_executed,
        }

    def test_folded_tallies_match_eventful_deliveries(self):
        burst = self._run(ingress_burst=64)
        plain = self._run(ingress_burst=0)
        assert burst["events"] < plain["events"]
        del burst["events"], plain["events"]
        assert burst == plain
        assert burst["delivered"] > 0


class TestVectorizedTrains:
    """numpy-vs-scalar train precompute bit-identity (jitterless only).

    ``FixedRateSender`` vectorizes jitterless emission instants with
    ``np.add.accumulate``, which performs the same left-to-right float
    adds as the scalar loop — so the instants, the train boundaries,
    and the resume time must be bit-identical, not approximately equal.
    Jittered senders draw RNG per gap and always take the scalar loop.
    """

    def _run(self, use_numpy: bool, duration: float = 2.0) -> dict:
        import repro.host.traffic as traffic_mod

        if use_numpy and traffic_mod._np is None:
            pytest.skip("numpy not available")
        saved = traffic_mod._np
        traffic_mod._np = saved if use_numpy else None
        try:
            setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
            sim = Simulator(seed=setup.seed)
            frontend = FlowValveFrontend(
                motivation_policy(setup.link_bps),
                link_rate_bps=setup.link_bps,
                params=setup.sched_params(),
            )
            sink = PacketSink(sim, rate_window=1.0, record_delays=True)
            nic = NicPipeline.with_flowvalve(
                sim, replace(setup.nic_config(), ingress_burst=64),
                frontend, receiver=sink.receive,
            )
            factory = PacketFactory()
            senders = []
            for index, (app, demand) in enumerate(
                sorted(motivation_demands(setup.nominal_link_bps).items())
            ):
                senders.append(FixedRateSender(
                    sim, app, factory, nic.submit,
                    rate_bps=setup.sender_rate(), packet_size=1500,
                    demand=_scale_demand(demand, setup.scale),
                    vf_index=index, jitter=0.0,
                ))
            final = sim.run(until=duration)
            return {
                "final": final,
                "submitted": nic.submitted,
                "forwarded": nic.forwarded,
                "dropped": nic.dropped,
                "delivered": sink.total_packets,
                "bytes_by_app": dict(sink.bytes),
                "delays": sink.delays,
                "sent": [s.sent_packets for s in senders],
                "events": sim.events_executed,
            }
        finally:
            traffic_mod._np = saved

    def test_jitterless_trains_bit_identical(self):
        assert self._run(use_numpy=True) == self._run(use_numpy=False)


class TestFluidLaneEquivalence:
    """fluid=True vs fluid=False bit-identity on randomized workloads.

    The fluid fast-forward lane (DESIGN.md §7) absorbs quiescent-flow
    packets into an analytic micro-queue and replays the FlowValve fast
    handler's elided branch float-for-float at the same virtual
    timestamps. The contract is the same as burst-vs-per-packet above:
    every observable — forwards, drop reasons, per-app bytes, one-way
    delay samples, scheduler/borrow stats, RNG phase — is bit-identical
    with strictly fewer kernel events. The lane only engages with a
    lazy sink and no drop callback, so these runs deliver straight into
    the sink and read drop reasons off the pipeline counters.

    Workloads are randomized per seed: demand windows, sender rates,
    packet sizes, and jitter are drawn from a seeded generator so the
    sweep crosses quiescent stretches, update epochs, RED drops, and
    borrow traffic without hand-tuning each case.
    """

    def _run(self, seed: int, fluid: bool, duration: float = 3.0) -> dict:
        wl = random.Random(seed)
        setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
        sim = Simulator(seed=setup.seed)
        frontend = FlowValveFrontend(
            motivation_policy(setup.link_bps),
            link_rate_bps=setup.link_bps,
            params=setup.sched_params(),
        )
        sink = PacketSink(sim, rate_window=1.0, record_delays=True)
        config = replace(setup.nic_config(), ingress_burst=64, fluid=fluid)
        nic = NicPipeline.with_flowvalve(
            sim, config, frontend, receiver=sink.receive,
        )
        assert (nic._fluid is not None) == fluid
        factory = PacketFactory()
        senders = []
        for index, (app, demand) in enumerate(
            sorted(motivation_demands(setup.nominal_link_bps).items())
        ):
            # Randomize the pressure point per sender: rate multiplier
            # pushes some classes into RED/borrow territory, jitter=0
            # on some senders exercises the vectorized train path under
            # the lane, and an extra demand window adds off/on edges.
            rate = setup.sender_rate() * wl.choice([0.6, 1.0, 1.7, 2.5])
            jitter = wl.choice([0.0, 0.05, 0.1])
            size = wl.choice([256, 1024, 1500])
            if wl.random() < 0.5:
                gap0 = round(wl.uniform(0.2, 0.8) * duration, 4)
                gap1 = round(wl.uniform(gap0, duration), 4)
                demand = windows(
                    (0.0, gap0, rate), (gap1, duration, rate)
                )
            else:
                demand = _scale_demand(demand, setup.scale)
            senders.append(FixedRateSender(
                sim, app, factory, nic.submit,
                rate_bps=rate, packet_size=size, demand=demand,
                vf_index=index, jitter=jitter,
                rng=sim.random.stream(app),
            ))
        final = sim.run(until=duration)
        stats = nic.app.scheduler.stats
        return {
            "final": final,
            "submitted": nic.submitted,
            "forwarded": nic.forwarded,
            "dropped": nic.dropped,
            "drops_by_reason": {r.value: n for r, n in nic.drops_by_reason.items()},
            "delivered": sink.total_packets,
            "bytes_by_app": dict(sink.bytes),
            "delays": sink.delays,
            "delays_by_app": {a: list(v) for a, v in sink.delays_by_app.items()},
            "sent_by_sender": [s.sent_packets for s in senders],
            "frames_out": nic.traffic_manager.frames_out,
            "tx_tail_drops": nic.tx_ring.tail_drops,
            "buffer_exhaustion_drops": nic.buffers.exhaustion_drops,
            "link_bytes": nic.link.bytes_sent,
            "link_busy_until": nic.link._busy_until,
            "sched_decisions": stats.decisions,
            "sched_forwarded": stats.forwarded,
            "sched_dropped": stats.dropped,
            "sched_own": stats.forwarded_on_own_tokens,
            "sched_borrowed": stats.forwarded_on_borrowed_tokens,
            "borrow_matrix": sorted(stats.borrow_matrix.items()),
            "sched_updates_run": stats.updates_run,
            "sched_updates_skipped": stats.updates_skipped,
            "emc_hits": nic.app.labeler.cache.hits,
            "emc_misses": nic.app.labeler.cache.misses,
            "next_jitter_draw": {
                s.name: sim.random.stream(s.name).random() for s in senders
            },
            "events": sim.events_executed,
        }

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_randomized_workloads_bit_identical(self, seed):
        on = self._run(seed, fluid=True)
        off = self._run(seed, fluid=False)
        # The lane must actually absorb work (fewer kernel events) ...
        assert on["events"] < off["events"]
        del on["events"], off["events"]
        # ... while every observable matches exactly, float for float.
        assert on == off
        assert on["delivered"] > 0

    def test_sweep_covers_drops_and_borrowing(self):
        # The per-seed assertion is vacuous for a pressure dimension no
        # seed reaches; check the randomized sweep as a whole exercises
        # RED drops and inter-class borrowing under the fluid lane.
        runs = [self._run(seed, fluid=True) for seed in (1, 2, 3, 4, 5)]
        assert any(r["drops_by_reason"].get("sched_red", 0) > 0 for r in runs)
        assert any(r["sched_borrowed"] > 0 for r in runs)
        assert any(r["dropped"] > 0 for r in runs)


class TestTcpIgnoresBurstPipe:
    def _run(self, ingress_burst: int, duration: float = 0.5) -> dict:
        setup = ScaledSetup(scale=2000.0, seed=7)
        sim = Simulator(seed=setup.seed)
        frontend = FlowValveFrontend(
            motivation_policy(setup.link_bps),
            link_rate_bps=setup.link_bps,
            params=setup.sched_params(),
        )
        registry = TcpRegistry(sim)
        sink = PacketSink(sim, rate_window=1.0, record_delays=False,
                          on_delivery=registry.handle_delivery)
        config = replace(setup.nic_config(), ingress_burst=ingress_burst)
        nic = NicPipeline.with_flowvalve(sim, config, frontend,
                                         receiver=sink.receive,
                                         on_drop=registry.handle_drop)
        factory = PacketFactory()
        apps = []
        demands = {
            "NC": windows((0, duration, 2e9 / setup.scale)),
            "WS": windows((0, duration, 1e12)),
        }
        for index, (app, demand) in enumerate(demands.items()):
            apps.append(TcpApp(
                sim, app, registry, factory, nic.submit, n_connections=2,
                demand=demand, tcp_params=TcpParams(base_rtt=100e-6 * setup.scale),
                vf_index=index,
            ))
        sim.run(until=duration)
        conns = [c for a in apps for c in a.connections]
        return {
            "events": sim.events_executed,
            "delivered": sink.total_packets,
            "bytes_by_app": dict(sink.bytes),
            "sent": [c.sent_packets for c in conns],
            "acked": [c.acked_packets for c in conns],
            "lost": [c.lost_packets for c in conns],
            "cwnd": [c.cwnd for c in conns],
            "srtt": [c.srtt for c in conns],
        }

    def test_ack_clocked_senders_unaffected_by_knob(self):
        # AimdConnection deliberately stays per-packet (its rationale
        # and measurements live in host/tcp.py): identical behaviour
        # *and* identical event counts either way.
        assert self._run(ingress_burst=64) == self._run(ingress_burst=0)
