"""Unit tests for the condition templates (rate rules)."""

import pytest

from repro.core.rate_rules import (
    CeilCap,
    FixedRate,
    FullParentRate,
    RuleContext,
    sibling_share,
)
from repro.core.sched_tree import SchedulingParams, SchedulingTree
from repro.tc.parser import parse_script


def build_tree(body: str, link=12e6, **params):
    script = (
        "fv qdisc add dev eth0 root handle 1: fv default 0\n"
        f"fv class add dev eth0 parent 1: classid 1:1 fv rate {link:.0f} ceil {link:.0f}\n"
        + body
    )
    defaults = dict(update_interval=0.1, expire_after=1.0, link_headroom=0.0)
    defaults.update(params)
    return SchedulingTree.from_policy(
        parse_script(script), link_rate_bps=link, params=SchedulingParams(**defaults)
    )


class TestPrimitiveRules:
    def test_fixed_rate(self):
        tree = build_tree("fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n")
        rule = FixedRate(5e6)
        assert rule.compute(RuleContext(tree.node("1:10"), 0.0)) == 5e6

    def test_fixed_rate_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedRate(-1.0)

    def test_full_parent(self):
        tree = build_tree("fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n")
        rule = FullParentRate()
        assert rule.compute(RuleContext(tree.node("1:10"), 0.0)) == pytest.approx(12e6)

    def test_ceil_cap(self):
        tree = build_tree("fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n")
        rule = CeilCap(FixedRate(8e6), ceil_bps=5e6)
        assert rule.compute(RuleContext(tree.node("1:10"), 0.0)) == 5e6
        assert "5000000" in rule.describe()

    def test_ceil_cap_invalid(self):
        with pytest.raises(ValueError):
            CeilCap(FixedRate(1.0), ceil_bps=0.0)


class TestWeightedShare:
    def test_split_follows_weights(self):
        tree = build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 3\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
        )
        a, b = tree.node("1:10"), tree.node("1:20")
        assert sibling_share(a, 12e6, 0.0) == pytest.approx(9e6)
        assert sibling_share(b, 12e6, 0.0) == pytest.approx(3e6)

    def test_weights_static_regardless_of_activity(self):
        tree = build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
        )
        a = tree.node("1:10")
        # Sibling idle: the weighted θ does not change (work
        # conservation is borrowing's job, not the weights').
        assert sibling_share(a, 12e6, 100.0) == pytest.approx(6e6)


class TestPriorityResidual:
    def _tree(self):
        return build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv prio 1\n"
        )

    def test_prior_class_gets_full_parent(self):
        tree = self._tree()
        assert sibling_share(tree.node("1:10"), 12e6, 0.0) == pytest.approx(12e6)

    def test_residual_subtracts_measured_peak(self):
        tree = self._tree()
        hi = tree.node("1:10")
        hi.touch(0.0)
        hi.gamma_rate = 5e6
        hi.gamma_peak = 7e6
        lo = tree.node("1:20")
        # The subtraction uses the decaying peak, not the mean.
        assert sibling_share(lo, 12e6, 0.0) == pytest.approx(5e6)

    def test_idle_prior_class_costs_nothing(self):
        tree = self._tree()
        hi = tree.node("1:10")
        hi.gamma_rate = 5e6
        hi.gamma_peak = 5e6
        hi.last_seen = -100.0  # long idle → inactive
        lo = tree.node("1:20")
        assert sibling_share(lo, 12e6, 0.0) == pytest.approx(12e6)

    def test_residual_clamped_at_zero(self):
        tree = self._tree()
        hi = tree.node("1:10")
        hi.touch(0.0)
        hi.gamma_peak = 20e6
        assert sibling_share(tree.node("1:20"), 12e6, 0.0) == 0.0


class TestGuarantee:
    def _tree(self):
        return build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv prio 1 "
            "guarantee 2000000 threshold 4000000\n"
        )

    def test_active_guarantee_reserved_from_prior_class(self):
        tree = self._tree()
        lo = tree.node("1:20")
        lo.touch(0.0)  # active → its guarantee must be reserved
        hi = tree.node("1:10")
        assert sibling_share(hi, 12e6, 0.0) == pytest.approx(10e6)

    def test_guarantee_floors_lower_class(self):
        tree = self._tree()
        hi = tree.node("1:10")
        hi.touch(0.0)
        hi.gamma_peak = 12e6  # prior class eats everything it can
        lo = tree.node("1:20")
        lo.touch(0.0)
        assert sibling_share(lo, 12e6, 0.0) == pytest.approx(2e6)

    def test_below_threshold_falls_back_to_weights(self):
        tree = self._tree()
        hi, lo = tree.node("1:10"), tree.node("1:20")
        hi.touch(0.0)
        lo.touch(0.0)
        hi.gamma_peak = 3e6
        # Parent rate 3 Mbit < 4 Mbit threshold: priorities suspended,
        # equal weights → half each.
        assert sibling_share(lo, 3e6, 0.0) == pytest.approx(1.5e6)
        assert sibling_share(hi, 3e6, 0.0) == pytest.approx(1.5e6)

    def test_idle_guaranteed_class_frees_reservation(self):
        tree = self._tree()
        lo = tree.node("1:20")
        lo.last_seen = -100.0
        hi = tree.node("1:10")
        assert sibling_share(hi, 12e6, 0.0) == pytest.approx(12e6)


class TestDeriveRule:
    def test_root_is_fixed_with_headroom(self):
        tree = build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n",
            link_headroom=0.03,
        )
        assert "fixed" in tree.root.rule.describe()
        assert tree.root.theta == pytest.approx(0.97 * 12e6)

    def test_child_with_ceil_gets_cap(self):
        tree = build_tree(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 ceil 4000000\n"
        )
        node = tree.node("1:10")
        assert "min(" in node.rule.describe()
        assert node.theta == pytest.approx(4e6)
