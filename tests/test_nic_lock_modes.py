"""Tests for the update-locking disciplines of the NIC scheduling app
(paper Fig. 7). The ablation bench measures their throughput at scale;
these tests verify their *correctness* properties at small scale."""

import pytest

from repro.core import FlowValveFrontend
from repro.core.sched_tree import SchedulingParams
from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.nic import NicConfig, NicPipeline
from repro.sim import Simulator

POLICY = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 40gbit ceil 40gbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1
fv filter add dev eth0 parent 1: match app=A flowid 1:10
fv filter add dev eth0 parent 1: match app=B flowid 1:20
"""


def run_mode(lock_mode, pps=2e6, duration=0.003, seed=4):
    sim = Simulator(seed=seed)
    frontend = FlowValveFrontend.from_script(
        POLICY, link_rate_bps=40e9,
        params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
    )
    from dataclasses import replace

    cfg = replace(NicConfig(), lock_mode=lock_mode)
    sink = PacketSink(sim, rate_window=0.001, record_delays=False)
    nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
    factory = PacketFactory()
    for i, app in enumerate(("A", "B")):
        flow = FiveTuple(f"10.0.0.{i}", "10.0.1.1", 1, 2)

        def gen(app=app, flow=flow):
            while sim.now < duration:
                nic.submit(factory.make(1500, flow, sim.now, app=app, vf_index=0))
                yield 1.0 / pps

        sim.process(gen())
    sim.run(until=duration + 0.001)
    return sink, nic, frontend


ALL_MODES = ["trylock", "per_class_block", "global_block", "sequential"]


class TestLockModeCorrectness:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_accounting_conserved(self, mode):
        sink, nic, _ = run_mode(mode)
        assert sink.total_packets + nic.dropped + len(nic.dispatch) + len(nic.tx_ring) \
            + nic.reorder.in_flight >= nic.submitted - 64  # in-flight DMA slack

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_updates_run_under_every_discipline(self, mode):
        _, _, frontend = run_mode(mode)
        assert frontend.scheduler.stats.updates_run > 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_delivery_in_order(self, mode):
        sim = Simulator(seed=4)
        frontend = FlowValveFrontend.from_script(
            POLICY, link_rate_bps=40e9,
            params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
        )
        from dataclasses import replace

        order = []
        sink = PacketSink(sim, record_delays=False,
                          on_delivery=lambda p: order.append(p.seq))
        cfg = replace(NicConfig(), lock_mode=mode)
        nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
        factory = PacketFactory()
        flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)

        def gen():
            while sim.now < 0.001:
                nic.submit(factory.make(1500, flow, sim.now, app="A"))
                yield 1e-6

        sim.process(gen())
        sim.run(until=0.002)
        assert order == sorted(order)
        assert order

    def test_trylock_never_waits(self):
        _, nic, _ = run_mode("trylock")
        assert nic.app.lock_contention == 0.0

    def test_serialised_modes_accumulate_waiting(self):
        _, nic, _ = run_mode("sequential", pps=5e6)
        assert nic.app.lock_contention > 0.0

    def test_sequential_not_faster_than_trylock(self):
        fast, _, _ = run_mode("trylock", pps=8e6)
        slow, _, _ = run_mode("sequential", pps=8e6)
        assert slow.total_packets <= fast.total_packets
