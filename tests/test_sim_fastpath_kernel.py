"""Kernel primitives backing the batched fast path (DESIGN.md §7).

Four mechanisms carry the fast path's event-count wins, and each has a
merged-ordering contract with the existing three-lane queue that these
tests pin down:

* ``EventQueue.push_batch`` — batched heap insertion (both the
  per-push and the splice-and-heapify regimes) must fire in exactly
  the order N individual pushes would give;
* ``SimEvent.subscribe`` on an already-triggered event — routes
  through the zero-delay FIFO and must merge with heap events at the
  same timestamp strictly by sequence number;
* the :class:`~repro.sim.At` yield — resumes a process at an
  *absolute* time, bit-exactly (no delay round trip);
* ``SimEvent.succeed_now`` / ``Store.try_put_now`` — the synchronous
  handoff that resumes a parked getter inline.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import At, SimEvent, Simulator, Store


class TestPushBatch:
    def test_batch_fires_in_time_then_entry_order(self):
        sim = Simulator()
        fired = []
        sim._queue.push_batch(
            [
                (1.0, fired.append, ("a",)),
                (1.0, fired.append, ("b",)),
                (0.5, fired.append, ("c",)),
            ]
        )
        sim.run(until=2.0)
        assert fired == ["c", "a", "b"]

    def test_batch_merges_with_individual_pushes_by_seq(self):
        # Equal timestamps across a push, a batch, and another push:
        # the merged order must match the insertion order exactly.
        sim = Simulator()
        fired = []
        queue = sim._queue
        queue.push(1.0, fired.append, ("pre",))
        queue.push_batch([(1.0, fired.append, (f"b{i}",)) for i in range(3)])
        queue.push(1.0, fired.append, ("post",))
        sim.run(until=1.0)
        assert fired == ["pre", "b0", "b1", "b2", "post"]

    def test_large_batch_heapify_regime_keeps_global_order(self):
        # A batch comparable in size to the heap takes the
        # splice-and-heapify branch; order must be indistinguishable.
        sim = Simulator()
        fired = []
        queue = sim._queue
        queue.push(0.25, fired.append, ("early",))
        entries = [(1.0 + i * 1e-3, fired.append, (i,)) for i in range(50)]
        queue.push_batch(list(reversed(entries)))
        sim.run(until=2.0)
        assert fired == ["early"] + list(range(50))

    def test_batch_event_handles_are_cancellable(self):
        sim = Simulator()
        fired = []
        handles = sim._queue.push_batch(
            [(1.0, fired.append, (i,)) for i in range(4)]
        )
        handles[1].cancel()
        handles[3].cancel()
        sim.run(until=2.0)
        assert fired == [0, 2]

    def test_empty_batch_is_a_noop(self):
        sim = Simulator()
        assert sim._queue.push_batch([]) == []
        assert sim.pending_events == 0


class TestSubscribeOnTriggered:
    """Satellite regression: subscribe-on-triggered goes through the
    zero-delay FIFO (``push_now``), not a heap push — and the merged
    (time, seq) order across both lanes is what a single heap would
    give."""

    def test_late_subscriber_merges_with_heap_events_by_seq(self):
        sim = Simulator()
        order = []
        ev = SimEvent(sim)
        ev.succeed("payload")

        def driver():
            sim.schedule(0.0, lambda: order.append("pre"))
            ev.subscribe(lambda e: order.append(f"sub:{e.value}"))
            sim.schedule(0.0, lambda: order.append("post"))

        sim.schedule(1.0, driver)
        # Heap event at the same timestamp, scheduled after the driver
        # (larger seq than driver, smaller than the zero-delay items it
        # creates): must fire between the driver and those items.
        sim.schedule(1.0, lambda: order.append("heap-later"))
        sim.run(until=2.0)
        assert order == ["heap-later", "pre", "sub:payload", "post"]

    def test_late_subscription_costs_one_event(self):
        sim = Simulator()
        got = []
        ev = SimEvent(sim)
        ev.succeed(42)
        ev.subscribe(lambda e: got.append(e.value))
        executed_before = sim.events_executed
        sim.run(until=0.0)
        assert got == [42]
        assert sim.events_executed - executed_before == 1


class TestAtYield:
    def test_resumes_at_exact_absolute_time(self):
        # The reason At exists: a composite target accumulated from
        # several cost terms must be hit to the last ulp, which a
        # delay round trip (now + (t - now)) does not guarantee.
        sim = Simulator()
        seen = []

        def proc():
            yield 0.7
            target = sim.now + 0.1
            target += 0.2
            yield At(target)
            seen.append((sim.now, target))

        sim.process(proc())
        sim.run(until=2.0)
        (now, target), = seen
        assert now == target

    def test_at_current_time_resumes_in_fifo_order(self):
        sim = Simulator()
        order = []

        def proc():
            yield 0.5
            sim.schedule(0.0, lambda: order.append("queued-first"))
            yield At(sim.now)
            order.append("resumed")

        sim.process(proc())
        sim.run(until=1.0)
        assert order == ["queued-first", "resumed"]

    def test_at_in_the_past_is_rejected(self):
        sim = Simulator()

        def proc():
            yield 0.5
            yield At(0.1)

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_mutable_instance_reuse_across_yields(self):
        # The per-packet pattern: one At reused for successive wakeups.
        sim = Simulator()
        times = []

        def proc():
            at = At(0.25)
            yield at
            times.append(sim.now)
            at.time = 0.75
            yield at
            times.append(sim.now)

        sim.process(proc())
        sim.run(until=1.0)
        assert times == [0.25, 0.75]

    def test_at_respects_run_horizon(self):
        sim = Simulator()
        fired = []

        def proc():
            yield At(1.5)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=2.0)
        assert fired == [1.5]


class TestSucceedNow:
    def test_callbacks_run_synchronously(self):
        sim = Simulator()
        order = []
        ev = SimEvent(sim)
        ev.subscribe(lambda e: order.append(f"cb:{e.value}"))
        ev.succeed_now("x")
        order.append("after")
        assert order == ["cb:x", "after"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = SimEvent(sim)
        ev.succeed_now()
        with pytest.raises(SimulationError):
            ev.succeed_now()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_late_subscriber_after_succeed_now_still_delivers(self):
        sim = Simulator()
        got = []
        ev = SimEvent(sim)
        ev.succeed_now(7)
        ev.subscribe(lambda e: got.append(e.value))
        sim.run(until=0.0)
        assert got == [7]


class TestStoreTryPutNow:
    def test_synchronous_handoff_resumes_parked_getter_inline(self):
        sim = Simulator()
        got = []
        order = []
        store = Store(sim, capacity=4)

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(getter())
        sim.run(until=1.0)  # parks the getter
        assert got == []

        def put_at():
            store.try_put_now("pkt")
            order.append(("after-put", list(got)))

        sim.schedule_at(1.5, put_at)
        sim.run(until=2.0)
        # The getter resumed *inside* the putter's callback.
        assert got == [(1.5, "pkt")]
        assert order == [("after-put", [(1.5, "pkt")])]

    def test_queues_item_when_no_getter_waits(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put_now("a") is True
        assert store.try_get() == "a"

    def test_full_store_rejects(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put_now("a") is True
        assert store.try_put_now("b") is False
        assert len(store) == 1
