"""Tests for the declarative construction API (repro.topology).

The Topology/SimulationSpec pair is the one public way to build a
simulation; the classic entry points are thin adapters over it. The
load-bearing contract — a single-domain topology reproduces the
historical engine bit-for-bit — is additionally pinned by the golden
traces; here we check the adapter equivalence, the builder's
validation, and the public surface.
"""

import warnings

import pytest

import repro
from repro.errors import ConfigError
from repro.experiments.base import ScaledSetup as BaseScaledSetup
from repro.experiments.base import run_flowvalve_timeline
from repro.experiments.policies import motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.topology import (
    ScaledSetup,
    SimulationSpec,
    Topology,
    timeline,
)


@pytest.fixture
def setup():
    return ScaledSetup(scale=1000.0)


@pytest.fixture
def policy(setup):
    return motivation_policy(setup.link_bps)


@pytest.fixture
def demands(setup):
    return motivation_demands(setup.nominal_link_bps)


class TestPublicSurface:
    def test_all_names_importable(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_topology_api_reexported(self):
        assert repro.Topology is Topology
        assert repro.SimulationSpec is SimulationSpec
        assert repro.ScaledSetup is ScaledSetup

    def test_scaled_setup_is_one_class(self):
        # The historical import site must alias, not copy.
        assert BaseScaledSetup is ScaledSetup

    def test_scheduler_registry_reexported(self):
        assert "flowvalve" in repro.scheduler_names()
        assert callable(repro.build_scheduler)


class TestTimelineAdapter:
    def test_classic_shim_matches_timeline(self, policy, demands, setup):
        direct = timeline(policy, demands, setup, duration=6.0, bin_seconds=2.0)
        with pytest.deprecated_call():
            shimmed = run_flowvalve_timeline(
                policy, demands, setup, duration=6.0, bin_seconds=2.0
            )
        assert shimmed.series == direct.series
        assert shimmed.notes == direct.notes
        assert shimmed.bin_seconds == direct.bin_seconds

    def test_timeline_notes_keep_classic_format(self, policy, demands, setup):
        result = timeline(policy, demands, setup, duration=4.0)
        assert result.notes.startswith(f"scale=1/{setup.scale:.0f}, drops=")

    def test_spec_run_timeline_roundtrip(self, policy, demands, setup):
        topo = Topology()
        topo.nic("nic0", policy=policy)
        topo.host("host0", nic="nic0")
        for app, demand in sorted(demands.items()):
            topo.app("host0", app, demand=demand)
        spec = SimulationSpec(topology=topo, setup=setup, duration=6.0,
                              bin_seconds=2.0, title="roundtrip")
        result = spec.run()
        assert result.shards == 1 and result.windows == 1
        adapted = result.timeline()
        reference = timeline(policy, demands, setup, duration=6.0,
                             bin_seconds=2.0, title="roundtrip")
        assert adapted.series == reference.series


class TestTopologyValidation:
    def test_duplicate_nic_rejected(self, policy):
        topo = Topology().nic("n", policy)
        with pytest.raises(ConfigError, match="duplicate NIC"):
            topo.nic("n", policy)

    def test_host_requires_known_nic(self, policy):
        with pytest.raises(ConfigError, match="unknown NIC"):
            Topology().nic("n", policy).host("h", nic="other")

    def test_duplicate_host_rejected(self, policy):
        topo = Topology().nic("n", policy).host("h", nic="n")
        with pytest.raises(ConfigError, match="duplicate host"):
            topo.host("h", nic="n")

    def test_app_requires_known_host(self, policy):
        with pytest.raises(ConfigError, match="unknown host"):
            Topology().nic("n", policy).app("h", "A")

    def test_wire_requires_known_source(self, policy):
        with pytest.raises(ConfigError, match="unknown NIC"):
            Topology().nic("n", policy).wire("other", to="n")

    def test_wire_dst_checked_at_resolution(self, policy):
        # Forward references are allowed at declaration time (rings)...
        topo = Topology().nic("n", policy).wire("n", to="later")
        # ...but must resolve by the time domains are built.
        with pytest.raises(ConfigError, match="unknown NIC 'later'"):
            topo.domains()

    def test_forward_wire_reference_resolves(self, policy):
        topo = Topology().nic("a", policy).wire("a", to="b").nic("b", policy)
        domains = topo.domains()
        assert domains[0].remote and domains[0].wire.dst == "b"

    def test_one_egress_wire_per_nic(self, policy):
        topo = Topology().nic("a", policy).nic("b", policy).wire("a", to="b")
        with pytest.raises(ConfigError, match="already has an egress"):
            topo.wire("a", to="b")

    def test_negative_propagation_rejected(self, policy):
        with pytest.raises(ConfigError, match=">= 0"):
            Topology().nic("a", policy).wire("a", to="a", propagation_delay=-1.0)

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigError, match="no NICs"):
            Topology().domains()

    def test_duplicate_app_in_domain_rejected(self, policy):
        topo = Topology().nic("n", policy).host("h", nic="n")
        topo.app("h", "A").app("h", "A")
        with pytest.raises(ConfigError, match="duplicate app name"):
            topo.domains()

    def test_apps_ordered_by_name_and_vf(self, policy):
        topo = Topology().nic("n", policy).host("h", nic="n")
        topo.app("h", "ZZ").app("h", "AA").app("h", "MM")
        [domain] = topo.domains()
        assert [a.name for a in domain.apps] == ["AA", "MM", "ZZ"]

    def test_domain_order_is_nic_insertion_order(self, policy):
        topo = Topology().nic("z", policy).nic("a", policy)
        assert [d.name for d in topo.domains()] == ["z", "a"]
        assert [d.index for d in topo.domains()] == [0, 1]


class TestSpecValidation:
    def _two_domains(self, policy):
        topo = Topology()
        for name in ("a", "b"):
            topo.nic(name, policy).host(f"h-{name}", nic=name)
        topo.wire("a", to="b").wire("b", to="a")
        return topo

    def test_trace_tap_single_domain_only(self, policy, setup):
        spec = SimulationSpec(topology=self._two_domains(policy), setup=setup,
                              trace_path="/tmp/x.jsonl")
        with pytest.raises(ConfigError, match="single-domain"):
            spec.plan()

    def test_unknown_scheduler_rejected(self, setup, policy):
        topo = Topology().nic("n", policy, scheduler="cake")
        with pytest.raises(ConfigError, match="cake"):
            SimulationSpec(topology=topo, setup=setup).plan()

    def test_collect_records_flowvalve_only(self, setup, policy):
        topo = Topology().nic("n", policy, scheduler="wfq")
        spec = SimulationSpec(topology=topo, setup=setup, collect_records=True)
        with pytest.raises(ConfigError, match="collect_records"):
            spec.plan()

    def test_with_shards_returns_new_spec(self, setup, policy):
        topo = Topology().nic("n", policy)
        spec = SimulationSpec(topology=topo, setup=setup)
        other = spec.with_shards(4)
        assert spec.shards == 1 and other.shards == 4
        assert other.topology is topo

    def test_shards_must_be_positive(self, setup, policy):
        topo = Topology().nic("n", policy)
        with pytest.raises(ConfigError, match="shards"):
            SimulationSpec(topology=topo, setup=setup, shards=0).plan()


class TestScheduledPortDomains:
    def test_software_scheduler_domain_runs(self, setup, policy):
        topo = Topology().nic("n", policy, scheduler="wfq", queue_limit=256)
        # App names must match the policy's filters (unclassified
        # frames drop); the motivation policy classifies KVS/WS/ML/NC.
        topo.host("h", nic="n").app("h", "KVS").app("h", "WS")
        result = SimulationSpec(topology=topo, setup=setup, duration=2.0).run()
        summary = result.domains["n"]
        assert summary.scheduler == "wfq"
        assert summary.submitted > 0
        assert result.total_packets > 0
