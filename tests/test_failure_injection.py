"""Failure-injection tests: the system under starvation, overflow, and
degenerate configurations.

Production behaviour is defined as much by what happens when resources
run out as by the happy path: every scenario here drives a component
past a limit and asserts the *specified* degradation (counted drops,
preserved invariants) rather than crashes or silent corruption.
"""

import pytest

from repro.core import FlowValveFrontend
from repro.core.sched_tree import SchedulingParams
from repro.errors import ConfigError
from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.net.packet import DropReason
from repro.nic import ForwardAllApp, NicConfig, NicPipeline
from repro.sim import Simulator

FAIR = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 40gbit ceil 40gbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1
fv filter add dev eth0 parent 1: match app=A flowid 1:10
"""


def blast(sim, nic, pps, duration, size=256, app="A"):
    factory = PacketFactory()
    flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)

    def gen():
        while sim.now < duration:
            nic.submit(factory.make(size, flow, sim.now, app=app))
            yield 1.0 / pps

    sim.process(gen())


class TestBufferExhaustion:
    def test_tiny_buffer_pool_drops_at_ingress(self):
        sim = Simulator(seed=1)
        cfg = NicConfig(buffer_count=64, buffer_recycle_delay=50e-6)
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, pps=5e6, duration=0.002)
        sim.run(until=0.003)
        assert nic.drops_by_reason[DropReason.NO_BUFFER] > 0
        # Conservation: every submitted packet is delivered or dropped.
        assert sink.total_packets + nic.dropped == nic.submitted

    def test_pool_recovers_after_burst(self):
        sim = Simulator(seed=1)
        cfg = NicConfig(buffer_count=64, buffer_recycle_delay=5e-6)
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, pps=20e6, duration=0.0005)   # burst
        sim.run(until=0.002)
        before = sink.total_packets
        blast(sim, nic, pps=1e5, duration=0.0045)    # gentle follow-up
        sim.run(until=0.005)
        # The gentle phase flows without buffer drops.
        assert sink.total_packets > before
        assert nic.buffers.free > 0


class TestQueueOverflow:
    def test_dispatch_overflow_counted(self):
        sim = Simulator(seed=1)
        cfg = NicConfig(dispatch_depth=16, n_workers=1)
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, pps=10e6, duration=0.001)
        sim.run(until=0.002)
        assert nic.drops_by_reason[DropReason.QUEUE_FULL] > 0
        assert sink.total_packets + nic.dropped == nic.submitted

    def test_single_worker_still_correct(self):
        """One micro-engine: slow, but ordering and accounting hold."""
        sim = Simulator(seed=1)
        cfg = NicConfig(n_workers=1)
        order = []
        sink = PacketSink(sim, record_delays=False,
                          on_delivery=lambda p: order.append(p.seq))
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, pps=1e5, duration=0.002)
        sim.run(until=0.003)
        assert order == sorted(order)
        assert len(order) > 0


class TestSchedulerStarvation:
    def test_policy_smaller_than_offered_sheds_precisely(self):
        sim = Simulator(seed=1)
        frontend = FlowValveFrontend.from_script(
            FAIR.replace("40gbit", "1gbit"), link_rate_bps=1e9,
            params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
        )
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline.with_flowvalve(sim, NicConfig(), frontend,
                                         receiver=sink.receive)
        blast(sim, nic, pps=2e6, duration=0.005, size=1250)
        # Measure a steady window inside the blast (skip the ramp).
        snap = {}
        sim.schedule_at(0.001, lambda: snap.update(bytes=sink.total_bytes))
        sim.run(until=0.004)
        achieved = (sink.total_bytes - snap["bytes"]) * 8 / 0.003
        assert achieved == pytest.approx(0.97e9, rel=0.12)
        assert nic.drops_by_reason[DropReason.SCHED_RED] > 0

    def test_zero_offered_load_is_quiescent(self):
        sim = Simulator(seed=1)
        frontend = FlowValveFrontend.from_script(
            FAIR, link_rate_bps=40e9,
            params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
        )
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline.with_flowvalve(sim, NicConfig(), frontend,
                                         receiver=sink.receive)
        sim.run(until=0.01)
        assert nic.submitted == 0
        assert sink.total_packets == 0


class TestDegenerateConfigs:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            NicConfig(n_workers=0)

    def test_negative_line_rate_rejected(self):
        with pytest.raises(ConfigError):
            NicConfig(line_rate_bps=-1)

    def test_reorder_disabled_still_delivers(self):
        sim = Simulator(seed=1)
        cfg = NicConfig(reorder_enabled=False)
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline(sim, cfg, ForwardAllApp(), receiver=sink.receive)
        blast(sim, nic, pps=1e6, duration=0.002)
        sim.run(until=0.003)
        assert sink.total_packets == nic.submitted

    def test_min_size_packets_survive_the_pipeline(self):
        sim = Simulator(seed=1)
        frontend = FlowValveFrontend.from_script(
            FAIR, link_rate_bps=40e9,
            params=SchedulingParams(update_interval=0.0005, expire_after=0.005),
        )
        sink = PacketSink(sim, record_delays=False)
        nic = NicPipeline.with_flowvalve(sim, NicConfig(), frontend,
                                         receiver=sink.receive)
        blast(sim, nic, pps=1e6, duration=0.001, size=64)
        sim.run(until=0.002)
        assert sink.total_packets > 0
