"""Behavioural tests for the scheduling function (Algorithm 1).

These validate the paper's enforcement semantics end to end in
software mode: rate limiting, priority, weighted sharing, guarantees,
and shadow-bucket borrowing.
"""

import pytest

from repro.core import FlowValve
from repro.core.scheduling import Verdict
from repro.net import FiveTuple, PacketFactory

from conftest import TEST_PARAMS, constant, drive_valve

BASE = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10mbit ceil 10mbit
"""


def valve_from(body: str) -> FlowValve:
    return FlowValve.from_script(BASE + body, link_rate_bps=10e6, params=TEST_PARAMS)


class TestSingleClassRateLimiting:
    """Paper Fig. 8: single class rate-limiting is precise."""

    def test_overload_throttled_to_theta(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 4mbit ceil 4mbit\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
        )
        rates = drive_valve(valve, {"A": constant(20e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(4e6, rel=0.05)

    def test_underload_passes_untouched(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 8mbit ceil 8mbit\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
        )
        rates = drive_valve(valve, {"A": constant(2e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(2e6, rel=0.05)

    def test_drop_reason_recorded(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 1mbit ceil 1mbit\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
        )
        factory = PacketFactory()
        flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 80)
        dropped = None
        for i in range(2000):
            packet = factory.make(1250, flow, i * 1e-4, app="A")
            if valve.process(packet, i * 1e-4) is Verdict.DROP:
                dropped = packet
        assert dropped is not None
        assert dropped.dropped
        assert dropped.drop_reason.value == "sched_red"


class TestWeightedSharing:
    """Eq. 5: siblings split the parent rate by weight."""

    def test_two_to_one_split_under_contention(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(valve, {"A": constant(20e6), "B": constant(20e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(6.67e6, rel=0.07)
        assert rates["B"] == pytest.approx(3.33e6, rel=0.07)

    def test_total_never_exceeds_link(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(valve, {"A": constant(30e6), "B": constant(30e6)}, duration=20.0)
        assert sum(rates.values()) <= 10e6 * 1.05

    def test_equal_weights_fair(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(valve, {"A": constant(20e6), "B": constant(20e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(rates["B"], rel=0.1)


class TestPriority:
    """Eq. 4: a less-prior class gets the residual of its prior sibling."""

    def test_prior_class_wins_under_contention(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv prio 1\n"
            "fv filter add dev eth0 parent 1: match app=HI flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=LO flowid 1:20\n"
        )
        rates = drive_valve(valve, {"HI": constant(20e6), "LO": constant(20e6)}, duration=20.0)
        assert rates["HI"] == pytest.approx(10e6, rel=0.05)
        assert rates["LO"] < 1e6

    def test_low_priority_gets_residual(self):
        # The paper's §III-D example: f_high at 9, f_low should get ~1.
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv prio 1\n"
            "fv filter add dev eth0 parent 1: match app=HI flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=LO flowid 1:20\n"
        )
        rates = drive_valve(valve, {"HI": constant(9e6), "LO": constant(9e6)}, duration=30.0)
        assert rates["HI"] == pytest.approx(9e6, rel=0.05)
        # Residual = 0.97 * 10 - 9 ≈ 0.7 Mbit (root headroom included).
        assert rates["LO"] == pytest.approx(0.7e6, rel=0.4)

    def test_low_priority_recovers_when_high_stops(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv prio 1\n"
            "fv filter add dev eth0 parent 1: match app=HI flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=LO flowid 1:20\n"
        )
        rates = drive_valve(
            valve,
            {"HI": lambda t: 20e6 if t < 10 else 0.0, "LO": constant(20e6)},
            duration=30.0,
        )
        # LO: ~0 for 10 s, then ~10 Mbit for 20 s → mean ≈ 6.67 Mbit.
        assert rates["LO"] == pytest.approx(6.67e6, rel=0.15)


class TestBorrowing:
    """Eq. 6 / Fig. 9: shadow-bucket lending."""

    def test_work_conservation_via_borrowing(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(valve, {"A": constant(20e6)}, duration=20.0)
        # Work conservation up to the root's 3% headroom.
        assert rates["A"] == pytest.approx(9.7e6, rel=0.05)

    def test_no_borrowing_without_label(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(valve, {"A": constant(20e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(5e6, rel=0.07)

    def test_borrow_disabled_by_params(self):
        from repro.core.sched_tree import SchedulingParams

        params = SchedulingParams(
            update_interval=0.1, expire_after=1.0, borrow_enabled=False
        )
        valve = FlowValve.from_script(
            BASE
            + "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20\n"
            + "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            + "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            + "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n",
            link_rate_bps=10e6,
            params=params,
        )
        rates = drive_valve(valve, {"A": constant(20e6)}, duration=20.0)
        assert rates["A"] == pytest.approx(5e6, rel=0.07)

    def test_borrow_statistics_recorded(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        drive_valve(valve, {"A": constant(20e6)}, duration=10.0)
        assert valve.stats.forwarded_on_borrowed_tokens > 0
        assert ("1:10", "1:20") in valve.stats.borrow_matrix

    def test_lender_reclaims_bandwidth(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        rates = drive_valve(
            valve,
            {"A": constant(20e6), "B": lambda t: 20e6 if t >= 10 else 0.0},
            duration=30.0,
        )
        # B idle 10 s then claims its 5 Mbit half for 20 s → mean ≈ 3.33.
        assert rates["B"] == pytest.approx(3.33e6, rel=0.2)


class TestGuarantee:
    """§II: ML guaranteed 2 Mbit above the 4 Mbit threshold, weighted below."""

    SCRIPT = (
        "fv class add dev eth0 parent 1:1 classid 1:30 fv prio 0 rate 4mbit\n"
        "fv class add dev eth0 parent 1:1 classid 1:31 fv prio 1 rate 2mbit "
        "guarantee 2mbit threshold 4mbit\n"
        "fv filter add dev eth0 parent 1: match app=KVS flowid 1:30\n"
        "fv filter add dev eth0 parent 1: match app=ML flowid 1:31\n"
    )

    def test_guarantee_held_under_priority_pressure(self):
        valve = valve_from(self.SCRIPT)
        rates = drive_valve(valve, {"KVS": constant(20e6), "ML": constant(20e6)}, duration=20.0)
        assert rates["ML"] == pytest.approx(2e6, rel=0.15)
        assert rates["KVS"] == pytest.approx(8e6, rel=0.1)

    def test_priority_wins_when_guaranteed_class_idle(self):
        valve = valve_from(self.SCRIPT)
        rates = drive_valve(valve, {"KVS": constant(20e6)}, duration=20.0)
        assert rates["KVS"] == pytest.approx(10e6, rel=0.05)


class TestUnclassifiedTraffic:
    def test_dropped_without_default(self):
        valve = valve_from(
            "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 10mbit\n"
            "fv filter add dev eth0 parent 1: match app=KNOWN flowid 1:10\n"
        )
        factory = PacketFactory()
        packet = factory.make(1250, FiveTuple("1.1.1.1", "2.2.2.2", 1, 2), 0.0, app="UNKNOWN")
        assert valve.process(packet, 0.0) is Verdict.DROP
        assert packet.drop_reason.value == "unclassified"

    def test_default_class_used(self):
        script = (
            "fv qdisc add dev eth0 root handle 1: fv default 10\n"
            "fv class add dev eth0 parent 1: classid 1:1 fv rate 10mbit ceil 10mbit\n"
            "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 10mbit\n"
        )
        valve = FlowValve.from_script(script, link_rate_bps=10e6, params=TEST_PARAMS)
        factory = PacketFactory()
        # Buckets start empty and accrue from t=0, so give the meter a
        # moment of accrued tokens before expecting a green verdict.
        packet = factory.make(1250, FiveTuple("1.1.1.1", "2.2.2.2", 1, 2), 0.1, app="ANY")
        assert valve.process(packet, 0.1) is Verdict.FORWARD
        assert packet.leaf_class == "1:10"


class TestGammaModes:
    def test_offered_mode_counts_drops_into_gamma(self):
        from repro.core.sched_tree import SchedulingParams

        params = SchedulingParams(update_interval=0.1, expire_after=1.0, gamma_mode="offered")
        valve = FlowValve.from_script(
            BASE
            + "fv class add dev eth0 parent 1:1 classid 1:10 fv rate 1mbit ceil 1mbit\n"
            + "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n",
            link_rate_bps=10e6,
            params=params,
        )
        drive_valve(valve, {"A": constant(8e6)}, duration=5.0)
        node = valve.tree.node("1:10")
        # Offered Γ reflects the 8 Mbit offered load, not the 1 Mbit forwarded.
        assert node.gamma_rate > 4e6

    @pytest.mark.parametrize("offered_bps", [8e6, 20e6])
    def test_gamma_modes_report_identical_borrow_stats(self, offered_bps):
        """Both Γ modes run the same forwarding accounting via commit().

        Regression: ``gamma_mode="offered"`` used to bypass the borrow
        bookkeeping entirely, so ``forwarded_on_borrowed_tokens``, the
        borrow matrix, and the leaf's ``borrowed_bits`` stayed zero
        even when every forwarded packet rode on borrowed tokens.
        """
        from repro.core.sched_tree import SchedulingParams

        body = (
            "fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow 1:20\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
            "fv filter add dev eth0 parent 1: match app=B flowid 1:20\n"
        )
        results = {}
        for mode in ("forwarded", "offered"):
            params = SchedulingParams(
                update_interval=0.1, expire_after=1.0, gamma_mode=mode
            )
            valve = FlowValve.from_script(
                BASE + body, link_rate_bps=10e6, params=params
            )
            drive_valve(valve, {"A": constant(offered_bps)}, duration=10.0)
            stats = valve.stats
            results[mode] = {
                "forwarded": stats.forwarded,
                "own": stats.forwarded_on_own_tokens,
                "borrowed": stats.forwarded_on_borrowed_tokens,
                "matrix": dict(stats.borrow_matrix),
                "leaf_borrowed_bits": valve.tree.node("1:10").borrowed_bits,
            }
        # The trace exercises borrowing (A is over its own share), so a
        # silently-skipped accounting path would show up as zeros.
        assert results["forwarded"]["borrowed"] > 0
        assert ("1:10", "1:20") in results["forwarded"]["matrix"]
        assert results["offered"] == results["forwarded"]
