"""Tests for the campaign layer: specs, registry, cache, runner, CLI.

Long-running pool behaviour (timeouts, retries) is exercised with the
``smoke_sleep``/``smoke_fault`` specs — sub-second sleeps, no
simulation — so the whole file stays fast.
"""

import json
import os

import pytest

from repro.errors import CampaignError, TransientError
from repro.experiments.campaign import (
    REGISTRY,
    CampaignRunner,
    CampaignTask,
    ExperimentSpec,
    ManifestWriter,
    ResultCache,
    SmokeResult,
    SpecRegistry,
    TaskRecord,
    read_manifest,
    register,
    source_digest,
    task_key,
)
from repro.cli import main


# ----------------------------------------------------------------------
# specs & registry
# ----------------------------------------------------------------------
class TestSpecRegistry:
    def test_builtin_specs_registered(self):
        for name in ("fig03", "fig11a", "fig13", "fig14", "cpu_cores",
                     "lock_ablation", "propagation", "interval_sensitivity",
                     "tcp_realism", "hotpath", "smoke_sleep", "smoke_fault"):
            assert name in REGISTRY

    def test_register_and_get(self):
        registry = SpecRegistry()
        spec = register("x", lambda setup: None, registry=registry)
        assert registry.get("x") is spec
        assert registry.names() == ["x"]

    def test_duplicate_name_rejected(self):
        registry = SpecRegistry()
        register("x", lambda setup: None, registry=registry)
        with pytest.raises(CampaignError, match="already registered"):
            register("x", lambda setup: None, registry=registry)
        register("x", lambda setup: None, registry=registry, replace=True)

    def test_unknown_spec_names_known_ones(self):
        with pytest.raises(CampaignError, match="fig13"):
            REGISTRY.get("no_such_spec")


class TestParamGrid:
    def test_cartesian_product_deterministic_order(self):
        spec = ExperimentSpec("g", lambda setup: None,
                              grid={"b": [1, 2], "a": ["x"]})
        assert spec.param_sets() == [
            {"a": "x", "b": 1},
            {"a": "x", "b": 2},
        ]

    def test_overrides_replace_whole_axis(self):
        spec = ExperimentSpec("g", lambda setup: None, grid={"a": [1]})
        sets = spec.param_sets({"a": [7, 8], "b": [True]})
        assert sets == [{"a": 7, "b": True}, {"a": 8, "b": True}]

    def test_empty_axis_rejected(self):
        spec = ExperimentSpec("g", lambda setup: None)
        with pytest.raises(CampaignError, match="non-empty list"):
            spec.param_sets({"a": []})

    def test_setup_keys_split_from_kwargs(self):
        captured = {}

        def entry(setup, **kwargs):
            captured["setup"] = setup
            captured["kwargs"] = kwargs
            return SmokeResult("x", 0.0)

        spec = ExperimentSpec("g", entry)
        spec.execute({"seed": 5, "scale": 10.0, "duration": 2.0})
        assert captured["setup"].seed == 5
        assert captured["setup"].scale == 10.0
        assert captured["kwargs"] == {"duration": 2.0}

    def test_validate_requires_to_table_and_schema(self):
        spec = ExperimentSpec("g", lambda setup: None,
                              schema={"value": float})
        with pytest.raises(CampaignError, match="to_table"):
            spec.validate(object())
        spec.validate(SmokeResult("x", 1.0))
        with pytest.raises(CampaignError, match="expected float"):
            spec.validate(SmokeResult("x", "not-a-float"))


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_key_changes_with_params_and_digest(self):
        base = task_key("s", {"a": 1}, "d1")
        assert task_key("s", {"a": 1}, "d1") == base
        assert task_key("s", {"a": 2}, "d1") != base
        assert task_key("s", {"a": 1}, "d2") != base
        assert task_key("t", {"a": 1}, "d1") != base

    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        hit, _ = cache.get("deadbeef")
        assert not hit
        cache.put("deadbeef", {"x": 1}, meta={"spec": "s"})
        hit, value = cache.get("deadbeef")
        assert hit and value == {"x": 1}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put("deadbeef", {"x": 1}, meta={})
        pickles = list((tmp_path / "cache").rglob("*.pkl"))
        pickles[0].write_bytes(b"not a pickle")
        hit, _ = cache.get("deadbeef")
        assert not hit

    def test_source_digest_stable(self):
        assert source_digest() == source_digest()
        assert len(source_digest()) == 64


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        records = [
            TaskRecord(task_id="a", spec="s", params={"k": 1}, status="ok",
                       attempts=1, duration=0.5, worker=123),
            TaskRecord(task_id="b", spec="s", status="timeout",
                       error="deadline"),
        ]
        with ManifestWriter(path) as writer:
            for record in records:
                writer.write(record)
        loaded = read_manifest(path)
        assert loaded == records
        # and every line is plain JSON
        lines = open(path).read().splitlines()
        assert all(json.loads(line)["spec"] == "s" for line in lines)

    def test_invalid_status_rejected(self, tmp_path):
        with ManifestWriter(str(tmp_path / "m.jsonl")) as writer:
            with pytest.raises(CampaignError, match="invalid"):
                writer.write(TaskRecord(task_id="a", spec="s", status="weird"))

    def test_malformed_line_reported_with_lineno(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"task_id": "a", "spec": "s"}\n{oops\n')
        with pytest.raises(CampaignError, match="2"):
            read_manifest(str(path))


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunnerPool:
    def test_pool_runs_all_tasks_with_workers(self, tmp_path):
        runner = CampaignRunner(workers=2,
                                manifest_path=str(tmp_path / "m.jsonl"))
        tasks = runner.tasks_for(
            ["smoke_sleep"],
            overrides={"seconds": [0.05], "label": ["a", "b", "c"]},
        )
        report = runner.run(tasks)
        assert report.ok
        assert report.counts == {"ok": 3}
        assert all(r.worker is not None for r in report.records)
        assert len(read_manifest(str(tmp_path / "m.jsonl"))) == 3
        # results aggregate through the unified to_table() contract
        table = report.results[report.records[0].task_id].to_table()
        assert "campaign smoke" in table.render()

    def test_cache_hit_on_rerun_and_miss_on_param_change(self, tmp_path):
        cache_dir = str(tmp_path / "cache")

        def runner():
            return CampaignRunner(workers=0, cache_dir=cache_dir)

        overrides = {"seconds": [0.01], "label": ["x", "y"]}
        first = runner().run(runner().tasks_for(["smoke_sleep"], overrides))
        assert first.counts == {"ok": 2}
        again = runner().run(runner().tasks_for(["smoke_sleep"], overrides))
        assert again.counts == {"cached": 2}
        assert again.cache_hit_rate == 1.0
        # cached results still land in the report
        assert all(isinstance(v, SmokeResult) for v in again.results.values())
        changed = runner().run(runner().tasks_for(
            ["smoke_sleep"], {"seconds": [0.02], "label": ["x", "y"]},
        ))
        assert changed.counts == {"ok": 2}  # param change = cache miss

    def test_timeout_kills_hung_worker(self, tmp_path):
        runner = CampaignRunner(workers=1, timeout=0.3, retries=0,
                                manifest_path=str(tmp_path / "m.jsonl"))
        report = runner.run(runner.tasks_for(
            ["smoke_sleep"], {"seconds": [30.0]},
        ))
        assert not report.ok
        record = report.records[0]
        assert record.status == "timeout"
        assert "deadline" in record.error
        assert record.duration < 5.0  # killed, not waited out
        loaded = read_manifest(str(tmp_path / "m.jsonl"))
        assert loaded[0].status == "timeout"

    def test_retry_succeeds_after_transient_fault(self, tmp_path):
        marker = str(tmp_path / "fault.marker")
        runner = CampaignRunner(workers=1, retries=2, backoff=0.01)
        report = runner.run(runner.tasks_for(
            ["smoke_fault"], {"marker": [marker], "fail_times": [1]},
        ))
        assert report.ok
        record = report.records[0]
        assert record.status == "ok"
        assert record.attempts == 2  # one transient failure, one success

    def test_retries_exhausted_records_failed(self, tmp_path):
        marker = str(tmp_path / "fault.marker")
        runner = CampaignRunner(workers=1, retries=1, backoff=0.01)
        report = runner.run(runner.tasks_for(
            ["smoke_fault"], {"marker": [marker], "fail_times": [10]},
        ))
        assert report.records[0].status == "failed"
        assert report.records[0].attempts == 2
        assert "transient" in report.records[0].error

    def test_inline_mode_matches_pool_semantics(self, tmp_path):
        marker = str(tmp_path / "fault.marker")
        runner = CampaignRunner(workers=0, retries=2, backoff=0.0)
        report = runner.run(runner.tasks_for(
            ["smoke_fault"], {"marker": [marker], "fail_times": [1]},
        ))
        assert report.ok

    def test_scoped_overrides_apply_per_spec(self):
        runner = CampaignRunner(workers=0)
        tasks = runner.tasks_for(
            ["smoke_sleep", "smoke_fault"],
            overrides={
                "smoke_sleep.seconds": [0.01],
                "smoke_fault.fail_times": [0],
                "seed": [5],  # bare key: every spec
            },
        )
        by_spec = {t.spec: t.params for t in tasks}
        assert by_spec["smoke_sleep"] == {"seconds": 0.01, "seed": 5}
        assert by_spec["smoke_fault"] == {"fail_times": 0, "seed": 5}

    def test_scoped_override_for_absent_spec_rejected(self):
        runner = CampaignRunner(workers=0)
        with pytest.raises(CampaignError, match="not in this campaign"):
            runner.tasks_for(["smoke_sleep"], {"smoke_fault.fail_times": [0]})

    def test_duplicate_task_ids_rejected(self):
        runner = CampaignRunner(workers=0)
        task = CampaignTask("smoke_sleep", {"seconds": 0.01}, "same-id")
        with pytest.raises(CampaignError, match="duplicate task id"):
            runner.run([task, task])

    def test_invalid_workers_rejected(self):
        with pytest.raises(CampaignError, match="workers"):
            CampaignRunner(workers=-1)


class TestTransientError:
    def test_is_raised_by_smoke_fault(self, tmp_path):
        from repro.experiments.campaign.builtin import smoke_fault

        marker = str(tmp_path / "m")
        with pytest.raises(TransientError):
            smoke_fault(marker=marker, fail_times=1)
        # second call sees the marker and succeeds
        result = smoke_fault(marker=marker, fail_times=1)
        assert result.value == 1.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCli:
    def test_list_names_all_specs(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY.names():
            assert name in out

    def test_run_writes_manifest_and_summary(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "run", "smoke_sleep",
            "--workers", "2", "--set", "seconds=0.05", "--set", "label=a,b",
            "--manifest", "m.jsonl", "--cache-dir", "cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 task(s)" in out and "status" in out
        records = read_manifest(str(tmp_path / "m.jsonl"))
        assert {r.status for r in records} == {"ok"}
        # second run is served from cache
        code = main([
            "campaign", "run", "smoke_sleep",
            "--workers", "2", "--set", "seconds=0.05", "--set", "label=a,b",
            "--manifest", "m.jsonl", "--cache-dir", "cache",
        ])
        assert code == 0
        assert "cache hit rate: 100%" in capsys.readouterr().out

    def test_status_reads_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "m.jsonl")
        with ManifestWriter(path) as writer:
            writer.write(TaskRecord(task_id="t", spec="s", status="ok"))
        assert main(["campaign", "status", "--manifest", path]) == 0
        assert "ok=1" in capsys.readouterr().out

    def test_status_flags_failures(self, tmp_path, capsys):
        path = str(tmp_path / "m.jsonl")
        with ManifestWriter(path) as writer:
            writer.write(TaskRecord(task_id="t", spec="s", status="failed",
                                    error="boom"))
        assert main(["campaign", "status", "--manifest", path]) == 1

    def test_run_unknown_spec_fails_cleanly(self, capsys):
        assert main(["campaign", "run", "nope", "--workers", "0",
                     "--no-cache", "--manifest", os.devnull]) == 1
        assert "unknown experiment spec" in capsys.readouterr().err

    def test_set_flag_parsing(self):
        from repro.cli import _parse_set_overrides

        overrides = _parse_set_overrides(
            ["seed=11,12", "sizes=[1518,512]", "name=abc"])
        assert overrides["seed"] == [11, 12]
        assert overrides["sizes"] == [[1518, 512]]  # one list-valued point
        assert overrides["name"] == ["abc"]

    def test_set_flag_errors(self):
        from repro.cli import _parse_set_overrides

        with pytest.raises(SystemExit, match="KEY=V1"):
            _parse_set_overrides(["nonsense"])
        with pytest.raises(SystemExit, match="no values"):
            _parse_set_overrides(["seed="])
        with pytest.raises(SystemExit, match="duplicate"):
            _parse_set_overrides(["seed=1", "seed=2"])

    def test_shared_sim_flags_become_grid_axes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "run", "smoke_sleep", "--workers", "0",
            "--seed", "11", "--set", "seconds=0.01",
            "--manifest", "m.jsonl", "--no-cache",
        ])
        assert code == 0
        records = read_manifest(str(tmp_path / "m.jsonl"))
        assert records[0].params["seed"] == 11
