"""End-to-end tests of the observability subsystem.

Covers the metrics registry (instruments, probes, no-op mode, the
periodic sampler), trace emission threaded through the NIC pipeline and
scheduling tree, the JSONL exports, and — critically — that switching
observability on changes *nothing* about simulated behaviour.
"""

import json

import pytest

from repro.core import FlowValve, FlowValveFrontend
from repro.core.scheduling import Verdict
from repro.experiments.base import ScaledSetup, _scale_demand
from repro.host import FixedRateSender
from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.nic import NicPipeline
from repro.sim import NullTracer, Simulator, Tracer
from repro.stats.metrics import (
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    NullMetricsRegistry,
    write_jsonl,
)


class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("nic.drops")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("nic.drops") is counter
        assert registry.snapshot()["nic.drops"] == pytest.approx(3.5)

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(17)
        assert registry.snapshot()["depth"] == 17

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("delay", bounds=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = registry.snapshot()["delay"]
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "overflow": 1}
        assert snap["mean"] == pytest.approx(55.5 / 3)

    def test_histogram_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=[])

    def test_probe_evaluated_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.probe("live", lambda: state["value"])
        assert registry.snapshot()["live"] == 1
        state["value"] = 2
        assert registry.snapshot()["live"] == 2

    def test_names_sorted_union(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        registry.probe("c", lambda: 0)
        assert registry.names() == ["a", "b", "c"]

    def test_null_registry_discards_everything(self):
        registry = NullMetricsRegistry()
        assert not registry.enabled
        registry.counter("x").inc(100)
        registry.gauge("y").set(5)
        registry.histogram("z").observe(1.0)
        registry.probe("p", lambda: 1)
        assert registry.snapshot() == {}

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled
        assert not NullMetricsRegistry().enabled


class TestMetricsSampler:
    def test_periodic_rows(self):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        sim.schedule(0.25, counter.inc)
        sampler = MetricsSampler(sim, registry, interval=0.1)
        sim.run(until=0.55)
        times = [row["time"] for row in sampler.rows]
        assert times == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])
        assert [row["ticks"] for row in sampler.rows] == [0, 0, 1, 1, 1]

    def test_null_registry_starts_no_process(self):
        sim = Simulator()
        sampler = MetricsSampler(sim, NullMetricsRegistry(), interval=0.1)
        sim.run(until=10.0)
        assert sim.events_executed == 0
        assert sampler.rows == []

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsSampler(Simulator(), MetricsRegistry(), interval=0.0)

    def test_to_jsonl(self, tmp_path):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.probe("now", lambda: sim.now)
        sampler = MetricsSampler(sim, registry, interval=1.0)
        sim.run(until=3.0)
        path = tmp_path / "metrics.jsonl"
        assert sampler.to_jsonl(str(path)) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[-1]["time"] == pytest.approx(3.0)

    def test_write_jsonl_helper(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        assert write_jsonl(str(path), [{"a": 1}, {"b": 2}]) == 2
        assert [json.loads(l) for l in path.read_text().splitlines()] == [{"a": 1}, {"b": 2}]


POLICY = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit ceil 10gbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
fv filter add dev eth0 parent 1: match app=A flowid 1:10
fv filter add dev eth0 parent 1: match app=B flowid 1:20
"""


def _run_nic(tracer=None, metrics=None, duration=5.0, fast_path=True):
    """The Fig. 11-style assembly at a tiny scale, observability optional.

    scale=500 shrinks the update epoch to 0.5 s of sim time, so token
    enforcement (and therefore scheduler drops) kicks in well inside a
    5 s run while keeping the packet count small.
    """
    from repro.tc.parser import parse_script

    setup = ScaledSetup(nominal_link_bps=10e9, scale=500.0, wire_bps=10e9, seed=7)
    sim = Simulator(seed=setup.seed, tracer=tracer, metrics=metrics)
    frontend = FlowValveFrontend(
        parse_script(POLICY), link_rate_bps=setup.link_bps, params=setup.sched_params()
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    nic = NicPipeline.with_flowvalve(
        sim, setup.nic_config(fast_path=fast_path), frontend, receiver=sink.receive
    )
    factory = PacketFactory()
    demands = {"A": 9e9, "B": 9e9}
    for index, app in enumerate(sorted(demands)):
        FixedRateSender(
            sim, app, factory, nic.submit,
            rate_bps=setup.sender_rate(), packet_size=1500,
            demand=_scale_demand(lambda t, rate=demands[app]: rate, setup.scale),
            vf_index=index, jitter=0.1, rng=sim.random.stream(app),
        )
    sim.run(until=duration)
    return sim, nic, sink


class TestNicPipelineTracing:
    def test_trace_contains_core_event_kinds(self):
        tracer = Tracer()
        sim, nic, sink = _run_nic(tracer=tracer)
        kinds = {(r.source, r.kind) for r in tracer.records}
        assert ("core.sched", "rate_update") in kinds
        assert ("nic.worker", "verdict") in kinds
        assert ("nic.tm", "queue_depth") in kinds
        assert ("net.sink", "deliver") in kinds
        # Somebody dropped something in this oversubscribed run.
        assert ("nic.pipeline", "drop") in kinds
        drops = list(tracer.select(source="nic.pipeline", kind="drop"))
        assert all("reason" in r.data for r in drops)
        assert len(drops) == nic.dropped
        # Each delivery traced exactly once.
        assert len(list(tracer.select(kind="deliver"))) == sink.total_packets

    def test_rate_update_payload_schema(self):
        tracer = Tracer()
        _run_nic(tracer=tracer, duration=2.0)
        record = next(tracer.select(source="core.sched", kind="rate_update"))
        for key in ("classid", "theta", "gamma", "gamma_rate", "shadow_transfer",
                    "lendable_rate", "epoch"):
            assert key in record.data

    def test_borrow_events_consistent_with_stats(self):
        tracer = Tracer()
        sim, nic, _ = _run_nic(tracer=tracer)
        borrows = len(list(tracer.select(source="core.sched", kind="borrow")))
        assert borrows == nic.app.scheduler.stats.forwarded_on_borrowed_tokens

    def test_observability_off_is_behaviour_identical(self):
        """The acceptance contract: tracing on must change nothing."""
        _, nic_off, sink_off = _run_nic()  # default NullTracer
        tracer = Tracer()
        sim_on, nic_on, sink_on = _run_nic(tracer=tracer)
        assert tracer.records  # it really did trace
        assert nic_on.submitted == nic_off.submitted
        assert nic_on.forwarded == nic_off.forwarded
        assert nic_on.dropped == nic_off.dropped
        assert nic_on.drops_by_reason == nic_off.drops_by_reason
        assert sink_on.total_packets == sink_off.total_packets
        assert dict(sink_on.bytes) == dict(sink_off.bytes)

    def test_event_count_identical_with_tracer(self):
        # Trace emission must not schedule simulator events. Tracing
        # forces the multi-yield slow path (DESIGN.md §7), so pin both
        # runs to it — the comparison isolates the tracer's own cost.
        sim_off, _, _ = _run_nic(duration=1.0, fast_path=False)
        sim_on, _, _ = _run_nic(tracer=Tracer(), duration=1.0, fast_path=False)
        assert sim_on.events_executed == sim_off.events_executed

    def test_fast_path_results_identical_with_tracer(self):
        # The stronger property replacing event-count identity when the
        # fast path is allowed: observability may change *how many*
        # kernel events run (slow path), never *what happens*.
        sim_fast, nic_fast, sink_fast = _run_nic(duration=1.0)
        sim_slow, nic_slow, sink_slow = _run_nic(tracer=Tracer(), duration=1.0)
        assert sim_fast.events_executed < sim_slow.events_executed
        assert nic_fast.submitted == nic_slow.submitted
        assert nic_fast.forwarded == nic_slow.forwarded
        assert nic_fast.drops_by_reason == nic_slow.drops_by_reason
        assert sink_fast.total_packets == sink_slow.total_packets
        assert dict(sink_fast.bytes) == dict(sink_slow.bytes)

    def test_trace_limit_bounds_memory(self):
        tracer = Tracer(limit=100)
        _run_nic(tracer=tracer, duration=1.0)
        assert len(tracer) == 100

    def test_to_jsonl_export_parses(self, tmp_path):
        tracer = Tracer()
        _run_nic(tracer=tracer, duration=1.0)
        path = tmp_path / "trace.jsonl"
        count = tracer.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) > 0
        for line in lines:
            row = json.loads(line)
            assert {"time", "source", "kind", "data"} <= set(row)


class TestNicPipelineMetrics:
    def test_registry_probes_cover_the_pipeline(self):
        registry = MetricsRegistry()
        sim, nic, sink = _run_nic(metrics=registry)
        snap = registry.snapshot()
        assert snap["nic.submitted"] == nic.submitted
        assert snap["nic.forwarded"] == nic.forwarded
        assert snap["nic.dropped"] == nic.dropped
        assert snap["nic.tm.frames_out"] == nic.traffic_manager.frames_out
        assert snap["sink.total_packets"] == sink.total_packets
        assert snap["nic.reorder.max_parked"] == nic.reorder.max_parked
        # Drop counters tally the same totals as the pipeline's dict.
        for reason, count in nic.drops_by_reason.items():
            assert snap[f"nic.drops.{reason.value}"] == count
        # Per-class scheduling probes registered by the tree.
        assert snap["sched.1:10.theta_bps"] == pytest.approx(
            nic.app.scheduler.tree.node("1:10").theta
        )
        assert snap["sched.1:10.updates"] > 0

    def test_metrics_off_costs_no_events_or_state(self):
        sim, nic, _ = _run_nic(duration=1.0)
        assert isinstance(sim.metrics, NullMetricsRegistry)
        assert sim.metrics.snapshot() == {}
        assert nic._drop_counters is None


SW_POLICY = POLICY.replace("10gbit", "100mbit")


class TestSoftwareModeObservability:
    def test_attach_observability_emits_updates_drops_and_borrows(self):
        # Mirror the golden software workload's phases: both tenants on
        # (B's excess is red and dropped), then A idle (its unused grant
        # fills the shadow bucket, so B forwards on borrowed tokens).
        from repro.core.sched_tree import SchedulingParams

        valve = FlowValve.from_script(
            SW_POLICY,
            link_rate_bps=100e6,
            params=SchedulingParams(update_interval=0.01, expire_after=0.05),
        )
        tracer = Tracer()
        registry = MetricsRegistry()
        valve.attach_observability(tracer, registry)
        factory = PacketFactory()
        flow_a = FiveTuple("10.0.0.1", "10.0.1.1", 40000, 5001)
        flow_b = FiveTuple("10.0.0.2", "10.0.1.1", 40001, 5001)
        verdicts = {Verdict.FORWARD: 0, Verdict.DROP: 0}
        wire_bits = (1500 + 20) * 8
        step_a = wire_bits / 30e6   # A offers 30 Mbit
        step_b = wire_bits / 60e6   # B offers 60 Mbit vs a 33 Mbit share
        clock = {"A": 0.0, "B": 0.0}
        flows = {"A": flow_a, "B": flow_b}
        steps = {"A": step_a, "B": step_b}
        while True:
            app = min(clock, key=lambda a: (clock[a], a))
            t = clock[app]
            if t >= 1.0:
                break
            clock[app] = t + steps[app]
            if app == "A" and 0.3 <= t < 0.8:
                continue  # A idle: its grant transfers to the shadow
            packet = factory.make(1500, flows[app], t, app=app)
            verdict = valve.process(packet, t)
            if app == "B":
                verdicts[verdict] += 1
        kinds = {(r.source, r.kind) for r in tracer.records}
        assert ("core.sched", "rate_update") in kinds
        assert ("core.sched", "drop") in kinds
        assert ("core.sched", "borrow") in kinds
        assert verdicts[Verdict.DROP] > 0
        drops = list(tracer.select(source="core.sched", kind="drop"))
        assert len(drops) == valve.stats.dropped
        borrows = list(tracer.select(kind="borrow"))
        assert len(borrows) == valve.stats.forwarded_on_borrowed_tokens
        assert all(r.data["lender"] == "1:10" for r in borrows)
        snap = registry.snapshot()
        assert snap["sched.1:20.forwarded_packets"] > 0

    def test_detaching_with_null_tracer(self):
        valve = FlowValve.from_script(SW_POLICY, link_rate_bps=100e6)
        valve.attach_observability(Tracer())
        assert valve.scheduler.tracer is not None
        valve.attach_observability(NullTracer())
        assert valve.scheduler.tracer is None
        assert all(node.tracer is None for node in valve.tree.nodes)


class TestExperimentIntegration:
    def test_timeline_runner_dumps_raw_streams(self, tmp_path):
        from repro.experiments.base import run_flowvalve_timeline
        from repro.tc.parser import parse_script

        trace_path = tmp_path / "fig.trace.jsonl"
        metrics_path = tmp_path / "fig.metrics.jsonl"
        setup = ScaledSetup(nominal_link_bps=10e9, scale=1000.0, wire_bps=10e9)
        result = run_flowvalve_timeline(
            parse_script(POLICY),
            {"A": lambda t: 9e9, "B": lambda t: 9e9},
            setup,
            duration=4.0,
            bin_seconds=1.0,
            trace_path=str(trace_path),
            metrics_path=str(metrics_path),
        )
        assert "trace=" in result.notes and "metrics=" in result.notes
        trace_rows = [json.loads(l) for l in trace_path.read_text().splitlines()]
        kinds = {(r["source"], r["kind"]) for r in trace_rows}
        assert ("core.sched", "rate_update") in kinds
        assert ("nic.tm", "queue_depth") in kinds
        metric_rows = [json.loads(l) for l in metrics_path.read_text().splitlines()]
        assert len(metric_rows) >= 4
        assert metric_rows[-1]["nic.submitted"] > 0

    def test_timeline_runner_default_has_no_observability(self):
        from repro.experiments.base import run_flowvalve_timeline
        from repro.tc.parser import parse_script

        setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
        result = run_flowvalve_timeline(
            parse_script(POLICY), {"A": lambda t: 9e9}, setup,
            duration=2.0, bin_seconds=1.0,
        )
        assert "trace=" not in result.notes
