"""Fast-vs-slow path equivalence: the bit-exactness contract.

``NicConfig.fast_path`` selects between the batched single-wakeup
engine and the multi-yield slow path (DESIGN.md §7). The contract is
not "statistically close" — it is *bit-identical observable
behaviour*: same verdict for every packet, same drop reasons, same
per-app delivered bytes, same sink arrival order. These tests run two
seeded workloads (the Fig. 11(a) motivation mix and a Fig. 13-style
full-rate fair-queueing blast) both ways and compare the complete
interleaved rx/drop record streams.

A second section unit-tests the burst-draining traffic manager's edge
cases directly: immediate starts on an idle wire, virtual-ring refill
mid-burst, tail-drop parity with per-frame offers, and the lazy
buffer-return ordering.
"""

from __future__ import annotations

from repro.core.frontend import FlowValveFrontend
from repro.core.sched_tree import SchedulingParams
from repro.experiments.base import ScaledSetup, _scale_demand
from repro.experiments.policies import fair_policy, motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.host import FixedRateSender
from repro.net import FiveTuple, Link, PacketFactory, PacketSink
from repro.net.packet import DropReason
from repro.nic import BufferPool, NicConfig, NicPipeline, TrafficManager, TxRing
from repro.sim import Simulator


def _observe(sim, nic, sink, records):
    """Everything a run makes observable, in comparable form."""
    stats = nic.app.scheduler.stats
    return {
        "records": records,
        "submitted": nic.submitted,
        "forwarded": nic.forwarded,
        "dropped": nic.dropped,
        "drops_by_reason": {r.value: n for r, n in nic.drops_by_reason.items()},
        "delivered": sink.total_packets,
        "bytes_by_app": dict(sink.bytes),
        "frames_out": nic.traffic_manager.frames_out,
        "tx_tail_drops": nic.tx_ring.tail_drops,
        "buffer_exhaustion_drops": nic.buffers.exhaustion_drops,
        "sched_decisions": stats.decisions,
        "sched_forwarded": stats.forwarded,
        "sched_dropped": stats.dropped,
        "sched_updates_run": stats.updates_run,
        "sched_updates_skipped": stats.updates_skipped,
        "sched_borrowed": stats.forwarded_on_borrowed_tokens,
        "final_time": sim.now,
        "events": sim.events_executed,
    }


def _run_fig11_motivation(fast_path: bool, duration: float = 6.0) -> dict:
    """The golden-trace NIC workload (Fig. 11(a) motivation mix)."""
    setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    records = []
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)

    def receive(packet):
        records.append(f"rx:{packet.seq}")
        sink.receive(packet)

    def on_drop(packet):
        records.append(f"drop:{packet.seq}:{packet.drop_reason.value}")

    nic = NicPipeline.with_flowvalve(
        sim, setup.nic_config(fast_path=fast_path), frontend,
        receiver=receive, on_drop=on_drop,
    )
    factory = PacketFactory()
    for index, (app, demand) in enumerate(sorted(motivation_demands(setup.nominal_link_bps).items())):
        FixedRateSender(
            sim, app, factory, nic.submit,
            rate_bps=setup.sender_rate(), packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index, jitter=0.1, rng=sim.random.stream(app),
        )
    sim.run(until=duration)
    return _observe(sim, nic, sink, records)


def _run_fig13_blast(fast_path: bool, size: int = 1518, window: float = 0.004) -> dict:
    """Fig. 13-style full-rate blast: four apps oversubscribing a
    40 Gbit fair policy at full modelled rates (no rate scaling), which
    keeps the Tx ring and the scheduler's RED drops under pressure."""
    sim = Simulator(seed=11)
    params = SchedulingParams(update_interval=0.0005, expire_after=0.005)
    frontend = FlowValveFrontend(fair_policy(40e9, 4), link_rate_bps=40e9, params=params)
    records = []
    sink = PacketSink(sim, rate_window=window, record_delays=False)

    def receive(packet):
        records.append(f"rx:{packet.seq}")
        sink.receive(packet)

    def on_drop(packet):
        records.append(f"drop:{packet.seq}:{packet.drop_reason.value}")

    config = NicConfig(fast_path=fast_path)
    nic = NicPipeline.with_flowvalve(
        sim, config, frontend, receiver=receive, on_drop=on_drop
    )
    factory = PacketFactory()
    per_app_rate = 1.6 * 40e9 / 4
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, nic.submit, rate_bps=per_app_rate,
            packet_size=size, vf_index=i, jitter=0.05,
            rng=sim.random.stream(f"App{i}"),
        )
    sim.run(until=window)
    return _observe(sim, nic, sink, records)


class TestFastSlowEquivalence:
    def test_fig11_motivation_workload_bit_identical(self):
        fast = _run_fig11_motivation(fast_path=True)
        slow = _run_fig11_motivation(fast_path=False)
        # The fast path must actually engage (fewer kernel events) ...
        assert fast["events"] < slow["events"]
        # ... while every observable — including the full interleaved
        # rx/drop stream — matches exactly.
        del fast["events"], slow["events"]
        assert fast["records"] == slow["records"]
        assert fast == slow
        # Sanity: the workload exercised both drop paths and deliveries.
        assert fast["delivered"] > 0
        assert fast["dropped"] > 0

    def test_fig13_full_rate_blast_bit_identical(self):
        fast = _run_fig13_blast(fast_path=True)
        slow = _run_fig13_blast(fast_path=False)
        assert fast["events"] < slow["events"]
        del fast["events"], slow["events"]
        assert fast["records"] == slow["records"]
        assert fast == slow
        assert fast["delivered"] > 0
        assert fast["dropped"] > 0


# ----------------------------------------------------------------------
# Traffic-manager burst-drain edge cases
# ----------------------------------------------------------------------
def _mk_packets(n, size=1500, t=0.0):
    factory = PacketFactory()
    flow = FiveTuple("10.0.0.1", "10.0.1.1", 40000, 5001)
    return [factory.make(size, flow, t, app="A") for _ in range(n)]


def _fast_tm(sim, depth=4, rate_bps=1e9, on_sent_at=None, receiver=None):
    ring = TxRing(sim, depth=depth, virtual=True)
    link = Link(sim, rate_bps, propagation_delay=1e-6, receiver=receiver)
    tm = TrafficManager(sim, ring, link, on_sent_at=on_sent_at, fast=True)
    return tm, ring, link


class TestTrafficManagerFastPath:
    def test_idle_wire_immediate_start_never_occupies_ring(self):
        # Empty-ring re-arm: a frame offered to an idle wire starts
        # serialising immediately — in store mode it is handed straight
        # to the waiting drain process, so the virtual ring must stay
        # empty too.
        sim = Simulator()
        tm, ring, link = _fast_tm(sim)
        (packet,) = _mk_packets(1)
        assert tm.offer(packet) is True
        assert len(ring) == 0
        assert tm.frames_out == 1
        assert packet.tx_start == 0.0

    def test_virtual_ring_drains_as_time_advances(self):
        # Ring refilled mid-burst: depth 2 fills, matured starts free
        # slots for later offers at the same rate the drain process
        # would have popped them.
        sim = Simulator()
        tm, ring, link = _fast_tm(sim, depth=2)
        p = _mk_packets(5)
        ser = link.serialization_time(p[0])
        assert tm.offer(p[0]) is True  # starts now: not queued
        assert tm.offer(p[1]) is True  # starts at ser: queued
        assert tm.offer(p[2]) is True  # starts at 2*ser: queued
        assert len(ring) == 2
        assert tm.offer(p[3]) is False  # ring full
        assert p[3].drop_reason is DropReason.QUEUE_FULL
        assert ring.tail_drops == 1
        # Advance past the second frame's start: one slot matures.
        sim.schedule_at(1.5 * ser, lambda: None)
        sim.run(until=1.5 * ser)
        assert len(ring) == 1
        assert tm.offer(p[4]) is True
        # frames_out counts *started* serialisations, matching the
        # process-mode drain: p0 and p1 by 1.5*ser; p2 and p4 queued.
        assert tm.frames_out == 2
        sim.run(until=1.0)
        assert tm.frames_out == 4

    def test_offer_burst_matches_sequential_offers_exactly(self):
        # Two identical assemblies; one takes the burst entry point,
        # the other offers frame by frame. Accept/reject pattern, wire
        # timestamps, and delivery order must be identical.
        def run(burst: bool):
            sim = Simulator()
            delivered = []
            tm, ring, link = _fast_tm(
                sim, depth=2, receiver=lambda pkt: delivered.append((sim.now, pkt.seq))
            )
            packets = _mk_packets(5)
            if burst:
                rejected = tm.offer_burst(packets)
            else:
                rejected = [pkt for pkt in packets if not tm.offer(pkt)]
            sim.run(until=1.0)
            return {
                "rejected": [pkt.seq for pkt in rejected],
                "starts": [pkt.tx_start for pkt in packets if pkt not in rejected],
                "busy_until": link._busy_until,
                "frames_out": tm.frames_out,
                "tail_drops": ring.tail_drops,
                "delivered": delivered,
            }

        assert run(burst=True) == run(burst=False)

    def test_offer_burst_ring_refill_inside_one_burst(self):
        # A burst longer than the ring: per-frame capacity checks run
        # against the *evolving* virtual occupancy, so rejects appear
        # exactly where sequential offers would reject.
        sim = Simulator()
        tm, ring, link = _fast_tm(sim, depth=2)
        packets = _mk_packets(6)
        rejected = tm.offer_burst(packets)
        # Frame 0 starts immediately; 1 and 2 occupy the ring; 3+ drop.
        assert [pkt.seq for pkt in rejected] == [pkt.seq for pkt in packets[3:]]
        assert all(pkt.drop_reason is DropReason.QUEUE_FULL for pkt in rejected)
        # Only frame 0 has started at t=0; 1 and 2 wait in the ring.
        assert tm.frames_out == 1
        assert len(ring) == 2
        assert ring.tail_drops == 3
        sim.run(until=1.0)
        assert tm.frames_out == 3

    def test_on_sent_at_reports_monotonic_finish_times_in_order(self):
        # Buffer-return ordering: on_sent_at must fire in FIFO frame
        # order with back-to-back finish times — the same order and
        # times the process-mode drain's on_sent route observes.
        sim = Simulator()
        sent = []
        tm, ring, link = _fast_tm(sim, depth=8, on_sent_at=lambda pkt, t: sent.append((pkt.seq, t)))
        packets = _mk_packets(4)
        tm.offer_burst(packets)
        ser = link.serialization_time(packets[0])
        assert [seq for seq, _ in sent] == [pkt.seq for pkt in packets]
        finishes = [t for _, t in sent]
        assert finishes == sorted(finishes)
        assert finishes[0] == ser
        for prev, nxt in zip(finishes, finishes[1:]):
            assert nxt == prev + ser

    def test_lazy_buffer_return_matches_eventful_release_times(self):
        # release_at(finish) folds in at observation: the pool's free
        # count as a function of (observed) time must match what
        # per-event release() would produce.
        sim = Simulator()
        pool = BufferPool(sim, count=4, recycle_delay=2e-6)
        for _ in range(4):
            assert pool.try_allocate() is True
        assert pool.free == 0
        pool.release_at(1e-6)   # effective at ~3e-6
        pool.release_at(5e-6)   # effective at ~7e-6
        # Observe strictly after each maturation (1e-6 + 2e-6 need not
        # equal 3e-6 to the last ulp).
        sim.run(until=4e-6)
        assert pool.free == 1
        sim.run(until=8e-6)
        assert pool.free == 2
        assert pool.outstanding == 2
        # A matured return is allocatable again.
        assert pool.try_allocate() is True
        assert pool.free == 1
