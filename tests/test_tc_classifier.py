"""Tests for filter matching and the classifier."""

import pytest

from repro.errors import ValidationError
from repro.net import FiveTuple, PacketFactory
from repro.tc import Classifier, FilterSpec, MatchSpec


@pytest.fixture
def factory():
    return PacketFactory()


def packet(factory, src="10.0.0.1", dst="10.0.1.1", sport=1234, dport=80, proto=6,
           vf=0, app=""):
    return factory.make(1500, FiveTuple(src, dst, sport, dport, proto), 0.0,
                        app=app, vf_index=vf)


class TestMatchSpec:
    def test_wildcard_matches_everything(self, factory):
        assert MatchSpec.compile({}).matches(packet(factory))

    def test_src_match(self, factory):
        spec = MatchSpec.compile({"src": "10.0.0.1"})
        assert spec.matches(packet(factory, src="10.0.0.1"))
        assert not spec.matches(packet(factory, src="10.0.0.2"))

    def test_dport_exact(self, factory):
        spec = MatchSpec.compile({"dport": "80"})
        assert spec.matches(packet(factory, dport=80))
        assert not spec.matches(packet(factory, dport=81))

    def test_dport_range(self, factory):
        spec = MatchSpec.compile({"dport": "8000-8999"})
        assert spec.matches(packet(factory, dport=8500))
        assert not spec.matches(packet(factory, dport=9000))

    def test_proto_by_name(self, factory):
        spec = MatchSpec.compile({"proto": "udp"})
        assert spec.matches(packet(factory, proto=17))
        assert not spec.matches(packet(factory, proto=6))

    def test_proto_by_number(self, factory):
        spec = MatchSpec.compile({"proto": "6"})
        assert spec.matches(packet(factory, proto=6))

    def test_vf_match(self, factory):
        spec = MatchSpec.compile({"vf": "2"})
        assert spec.matches(packet(factory, vf=2))
        assert not spec.matches(packet(factory, vf=1))

    def test_app_match(self, factory):
        spec = MatchSpec.compile({"app": "KVS"})
        assert spec.matches(packet(factory, app="KVS"))
        assert not spec.matches(packet(factory, app="ML"))

    def test_conjunction(self, factory):
        spec = MatchSpec.compile({"src": "10.0.0.1", "dport": "80"})
        assert spec.matches(packet(factory, src="10.0.0.1", dport=80))
        assert not spec.matches(packet(factory, src="10.0.0.1", dport=81))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            MatchSpec.compile({"colour": "blue"})

    def test_bad_port_rejected(self):
        with pytest.raises(ValidationError):
            MatchSpec.compile({"dport": "99999"})

    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            MatchSpec.compile({"sport": "90-80"})


class TestClassifier:
    def test_first_match_wins_within_prio(self, factory):
        classifier = Classifier([
            FilterSpec(flowid="1:10", match={"src": "10.0.0.1"}, prio=1),
            FilterSpec(flowid="1:20", match={}, prio=1),
        ])
        assert classifier.classify(packet(factory, src="10.0.0.1")) == "1:10"
        assert classifier.classify(packet(factory, src="10.0.0.9")) == "1:20"

    def test_lower_prio_number_consulted_first(self, factory):
        classifier = Classifier([
            FilterSpec(flowid="1:20", match={}, prio=5),
            FilterSpec(flowid="1:10", match={}, prio=1),
        ])
        assert classifier.classify(packet(factory)) == "1:10"

    def test_no_match_returns_none(self, factory):
        classifier = Classifier([FilterSpec(flowid="1:10", match={"app": "X"}, prio=1)])
        assert classifier.classify(packet(factory, app="Y")) is None
        assert classifier.misses == 1

    def test_lookup_statistics(self, factory):
        classifier = Classifier([FilterSpec(flowid="1:10", match={}, prio=1)])
        for _ in range(5):
            classifier.classify(packet(factory))
        assert classifier.lookups == 5
        assert classifier.misses == 0

    def test_incremental_add(self, factory):
        classifier = Classifier()
        assert classifier.classify(packet(factory)) is None
        classifier.add(FilterSpec(flowid="1:10", match={}, prio=1))
        assert classifier.classify(packet(factory)) == "1:10"
