"""Tests for the host model: CPU ledgers, AIMD TCP, traffic drivers."""

import pytest

from repro.host import (
    AimdConnection,
    FixedRateSender,
    HostCpu,
    TcpApp,
    TcpParams,
    TcpRegistry,
    VirtualFunction,
    windows,
)
from repro.net import FiveTuple, Link, PacketFactory, PacketSink
from repro.sim import Simulator


class TestWindows:
    def test_piecewise_demand(self):
        demand = windows((0, 10, 5e6), (10, 20, 1e6))
        assert demand(5) == 5e6
        assert demand(15) == 1e6
        assert demand(25) == 0.0

    def test_boundaries_half_open(self):
        demand = windows((0, 10, 5e6))
        assert demand(0) == 5e6
        assert demand(10) == 0.0


class TestHostCpu:
    def test_core_utilization(self):
        sim = Simulator()
        cpu = HostCpu(sim, n_cores=2)
        sim.schedule(10.0, lambda: None)
        sim.run()
        cpu.core(0).charge("app:x", 5.0)
        assert cpu.core(0).utilization() == pytest.approx(0.5)
        assert cpu.saturated() == []

    def test_seconds(self):
        cpu = HostCpu(Simulator(), freq_hz=2e9)
        assert cpu.seconds(2e9) == pytest.approx(1.0)

    def test_out_of_range_core(self):
        cpu = HostCpu(Simulator(), n_cores=2)
        with pytest.raises(IndexError):
            cpu.core(5)


class TestFixedRateSender:
    def test_sends_at_configured_rate(self):
        sim = Simulator(seed=1)
        sent = []
        FixedRateSender(sim, "A", PacketFactory(), lambda p: sent.append(p) or True,
                        rate_bps=1e6, packet_size=1250)
        sim.run(until=1.0)
        # 1e6 bps / 10000 bits = 100 pps.
        assert len(sent) == pytest.approx(100, abs=2)

    def test_demand_gates_sending(self):
        sim = Simulator(seed=1)
        sent = []
        FixedRateSender(sim, "A", PacketFactory(), lambda p: sent.append(p) or True,
                        rate_bps=1e6, packet_size=1250,
                        demand=windows((0.5, 1.0, 1e6)))
        sim.run(until=1.0)
        times = [p.created_at for p in sent]
        assert min(times) >= 0.5
        assert len(sent) == pytest.approx(50, abs=3)

    def test_demand_caps_rate(self):
        sim = Simulator(seed=1)
        sent = []
        FixedRateSender(sim, "A", PacketFactory(), lambda p: sent.append(p) or True,
                        rate_bps=2e6, packet_size=1250,
                        demand=windows((0, 1.0, 0.5e6)))
        sim.run(until=1.0)
        assert len(sent) == pytest.approx(50, abs=3)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            FixedRateSender(Simulator(), "A", PacketFactory(), lambda p: True, rate_bps=0)

    def test_first_packet_lands_exactly_on_window_open(self):
        # Idle regression: a closed demand used to be polled on a
        # 10x-interval grid, so the first packet after a 0 -> rate
        # transition could land up to 10 intervals late (and off the
        # jitter-free emission grid). With windows() exposing its
        # boundaries the sender sleeps exactly until the window opens.
        sim = Simulator(seed=1)
        sent = []
        FixedRateSender(sim, "A", PacketFactory(), lambda p: sent.append(p) or True,
                        rate_bps=1e6, packet_size=1250,
                        demand=windows((15.0, 16.0, 1e6)))
        sim.run(until=16.0)
        assert sent[0].created_at == 15.0

    def test_sender_retires_when_demand_never_reopens(self):
        # After the last window closes there is no boundary to sleep
        # until: the sender process ends instead of polling forever.
        sim = Simulator(seed=1)
        sent = []
        FixedRateSender(sim, "A", PacketFactory(), lambda p: sent.append(p) or True,
                        rate_bps=1e6, packet_size=1250,
                        demand=windows((0.0, 0.5, 1e6)))
        final = sim.run()
        n = len(sent)
        assert n == pytest.approx(50, abs=3)
        # An open-ended run drains: no idle poll events trail the close.
        assert final < 0.6

    def test_windows_next_change_reports_boundaries(self):
        demand = windows((0, 10, 5e6), (10, 20, 1e6))
        assert demand.next_change(0.0) == 10.0
        assert demand.next_change(5.0) == 10.0
        assert demand.next_change(10.0) == 20.0
        assert demand.next_change(20.0) is None


class TestVirtualFunction:
    def test_stamps_vf_index_and_counts(self):
        sim = Simulator()
        accepted = []
        vf = VirtualFunction(sim, index=3, nic_submit=lambda p: accepted.append(p) or True)
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0)
        assert vf.send(packet)
        assert packet.vf_index == 3
        assert vf.sent == 1

    def test_rejection_counted(self):
        sim = Simulator()
        vf = VirtualFunction(sim, index=0, nic_submit=lambda p: False)
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0)
        assert not vf.send(packet)
        assert vf.rejected == 1
        assert packet.dropped


class TestAimdTcp:
    """End-to-end: a connection against a finite link converges and
    respects the ack clock."""

    def _testbed(self, link_bps=10e6, rtt=0.01):
        sim = Simulator(seed=5)
        registry = TcpRegistry(sim)
        sink = PacketSink(sim, rate_window=0.5, on_delivery=registry.handle_delivery)
        link = Link(sim, link_bps, receiver=sink.receive)
        # Senders push straight onto the link; an overfull wire just
        # queues (we rely on cwnd to bound in-flight).
        return sim, registry, sink, link

    def test_fills_a_clean_link(self):
        sim, registry, sink, link = self._testbed()
        factory = PacketFactory()
        conn = AimdConnection(
            sim, registry.new_id(), FiveTuple("a", "b", 1, 2), "A",
            factory, lambda p: link.send(p) or True,
            params=TcpParams(base_rtt=0.01),
        )
        registry.register(conn)
        sim.run(until=5.0)
        achieved = sink.rates["A"].mean_rate(3, 5)
        assert achieved > 0.7 * 10e6

    def test_in_flight_never_exceeds_cwnd(self):
        sim, registry, sink, link = self._testbed()
        factory = PacketFactory()
        conn = AimdConnection(
            sim, registry.new_id(), FiveTuple("a", "b", 1, 2), "A",
            factory, lambda p: link.send(p) or True,
            params=TcpParams(base_rtt=0.01),
        )
        registry.register(conn)
        violations = []

        def check():
            if conn.in_flight > conn.cwnd_segments + 1:
                violations.append((sim.now, conn.in_flight, conn.cwnd_segments))
            if sim.now < 3.0:
                sim.schedule(0.01, check)

        sim.schedule(0.1, check)
        sim.run(until=3.0)
        assert violations == []

    def test_loss_halves_window(self):
        # Exercise the congestion-control handler directly (the send
        # loop's idle-restart would otherwise reset the window).
        sim = Simulator(seed=5)
        registry = TcpRegistry(sim)
        factory = PacketFactory()
        conn = AimdConnection(
            sim, registry.new_id(), FiveTuple("a", "b", 1, 2), "A",
            factory, lambda p: True, params=TcpParams(base_rtt=0.01),
        )
        registry.register(conn)
        conn.cwnd = 100 * 1500
        conn.in_slow_start = False
        packet = factory.make(1500, conn.flow, 0.0, conn_id=conn.conn_id)
        conn.on_dropped(packet)
        assert conn.cwnd == pytest.approx(50 * 1500)
        assert not conn.in_slow_start

    def test_at_most_one_cut_per_rtt(self):
        sim = Simulator(seed=5)
        registry = TcpRegistry(sim)
        factory = PacketFactory()
        conn = AimdConnection(
            sim, registry.new_id(), FiveTuple("a", "b", 1, 2), "A",
            factory, lambda p: True, params=TcpParams(base_rtt=0.01),
        )
        conn.cwnd = 100 * 1500
        conn.in_slow_start = False
        conn.srtt = 0.1
        packet = factory.make(1500, conn.flow, 0.0, conn_id=conn.conn_id)
        # A burst of losses within one RTT → a single halving.
        for _ in range(4):
            conn.on_dropped(packet)
        assert conn.cwnd == pytest.approx(50 * 1500)
        assert conn.lost_packets == 4

    def test_registry_ignores_unknown_conn(self):
        sim = Simulator()
        registry = TcpRegistry(sim)
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0, conn_id=999)
        registry.handle_delivery(packet)  # must not raise
        registry.handle_drop(packet)

    def test_tcp_app_splits_demand(self):
        sim = Simulator(seed=5)
        registry = TcpRegistry(sim)
        factory = PacketFactory()
        app = TcpApp(sim, "A", registry, factory, lambda p: True,
                     n_connections=4, demand=windows((0, 10, 8e6)),
                     tcp_params=TcpParams(base_rtt=0.01))
        assert len(app.connections) == 4
        assert len(registry) == 4
        # Each connection sees a quarter of the demand.
        assert app.connections[0].demand(1.0) == pytest.approx(2e6)
