"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.token_bucket import MeterColor, TokenBucket
from repro.core.flow_cache import ExactMatchCache
from repro.net import FiveTuple, PacketFactory
from repro.nic import ReorderBuffer
from repro.sim import Simulator
from repro.stats.latency import percentile
from repro.stats.timeseries import RateSeries
from repro.tc.classifier import MatchSpec
from repro.units import parse_rate, parse_size

# ----------------------------------------------------------------------
# Token bucket invariants
# ----------------------------------------------------------------------

rates = st.floats(min_value=1e3, max_value=1e11, allow_nan=False)
bursts = st.floats(min_value=1e3, max_value=1e9, allow_nan=False)


class TestTokenBucketProperties:
    @given(rate=rates, burst=bursts, dts=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
    def test_tokens_never_exceed_capacity(self, rate, burst, dts):
        bucket = TokenBucket(rate, burst, start_full=False)
        t = 0.0
        for dt in dts:
            t += dt
            bucket.refill(t)
            assert 0.0 <= bucket.tokens <= bucket.capacity + 1e-6

    @given(rate=rates, burst=bursts,
           packets=st.lists(st.floats(min_value=1.0, max_value=1e6), max_size=50))
    def test_meter_conserves_tokens(self, rate, burst, packets):
        """Green packets consume exactly their size; red consume nothing."""
        bucket = TokenBucket(rate, burst)
        consumed = 0.0
        for size in packets:
            before = bucket.tokens
            color = bucket.meter(size)
            if color is MeterColor.GREEN:
                assert bucket.tokens == before - size
                consumed += size
            else:
                assert bucket.tokens == before
        assert consumed <= burst + 1e-6

    @settings(deadline=None)
    @given(rate=rates, burst=bursts, duration=st.floats(min_value=0.1, max_value=100.0))
    def test_long_run_grant_bounded_by_rate(self, rate, burst, duration):
        """Total green bits over [0,T] ≤ burst + rate×T (the defining
        token-bucket property)."""
        bucket = TokenBucket(rate, burst)
        # Packet size scales with the total grantable volume so the
        # drain loop stays bounded regardless of the sampled shape.
        packet_bits = max(1.0, (burst + rate * duration) / 500)
        granted = 0.0
        steps = 200
        for i in range(1, steps + 1):
            t = duration * i / steps
            bucket.refill(t)
            while bucket.meter(packet_bits) is MeterColor.GREEN:
                granted += packet_bits
        assert granted <= burst + rate * duration + packet_bits

    @given(keep=st.floats(min_value=0.0, max_value=1e6),
           tokens=st.floats(min_value=0.0, max_value=1e6))
    def test_withdraw_deposit_conserves(self, keep, tokens):
        bucket = TokenBucket(0.0, 1e6, start_full=False)
        bucket.tokens = tokens
        shadow = TokenBucket(0.0, 2e6, start_full=False)
        moved = bucket.withdraw_excess(keep)
        accepted = shadow.deposit(moved)
        assert accepted == moved  # shadow had room
        # The transfer is a move: no tokens created or destroyed.
        assert math.isclose(bucket.tokens + shadow.tokens, tokens, rel_tol=1e-9, abs_tol=1e-6)
        assert bucket.tokens <= max(keep, tokens)


# ----------------------------------------------------------------------
# Reorder buffer: any completion order releases in ticket order
# ----------------------------------------------------------------------

class TestReorderBufferProperties:
    @given(order=st.permutations(list(range(12))),
           drops=st.sets(st.integers(min_value=0, max_value=11)))
    def test_release_order_is_ticket_order(self, order, drops):
        factory = PacketFactory()
        released = []
        reorder = ReorderBuffer(lambda p: released.append(p.seq))
        tickets = [reorder.take_ticket() for _ in range(12)]
        packets = [factory.make(64, FiveTuple("a", "b", 1, 2), 0.0) for _ in range(12)]
        for index in order:
            if index in drops:
                reorder.complete(tickets[index], None)
            else:
                reorder.complete(tickets[index], packets[index])
        expected = [packets[i].seq for i in range(12) if i not in drops]
        assert released == expected
        assert reorder.parked == 0


# ----------------------------------------------------------------------
# LRU cache vs a reference model
# ----------------------------------------------------------------------

class TestCacheProperties:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["get", "put"]), st.integers(min_value=0, max_value=9)),
        max_size=60))
    def test_matches_reference_lru(self, ops):
        capacity = 4
        cache = ExactMatchCache(capacity=capacity)
        model = {}          # key -> value
        lru = []            # most recent last
        for op, key in ops:
            if op == "put":
                cache.put(key, key * 10)
                if key in model:
                    lru.remove(key)
                elif len(model) == capacity:
                    evicted = lru.pop(0)
                    del model[evicted]
                model[key] = key * 10
                lru.append(key)
            else:
                got = cache.get(key)
                if key in model:
                    assert got == model[key]
                    lru.remove(key)
                    lru.append(key)
                else:
                    assert got is None
        assert len(cache) == len(model)


# ----------------------------------------------------------------------
# Simulator determinism and ordering
# ----------------------------------------------------------------------

class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                           min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_seeded_streams_reproducible(self, seed):
        a = Simulator(seed=seed).random.stream("x").random()
        b = Simulator(seed=seed).random.stream("x").random()
        assert a == b


# ----------------------------------------------------------------------
# Parsers and stats
# ----------------------------------------------------------------------

class TestParserProperties:
    @given(value=st.integers(min_value=1, max_value=10**6),
           suffix=st.sampled_from(["bit", "kbit", "mbit", "gbit"]))
    def test_rate_parse_scales_correctly(self, value, suffix):
        factor = {"bit": 1, "kbit": 1e3, "mbit": 1e6, "gbit": 1e9}[suffix]
        assert parse_rate(f"{value}{suffix}") == value * factor

    @given(value=st.integers(min_value=1, max_value=10**6))
    def test_size_bare_bytes(self, value):
        assert parse_size(str(value)) == value


class TestStatsProperties:
    @given(samples=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100),
           p=st.floats(min_value=0.0, max_value=100.0))
    def test_percentile_within_range(self, samples, p):
        result = percentile(samples, p)
        assert min(samples) <= result <= max(samples)

    @given(samples=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=100))
    def test_percentile_monotone_in_p(self, samples):
        assert percentile(samples, 25) <= percentile(samples, 75)

    @given(events=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0),
                  st.floats(min_value=0.0, max_value=1e6)),
        max_size=60))
    def test_rate_series_total_conserved(self, events):
        series = RateSeries(window=1.0)
        for t, amount in events:
            series.add(t, amount)
        binned = sum(rate * series.window for _, rate in series.samples())
        assert math.isclose(binned, series.total, rel_tol=1e-9, abs_tol=1e-6)


class TestClassifierProperties:
    @given(sport=st.integers(min_value=0, max_value=65535),
           lo=st.integers(min_value=0, max_value=65535),
           hi=st.integers(min_value=0, max_value=65535))
    def test_port_range_match_is_interval(self, sport, lo, hi):
        assume(lo <= hi)
        spec = MatchSpec.compile({"sport": f"{lo}-{hi}"})
        packet = PacketFactory().make(64, FiveTuple("a", "b", sport, 80), 0.0)
        assert spec.matches(packet) == (lo <= sport <= hi)
