"""Equivalence smoke tests for the E-MEGAFLOW trace experiment.

The full-scale run (a million flows) lives in
``benchmarks/test_bench_megaflow.py``; these tests pin the *contract*
on a short horizon: every engine combination — batched vs process
generation, fluid lane on vs off, sketch vs exact stats — produces
identical traffic tallies, and the cheap combinations only cut kernel
events.
"""

import pytest

from repro.experiments import megaflow


DURATION = 0.01  # nominal seconds: ~9k packets, fast enough for tier 1


def tallies(result):
    return (
        result.flows,
        result.flows_completed,
        result.perf.packets,
        result.delivered,
        result.dropped,
        result.emc_hits,
        result.emc_misses,
        result.emc_evictions,
        result.emc_expirations,
    )


@pytest.fixture(scope="module")
def batched():
    return megaflow.run(duration=DURATION)


class TestEngineEquivalence:
    def test_process_engine_matches_batched(self, batched):
        process = megaflow.run(duration=DURATION, mode="process")
        assert tallies(process) == tallies(batched)
        # The whole point: same traffic, far fewer kernel events.
        assert batched.perf.events < 0.25 * process.perf.events
        assert batched.windows > 0
        assert process.windows == 0

    def test_fluid_off_matches_fluid_on(self, batched):
        off = megaflow.run(duration=DURATION, fluid=False)
        assert tallies(off) == tallies(batched)
        assert (off.absorbed, off.miss_absorbed) == (0, 0)
        assert batched.perf.events < off.perf.events

    def test_classify_replay_absorbs_first_packets(self, batched):
        """fluid_classify lets the lane absorb EMC-miss packets; with
        it off every flow's first packet spills to the slow path."""
        plain = megaflow.run(duration=DURATION, fluid_classify=False)
        assert tallies(plain) == tallies(batched)
        assert batched.miss_absorbed > 0
        assert plain.miss_absorbed == 0
        assert batched.perf.events < plain.perf.events

    def test_exact_stats_agree_with_sketch(self, batched):
        exact = megaflow.run(duration=DURATION, stats_mode="exact")
        assert tallies(exact) == tallies(batched)
        assert exact.sketch_bins == 0
        assert batched.sketch_bins > 0
        assert batched.delay.count == exact.delay.count
        assert batched.delay.mean == pytest.approx(exact.delay.mean)
        assert batched.delay.maximum == pytest.approx(exact.delay.maximum)
        assert batched.delay.p50 == pytest.approx(exact.delay.p50, rel=0.01)
        assert batched.delay.p99 == pytest.approx(exact.delay.p99, rel=0.02)


class TestResultShape:
    def test_result_fields_and_extra(self, batched):
        assert batched.flows > 1_000
        assert batched.delivered + batched.dropped <= batched.perf.packets
        assert batched.emc_hits + batched.emc_misses == batched.perf.packets
        extra = batched.extra()
        for key in (
            "flows", "delivered", "windows", "miss_absorbed",
            "emc_evictions", "delay_p99_nominal", "sketch_bins",
            "peak_rss_kib",
        ):
            assert key in extra
        assert batched.to_table().rows

    def test_registered_as_campaign_spec(self):
        from repro.experiments.campaign.spec import REGISTRY

        assert "megaflow" in REGISTRY
