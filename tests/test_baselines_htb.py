"""Tests for the HTB and PRIO qdisc algorithms (without the kernel
runtime — pure dequeue semantics)."""

import pytest

from repro.baselines import HtbClass, HtbQdisc, PrioQdisc
from repro.errors import PolicyError
from repro.net import FiveTuple, PacketFactory
from repro.tc import Classifier, FilterSpec
from repro.tc.parser import parse_script


@pytest.fixture
def factory():
    return PacketFactory()


def packet(factory, app="A", size=1250):
    return factory.make(size, FiveTuple("10.0.0.1", "10.0.1.1", 1, 2), 0.0, app=app)


def drain(qdisc, now, rate_bps, duration, size_bits=10160.0):
    """Dequeue at a fixed wire rate for *duration*; returns packets per
    leaf class id."""
    out = {}
    t = now
    end = now + duration
    while t < end:
        pkt = qdisc.dequeue(t)
        if pkt is None:
            ready = qdisc.next_ready_time(t)
            if ready is None:
                break
            t = max(ready, t + 1e-6)
            continue
        out[pkt.app] = out.get(pkt.app, 0) + 1
        t += size_bits / rate_bps
    return out


class TestPrio:
    def test_strict_priority_order(self, factory):
        classifier = Classifier([
            FilterSpec(flowid="1:1", match={"app": "hi"}),
            FilterSpec(flowid="1:2", match={"app": "lo"}),
        ])
        prio = PrioQdisc(bands=3, classifier=classifier)
        lo = packet(factory, "lo")
        hi = packet(factory, "hi")
        prio.enqueue(lo, 0.0)
        prio.enqueue(hi, 0.0)
        assert prio.dequeue(0.0) is hi
        assert prio.dequeue(0.0) is lo

    def test_unmatched_goes_to_default_band(self, factory):
        prio = PrioQdisc(bands=3)
        assert prio.band_for(packet(factory, "anything")) == 2

    def test_band_queue_limit(self, factory):
        prio = PrioQdisc(bands=1, queue_limit=1)
        assert prio.enqueue(packet(factory), 0.0)
        assert not prio.enqueue(packet(factory), 0.0)

    def test_never_throttles(self, factory):
        prio = PrioQdisc(bands=2)
        assert prio.next_ready_time(1.0) is None
        prio.enqueue(packet(factory), 1.0)
        assert prio.next_ready_time(1.0) == 1.0

    def test_needs_a_band(self):
        with pytest.raises(ValueError):
            PrioQdisc(bands=0)


class TestHtbStructure:
    def test_rate_above_ceil_rejected(self):
        with pytest.raises(PolicyError):
            HtbClass("1:1", rate_bps=2e6, ceil_bps=1e6)

    def test_from_policy(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: htb default 10\n"
            "fv class add dev eth0 parent 1: classid 1:1 htb rate 10mbit ceil 10mbit\n"
            "fv class add dev eth0 parent 1:1 classid 1:10 htb rate 5mbit ceil 10mbit\n"
            "fv filter add dev eth0 parent 1: match app=A flowid 1:10\n"
        )
        qdisc = HtbQdisc.from_policy(policy)
        assert qdisc.default_class == "1:10"
        assert qdisc.root.classid == "1:1"

    def test_quantum_capped_at_kernel_warning_threshold(self):
        big = HtbClass("1:1", rate_bps=10e9)
        assert big.quantum == 200_000 * 8.0


class TestHtbScheduling:
    def _two_class_qdisc(self, rate_a=6e6, rate_b=3e6, ceil_b=9e6):
        root = HtbClass("1:1", rate_bps=9e6, ceil_bps=9e6)
        HtbClass("1:10", rate_bps=rate_a, ceil_bps=9e6, parent=root)
        HtbClass("1:20", rate_bps=rate_b, ceil_bps=max(rate_b, ceil_b), parent=root)
        classifier = Classifier([
            FilterSpec(flowid="1:10", match={"app": "A"}),
            FilterSpec(flowid="1:20", match={"app": "B"}),
        ])
        # Deep queues so classes stay backlogged for the whole drain
        # (the assertions are about scheduling, not queue exhaustion).
        return HtbQdisc(root, classifier, queue_limit=10_000)

    def test_assured_rates_respected(self, factory):
        qdisc = self._two_class_qdisc()
        t = 0.0
        # Keep both classes backlogged and drain at wire speed 9 Mbit.
        for _ in range(5000):
            qdisc.enqueue(packet(factory, "A"), t)
            qdisc.enqueue(packet(factory, "B"), t)
        out = drain(qdisc, 0.0, rate_bps=9e6, duration=5.0)
        total = out["A"] + out["B"]
        # A should get roughly its 2/3 assured share.
        assert out["A"] / total == pytest.approx(2 / 3, rel=0.15)

    def test_borrowing_when_sibling_idle(self, factory):
        qdisc = self._two_class_qdisc()
        for _ in range(5000):
            qdisc.enqueue(packet(factory, "B"), 0.0)
        out = drain(qdisc, 0.0, rate_bps=9e6, duration=3.0)
        # B alone exceeds its 3 Mbit assured rate by borrowing to ceil.
        achieved = out["B"] * 10160 / 3.0
        assert achieved > 6e6

    def test_ceiling_blocks_borrowing(self, factory):
        qdisc = self._two_class_qdisc(ceil_b=4e6)
        for _ in range(5000):
            qdisc.enqueue(packet(factory, "B"), 0.0)
        out = drain(qdisc, 0.0, rate_bps=9e6, duration=3.0)
        achieved = out.get("B", 0) * 10160 / 3.0
        assert achieved == pytest.approx(4e6, rel=0.2)

    def test_refill_inflation_overshoots(self, factory):
        """The kernel-artifact knob: inflated refills let classes beat
        their ceiling — the Fig. 3 overshoot mechanism."""
        qdisc = self._two_class_qdisc(ceil_b=6e6)
        qdisc.refill_inflation = 1.25
        for _ in range(8000):
            qdisc.enqueue(packet(factory, "B"), 0.0)
        out = drain(qdisc, 0.0, rate_bps=20e6, duration=3.0)
        achieved = out["B"] * 10160 / 3.0
        assert achieved > 1.1 * 6e6

    def test_priority_not_honoured_between_siblings(self, factory):
        """What the paper observed (Fig. 3, third artifact): equal
        rates → equal DRR shares regardless of any priority intent."""
        qdisc = self._two_class_qdisc(rate_a=4.5e6, rate_b=4.5e6)
        for _ in range(5000):
            qdisc.enqueue(packet(factory, "A"), 0.0)
            qdisc.enqueue(packet(factory, "B"), 0.0)
        out = drain(qdisc, 0.0, rate_bps=9e6, duration=3.0)
        assert out["A"] == pytest.approx(out["B"], rel=0.1)

    def test_unclassified_dropped_without_default(self, factory):
        qdisc = self._two_class_qdisc()
        assert not qdisc.enqueue(packet(factory, "mystery"), 0.0)
        assert qdisc.unclassified_drops == 1

    def test_backlog_counts(self, factory):
        qdisc = self._two_class_qdisc()
        qdisc.enqueue(packet(factory, "A"), 0.0)
        qdisc.enqueue(packet(factory, "B"), 0.0)
        assert qdisc.backlog == 2

    def test_next_ready_time_none_when_empty(self):
        qdisc = self._two_class_qdisc()
        assert qdisc.next_ready_time(0.0) is None


class TestLeafQueueByteAccounting:
    """backlog_bytes is an O(1) incremental counter — it must track
    the recomputed sum through any push/pop/drop sequence."""

    def _recount(self, queue):
        return sum(p.size for p in queue._queue)

    def test_counter_tracks_sum_through_mixed_ops(self, factory):
        from repro.baselines.qdisc_base import LeafQueue

        queue = LeafQueue(limit_packets=4)
        sizes = [64, 1500, 700, 1518, 300, 900]
        for size in sizes[:4]:
            assert queue.push(packet(factory, size=size))
            assert queue.backlog_bytes == self._recount(queue)
        # Tail drops (queue full) must not touch the byte counter.
        assert not queue.push(packet(factory, size=sizes[4]))
        assert queue.tail_drops == 1
        assert queue.backlog_bytes == self._recount(queue) == 64 + 1500 + 700 + 1518
        queue.pop()
        queue.pop()
        assert queue.backlog_bytes == self._recount(queue) == 700 + 1518
        assert queue.push(packet(factory, size=sizes[5]))
        assert queue.backlog_bytes == self._recount(queue) == 700 + 1518 + 900
        while queue.pop() is not None:
            assert queue.backlog_bytes == self._recount(queue)
        assert queue.backlog_bytes == 0
        assert queue.pop() is None  # empty pop is a no-op
        assert queue.backlog_bytes == 0

    def test_byte_high_water_mark(self, factory):
        from repro.baselines.qdisc_base import LeafQueue

        queue = LeafQueue(limit_packets=10)
        queue.push(packet(factory, size=1000))
        queue.push(packet(factory, size=500))
        queue.pop()
        queue.pop()
        queue.push(packet(factory, size=200))
        assert queue.max_backlog_bytes == 1500
        assert queue.max_backlog == 2
