"""Fast smoke tests of the experiment harness.

The full paper-scale runs live in ``benchmarks/``; these are small
versions that verify the harness plumbing end to end (policy → scaled
testbed → senders → result collection) in seconds, plus the result
container logic.
"""

import pytest

from repro.experiments import (
    ScaledSetup,
    TimelineResult,
    fair_policy,
    motivation_policy,
    run_flowvalve_timeline,
    weighted_policy,
)
from repro.experiments import ablations
from repro.experiments.fig13 import PAPER_FIG13, _measure_flowvalve
from repro.experiments.workloads import fair_queueing_demands, motivation_demands
from repro.host.traffic import windows
from repro.tc.validate import validate_policy


class TestPolicies:
    def test_motivation_policy_validates(self):
        validate_policy(motivation_policy(10e9))

    def test_fair_policy_validates(self):
        for n in (2, 4, 8):
            validate_policy(fair_policy(40e9, n))

    def test_weighted_policy_validates(self):
        validate_policy(weighted_policy(40e9))

    def test_fair_policy_borrow_covers_all_other_leaves(self):
        policy = fair_policy(40e9, 4)
        leaves = [c for c in policy.classes if c.borrow]
        assert len(leaves) == 4
        for leaf in leaves:
            assert len(leaf.borrow) == 3
            assert leaf.classid not in leaf.borrow


class TestWorkloads:
    def test_motivation_timeline_phases(self):
        demands = motivation_demands(10e9)
        assert demands["NC"](5) > 10e9  # backlogged
        assert demands["NC"](20) == pytest.approx(2e9)
        assert demands["ML"](35) == 0.0
        assert demands["WS"](55) > 10e9

    def test_fair_demands_staggered(self):
        demands = fair_queueing_demands(4, join_every=10.0, duration=60.0)
        assert demands["App0"](5) > 0
        assert demands["App3"](5) == 0.0
        assert demands["App3"](35) > 0


class TestScaledSetup:
    def test_scaled_quantities(self):
        setup = ScaledSetup(nominal_link_bps=10e9, scale=100.0, wire_bps=40e9)
        assert setup.link_bps == 100e6
        assert setup.scaled_wire_bps == 400e6
        assert setup.sched_params().update_interval == pytest.approx(0.1)

    def test_ring_sized_to_epochs(self):
        setup = ScaledSetup(nominal_link_bps=10e9, scale=100.0)
        cfg = setup.nic_config()
        pps = setup.link_bps / (1520 * 8)
        assert cfg.tx_ring_depth == pytest.approx(2 * 0.1 * pps, abs=2)


class TestTimelineResult:
    def _result(self):
        r = TimelineResult(title="t", bin_seconds=5.0)
        r.series["A"] = [(5.0, 1e9), (10.0, 2e9)]
        r.series["B"] = [(5.0, 3e9), (10.0, 4e9)]
        return r

    def test_mean_rate(self):
        r = self._result()
        assert r.mean_rate("A", 0, 10) == pytest.approx(1.5e9)
        assert r.mean_rate("A", 5, 10) == pytest.approx(2e9)
        assert r.mean_rate("missing", 0, 10) == 0.0

    def test_total_rate(self):
        r = self._result()
        assert r.total_rate(0, 5) == pytest.approx(4e9)

    def test_table_rendering(self):
        text = self._result().to_table().render()
        assert "0-5s" in text
        assert "4.00G" in text  # totals column


class TestMiniRuns:
    """Actually run (small) experiments through the full stack."""

    def test_flowvalve_weighted_mini(self):
        setup = ScaledSetup(nominal_link_bps=10e9, scale=500.0, wire_bps=10e9, seed=3)
        policy = motivation_policy(setup.link_bps)
        demands = {
            "NC": windows((0, 10, 1e12)),
            "WS": windows((0, 10, 1e12)),
            "KVS": windows((0, 10, 1e12)),
            "ML": windows((0, 10, 1e12)),
        }
        result = run_flowvalve_timeline(policy, demands, setup, duration=10.0,
                                        bin_seconds=2.0, title="mini")
        # NC has strict priority over everything: it takes ~the link.
        assert result.mean_rate("NC", 4, 10) > 0.85 * 10e9
        assert result.total_rate(4, 10) < 1.05 * 10e9

    def test_fig13_single_cell(self):
        mpps = _measure_flowvalve(1518, window=0.001, seed=1)
        assert mpps == pytest.approx(3.25, rel=0.08)

    def test_interval_sensitivity_mini(self):
        # Epoch-granted refill distorts short-window rates once ΔT
        # reaches the measurement window (1.0 s vs the 0.5 s windows);
        # the continuous (hardware-meter) mode never does.
        result = ablations.interval_sensitivity(intervals=[0.05, 1.0], duration=10.0)
        errors = result.overshoot
        assert errors[1.0]["epoch"] > 0.5
        assert errors[1.0]["epoch"] > errors[0.05]["epoch"]
        assert errors[0.05]["continuous"] < 0.2
        assert "ΔT" in result.to_table().render()

    def test_paper_reference_values_present(self):
        assert PAPER_FIG13[64]["flowvalve"] == 19.69
        assert PAPER_FIG13[1518]["dpdk"] == 2.25


class TestTcpRealismVariants:
    def test_nc_dominant_regime(self):
        """With every app (including NC) backlogged, NC's strict
        priority takes the whole link — the other regime of the
        TCP-realism experiment."""
        from repro.experiments import tcp_realism

        result = tcp_realism.run(regime="backlogged", duration=15.0)
        assert result.achieved["NC"] > 0.8 * result.total_target
        assert result.total_achieved < 1.05 * result.total_target


class TestUnifiedApi:
    """The run(setup, **params) -> Result contract and its shims."""

    def test_legacy_shim_warns_and_returns_legacy_shape(self):
        from repro.experiments.ablations import run_update_interval_sensitivity

        with pytest.warns(DeprecationWarning, match="run_update_interval_sensitivity"):
            errors = run_update_interval_sensitivity(intervals=[0.5], duration=5.0)
        # The shim keeps the historical bare-dict return shape.
        assert set(errors) == {0.5}
        assert set(errors[0.5]) == {"epoch", "continuous"}

    def test_unified_results_expose_to_table(self):
        result = ablations.interval_sensitivity(intervals=[0.5], duration=5.0)
        table = result.to_table()
        assert hasattr(table, "render") and "0.5" in table.render()

    def test_setup_threads_seed(self):
        from repro.experiments import fig13

        result = fig13.run(
            ScaledSetup(nominal_link_bps=40e9, scale=1.0, wire_bps=40e9, seed=5),
            sizes=[1518], window=0.001,
        )
        assert [row.size for row in result.rows] == [1518]
        assert result.rows[0].flowvalve_mpps > 0

    def test_for_link_constructor(self):
        setup = ScaledSetup.for_link(25e9, scale=50.0, seed=3)
        assert setup.nominal_link_bps == 25e9
        assert setup.wire_bps == 25e9
        assert setup.scale == 50.0
        assert setup.seed == 3
