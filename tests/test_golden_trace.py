"""Golden-trace regression tests: the determinism contract.

The hot-path optimizations (PR 1) must not change *behaviour*: for a
fixed seed, the sequence of per-packet verdicts and drops has to stay
byte-identical to what the unoptimized seed code produced. These tests
replay two fixed workloads and compare a SHA-256 digest of the full
observable trace against digests recorded from the seed tree
(``tests/data/golden_trace.json``).

Two traces are pinned:

* **software** — FlowValve's software mode (`FlowValve.process`) over a
  deterministic two-tenant schedule with phases that exercise weighted
  sharing, specialized tail drop, and shadow-bucket borrowing;
* **nic** — the full DES pipeline (workers, reorder, Tx ring, wire) on
  the Fig. 11(a) motivation policy with backlogged senders, capturing
  the interleaved delivery/drop order seen at the edges of the NIC.

Regenerate (only when a change is *supposed* to alter behaviour) with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core import FlowValve
from repro.core.sched_tree import SchedulingParams
from repro.experiments.base import ScaledSetup, _scale_demand
from repro.experiments.policies import motivation_policy
from repro.experiments.workloads import motivation_demands
from repro.core.frontend import FlowValveFrontend
from repro.host import FixedRateSender
from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.nic import NicPipeline
from repro.sim import Simulator

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

SOFTWARE_POLICY = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 100mbit ceil 100mbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
fv filter add dev eth0 parent 1: match app=tenantA flowid 1:10
fv filter add dev eth0 parent 1: match app=tenantB flowid 1:20
"""


def run_software_trace() -> dict:
    """Two tenants, three phases (both on / A idle, B borrows / A back).

    Tenant B offers 60 Mbit against a 33 Mbit share, so its excess is
    red: dropped while A is active (specialized tail drop), forwarded
    on borrowed tokens while A is idle and its shadow fills.
    """
    valve = FlowValve.from_script(
        SOFTWARE_POLICY,
        link_rate_bps=100e6,
        params=SchedulingParams(update_interval=0.01, expire_after=0.05),
    )
    factory = PacketFactory()
    flows = {
        "tenantA": FiveTuple("10.0.0.1", "10.0.1.1", 40001, 5001),
        "tenantB": FiveTuple("10.0.0.2", "10.0.1.1", 40002, 5001),
    }
    size = 1500
    wire_bits = (size + 20) * 8
    intervals = {"tenantA": wire_bits / 30e6, "tenantB": wire_bits / 60e6}
    records = []
    clock = {app: 0.0 for app in flows}
    for _ in range(30000):
        app = min(clock, key=lambda a: (clock[a], a))
        t = clock[app]
        if t >= 1.8:
            break
        clock[app] = t + intervals[app]
        if app == "tenantA" and 0.6 <= t < 1.2:
            continue  # tenant A idle in the middle phase
        packet = factory.make(size, flows[app], t, app=app)
        verdict = valve.process(packet, t)
        records.append(f"{packet.seq}:{verdict.value}")
    stats = valve.stats
    return {
        "digest": hashlib.sha256("|".join(records).encode()).hexdigest(),
        "decisions": stats.decisions,
        "forwarded": stats.forwarded,
        "dropped": stats.dropped,
        "borrowed": stats.forwarded_on_borrowed_tokens,
        "borrow_matrix": sorted(
            f"{b}->{l}={n}" for (b, l), n in stats.borrow_matrix.items()
        ),
    }


def run_nic_trace() -> dict:
    """Fig. 11(a) motivation workload on the full NIC pipeline, shrunk
    to a test-sized duration that still covers the NC-solo phase and
    the four-way contention phase (drops + update races)."""
    setup = ScaledSetup(nominal_link_bps=10e9, scale=2000.0, wire_bps=10e9)
    duration = 18.0
    sim = Simulator(seed=setup.seed)
    policy = motivation_policy(setup.link_bps)
    frontend = FlowValveFrontend(
        policy, link_rate_bps=setup.link_bps, params=setup.sched_params()
    )
    records = []
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)

    def receive(packet):
        records.append(f"rx:{packet.seq}")
        sink.receive(packet)

    def on_drop(packet):
        records.append(f"drop:{packet.seq}:{packet.drop_reason.value}")

    nic = NicPipeline.with_flowvalve(
        sim, setup.nic_config(), frontend, receiver=receive, on_drop=on_drop
    )
    factory = PacketFactory()
    demands = motivation_demands(setup.nominal_link_bps)
    for index, (app, demand) in enumerate(sorted(demands.items())):
        FixedRateSender(
            sim,
            app,
            factory,
            nic.submit,
            rate_bps=setup.sender_rate(),
            packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index,
            jitter=0.1,
            rng=sim.random.stream(app),
        )
    sim.run(until=duration)
    return {
        "digest": hashlib.sha256("|".join(records).encode()).hexdigest(),
        "submitted": nic.submitted,
        "forwarded": nic.forwarded,
        "dropped": nic.dropped,
        "delivered": sink.total_packets,
        "final_time": sim.now,
    }


def _check(kind: str, result: dict) -> None:
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        golden = {}
        if GOLDEN_PATH.exists():
            golden = json.loads(GOLDEN_PATH.read_text())
        golden[kind] = result
        GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
        return
    golden = json.loads(GOLDEN_PATH.read_text())[kind]
    assert result == golden, (
        f"{kind} trace diverged from the seed-recorded golden trace.\n"
        f"got:    {result}\ngolden: {golden}\n"
        "If this change is *intended* to alter scheduling behaviour, "
        "regenerate with REGEN_GOLDEN=1 and explain why in the PR."
    )


def test_software_mode_golden_trace():
    _check("software", run_software_trace())


def test_nic_pipeline_golden_trace():
    _check("nic", run_nic_trace())
