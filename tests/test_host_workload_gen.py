"""Tests for the synthetic data-center workload generator."""

import pytest

from repro.host import TraceWorkload, WORKLOAD_PRESETS, WorkloadProfile
from repro.net import PacketFactory
from repro.sim import Simulator


def run_workload(profile, offered=1e6, duration=20.0, seed=2):
    sim = Simulator(seed=seed)
    sent = []
    workload = TraceWorkload(
        sim, "app", profile, offered_load_bps=offered,
        submit=lambda p: sent.append(p) or True,
        factory=PacketFactory(), duration=duration,
    )
    sim.run(until=duration * 1.5)
    return workload, sent


class TestPresets:
    def test_three_motivating_app_types(self):
        assert set(WORKLOAD_PRESETS) == {"kvs", "ml", "web"}

    def test_kvs_flows_small_ml_flows_huge(self):
        assert WORKLOAD_PRESETS["kvs"].max_flow_bytes < WORKLOAD_PRESETS["ml"].min_flow_bytes


class TestFlowSizes:
    def test_samples_within_bounds(self):
        sim = Simulator(seed=1)
        workload = TraceWorkload(
            sim, "a", WORKLOAD_PRESETS["web"], offered_load_bps=1e6,
            submit=lambda p: True, factory=PacketFactory(), duration=0.0,
        )
        profile = workload.profile
        for _ in range(2000):
            size = workload.sample_flow_size()
            assert profile.min_flow_bytes <= size <= profile.max_flow_bytes

    def test_heavy_tail_present(self):
        """A bounded Pareto with alpha 1.2 must produce flows far above
        the median — the elephant/mice mix."""
        sim = Simulator(seed=1)
        workload = TraceWorkload(
            sim, "a", WORKLOAD_PRESETS["web"], offered_load_bps=1e6,
            submit=lambda p: True, factory=PacketFactory(), duration=0.0,
        )
        sizes = sorted(workload.sample_flow_size() for _ in range(5000))
        median = sizes[len(sizes) // 2]
        assert max(sizes) > 50 * median

    def test_sampled_mean_matches_pareto_mean(self):
        sim = Simulator(seed=3)
        workload = TraceWorkload(
            sim, "a", WORKLOAD_PRESETS["kvs"], offered_load_bps=1e6,
            submit=lambda p: True, factory=PacketFactory(), duration=0.0,
        )
        sizes = [workload.sample_flow_size() for _ in range(20_000)]
        assert sum(sizes) / len(sizes) == pytest.approx(
            workload._pareto_mean(), rel=0.15
        )


class TestOfferedLoad:
    def test_long_run_rate_matches_target(self):
        workload, sent = run_workload(WORKLOAD_PRESETS["kvs"], offered=1e6, duration=30.0)
        achieved = workload.bytes_offered * 8 / 30.0
        assert achieved == pytest.approx(1e6, rel=0.25)

    def test_flows_complete(self):
        workload, _ = run_workload(WORKLOAD_PRESETS["kvs"], duration=10.0)
        assert workload.flows_started > 0
        assert workload.flows_completed == workload.flows_started

    def test_no_new_flows_after_duration(self):
        workload, sent = run_workload(WORKLOAD_PRESETS["kvs"], duration=5.0)
        last_start = max(p.created_at for p in sent)
        # Packets may trail past the cut-off (in-flight flows finish),
        # but flow *starts* don't: the very last packets belong to
        # flows started before 5.0 and paced at the flow rate limit.
        profile = WORKLOAD_PRESETS["kvs"]
        max_trail = profile.max_flow_bytes * 8 / profile.flow_rate_limit_bps
        assert last_start <= 5.0 + max_trail

    def test_packets_carry_app_and_vf(self):
        workload, sent = run_workload(WORKLOAD_PRESETS["kvs"], duration=2.0)
        assert all(p.app == "app" for p in sent)

    def test_rejects_zero_load(self):
        with pytest.raises(ValueError):
            TraceWorkload(Simulator(), "a", WORKLOAD_PRESETS["kvs"], 0.0,
                          lambda p: True, PacketFactory())

    def test_distinct_flows_generated(self):
        workload, sent = run_workload(WORKLOAD_PRESETS["kvs"], duration=10.0)
        flows = {p.flow for p in sent}
        assert len(flows) == workload.flows_started

    def test_deterministic_given_seed(self):
        w1, sent1 = run_workload(WORKLOAD_PRESETS["web"], duration=5.0, seed=9)
        w2, sent2 = run_workload(WORKLOAD_PRESETS["web"], duration=5.0, seed=9)
        assert [p.size for p in sent1] == [p.size for p in sent2]


def run_mode(profile, mode, offered=1e6, duration=20.0, seed=2, window=None):
    sim = Simulator(seed=seed)
    sent = []
    workload = TraceWorkload(
        sim, "app", profile, offered_load_bps=offered,
        submit=lambda p: sent.append(p) or True,
        factory=PacketFactory(), duration=duration,
        mode=mode, window=window,
    )
    sim.run(until=duration * 1.5)
    return workload, sent


def packet_stream(sent):
    return [(p.created_at, p.size, p.flow) for p in sent]


class TestBatchedEngine:
    """The horizon-windowed generator must be bit-identical to the
    process-per-flow engine — same RNG stream, same draw order, same
    emission instants (DESIGN.md §12)."""

    @pytest.mark.parametrize("preset", ["kvs", "ml", "web"])
    def test_bit_identical_to_process_engine(self, preset):
        wp, sent_p = run_mode(WORKLOAD_PRESETS[preset], "process", duration=10.0)
        wb, sent_b = run_mode(WORKLOAD_PRESETS[preset], "batched", duration=10.0)
        assert packet_stream(sent_b) == packet_stream(sent_p)
        assert wb.flows_started == wp.flows_started
        assert wb.flows_completed == wp.flows_completed
        assert wb.bytes_offered == wp.bytes_offered
        assert wb.windows_generated > 0
        assert wp.windows_generated == 0

    def test_explicit_window_does_not_change_the_stream(self):
        _, sent_ref = run_mode(WORKLOAD_PRESETS["kvs"], "batched", duration=8.0)
        for window in (0.25, 1.0, 100.0):
            _, sent = run_mode(
                WORKLOAD_PRESETS["kvs"], "batched", duration=8.0, window=window
            )
            assert packet_stream(sent) == packet_stream(sent_ref), window

    def test_mid_run_counter_reads_are_harmless(self):
        """The lazy ledgers fold on observation; reading the counters
        mid-run must not perturb the stream or the final tallies."""
        sim = Simulator(seed=2)
        sent = []
        workload = TraceWorkload(
            sim, "app", WORKLOAD_PRESETS["kvs"], offered_load_bps=1e6,
            submit=lambda p: sent.append(p) or True,
            factory=PacketFactory(), duration=10.0, mode="batched",
        )
        observed = []
        sim.run(until=4.0)
        observed.append(workload.flows_started)
        sim.run(until=7.0)
        observed.append(workload.flows_started)
        sim.run(until=15.0)
        ref, sent_ref = run_mode(WORKLOAD_PRESETS["kvs"], "batched", duration=10.0)
        assert packet_stream(sent) == packet_stream(sent_ref)
        assert workload.flows_started == ref.flows_started
        assert workload.bytes_offered == ref.bytes_offered
        # Counters were monotone non-decreasing along the way.
        assert observed == sorted(observed)
        assert observed[-1] <= workload.flows_started

    def test_zero_duration_draws_nothing(self):
        workload, sent = run_mode(WORKLOAD_PRESETS["kvs"], "batched", duration=0.0)
        assert sent == []
        assert workload.flows_started == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            TraceWorkload(
                Simulator(), "a", WORKLOAD_PRESETS["kvs"], 1e6,
                lambda p: True, PacketFactory(), mode="streamed",
            )

    def test_many_distinct_flows_without_processes(self):
        """The flow-count stressor: tens of thousands of flows from a
        handful of window events, all distinct."""
        workload, sent = run_mode(
            WORKLOAD_PRESETS["kvs"], "batched", offered=2e7, duration=30.0
        )
        flows = {p.flow for p in sent}
        assert len(flows) == workload.flows_started > 10_000
