"""Tests for the structured tracing sink."""

import json
from collections import deque

from repro.sim import NullTracer, Simulator, Tracer


class TestTracer:
    def test_records_stored_in_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "nic.tx", "send", size=64)
        tracer.emit(2.0, "nic.tx", "drop", reason="red")
        assert [r.kind for r in tracer.records] == ["send", "drop"]
        assert tracer.records[0].data == {"size": 64}

    def test_select_filters_by_source_and_kind(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "x")
        tracer.emit(2.0, "b", "x")
        tracer.emit(3.0, "a", "y")
        assert len(list(tracer.select(source="a"))) == 2
        assert len(list(tracer.select(kind="x"))) == 2
        assert len(list(tracer.select(source="a", kind="y"))) == 1

    def test_predicate_drops_unwanted(self):
        tracer = Tracer(predicate=lambda source, kind: kind == "drop")
        tracer.emit(1.0, "nic", "send")
        tracer.emit(2.0, "nic", "drop")
        assert len(tracer.records) == 1
        assert not tracer.wants("nic", "send")

    def test_limit_keeps_newest(self):
        tracer = Tracer(limit=3)
        for i in range(10):
            tracer.emit(float(i), "s", "k", i=i)
        assert len(tracer.records) == 3
        assert tracer.records[-1].data["i"] == 9
        assert tracer.records[0].data["i"] == 7

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "s", "k")
        tracer.clear()
        assert tracer.records == []

    def test_enabled_flag(self):
        assert Tracer().enabled
        assert not NullTracer().enabled

    def test_limit_store_is_bounded_deque(self):
        # Regression: trimming used to run `del records[:n]` on every
        # emit past the cap — O(limit) per record. The store must be a
        # maxlen deque so eviction is O(1).
        tracer = Tracer(limit=5)
        assert isinstance(tracer._records, deque)
        assert tracer._records.maxlen == 5
        for i in range(100_000):
            tracer.emit(float(i), "s", "k", i=i)
        assert len(tracer) == 5
        assert [r.data["i"] for r in tracer.records] == list(range(99_995, 100_000))

    def test_unlimited_store_has_no_maxlen(self):
        assert Tracer()._records.maxlen is None

    def test_len_and_select_after_eviction(self):
        tracer = Tracer(limit=2)
        tracer.emit(1.0, "a", "x")
        tracer.emit(2.0, "b", "y")
        tracer.emit(3.0, "a", "x")
        assert len(tracer) == 2
        assert [r.time for r in tracer.select(source="a")] == [3.0]

    def test_to_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(0.5, "nic.pipeline", "drop", reason="sched_red", size=1500)
        tracer.emit(1.0, "core.sched", "rate_update", classid="1:10", theta=5e9)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(str(path)) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {
            "time": 0.5,
            "source": "nic.pipeline",
            "kind": "drop",
            "data": {"reason": "sched_red", "size": 1500},
        }
        assert rows[1]["data"]["theta"] == 5e9


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        tracer.emit(1.0, "s", "k", payload="x")
        assert tracer.records == []
        assert not tracer.wants("s", "k")


class TestSimulatorIntegration:
    def test_default_tracer_is_null(self):
        assert isinstance(Simulator().tracer, NullTracer)

    def test_custom_tracer_attached(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(1.0, lambda: sim.tracer.emit(sim.now, "test", "tick"))
        sim.run()
        assert tracer.records[0].time == 1.0
