"""Tests for the structured tracing sink."""

from repro.sim import NullTracer, Simulator, Tracer


class TestTracer:
    def test_records_stored_in_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "nic.tx", "send", size=64)
        tracer.emit(2.0, "nic.tx", "drop", reason="red")
        assert [r.kind for r in tracer.records] == ["send", "drop"]
        assert tracer.records[0].data == {"size": 64}

    def test_select_filters_by_source_and_kind(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "x")
        tracer.emit(2.0, "b", "x")
        tracer.emit(3.0, "a", "y")
        assert len(list(tracer.select(source="a"))) == 2
        assert len(list(tracer.select(kind="x"))) == 2
        assert len(list(tracer.select(source="a", kind="y"))) == 1

    def test_predicate_drops_unwanted(self):
        tracer = Tracer(predicate=lambda source, kind: kind == "drop")
        tracer.emit(1.0, "nic", "send")
        tracer.emit(2.0, "nic", "drop")
        assert len(tracer.records) == 1
        assert not tracer.wants("nic", "send")

    def test_limit_keeps_newest(self):
        tracer = Tracer(limit=3)
        for i in range(10):
            tracer.emit(float(i), "s", "k", i=i)
        assert len(tracer.records) == 3
        assert tracer.records[-1].data["i"] == 9
        assert tracer.records[0].data["i"] == 7

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "s", "k")
        tracer.clear()
        assert tracer.records == []

    def test_enabled_flag(self):
        assert Tracer().enabled
        assert not NullTracer().enabled


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        tracer.emit(1.0, "s", "k", payload="x")
        assert tracer.records == []
        assert not tracer.wants("s", "k")


class TestSimulatorIntegration:
    def test_default_tracer_is_null(self):
        assert isinstance(Simulator().tracer, NullTracer)

    def test_custom_tracer_attached(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(1.0, lambda: sim.tracer.emit(sim.now, "test", "tick"))
        sim.run()
        assert tracer.records[0].time == 1.0
