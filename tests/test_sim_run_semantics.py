"""Run-loop semantics the optimized kernel must preserve.

The event loop in :meth:`Simulator.run` merges three lanes — the
zero-delay FIFO, heap-resident :class:`Event` entries, and bare
process-resume tuples (the "resume lane") — so these tests pin down
the contracts an optimization could silently break: ``until`` tiling,
``stop()`` from inside a callback, and strict ``(time, seq)`` FIFO
order across all three lanes at equal timestamps.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestRunUntilTiling:
    def test_back_to_back_runs_tile_cleanly(self):
        sim = Simulator()
        fired = []
        for t in (0.5, 1.5, 2.5):
            sim.schedule(t, fired.append, t)
        assert sim.run(until=1.0) == 1.0
        assert fired == [0.5]
        assert sim.now == 1.0
        assert sim.run(until=2.0) == 2.0
        assert fired == [0.5, 1.5]
        assert sim.run(until=3.0) == 3.0
        assert fired == [0.5, 1.5, 2.5]

    def test_clock_clamps_to_until_with_empty_queue(self):
        sim = Simulator()
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "at-horizon")
        sim.run(until=1.0)
        assert fired == ["at-horizon"]

    def test_event_past_until_stays_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "later")
        sim.run(until=1.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run(until=2.0)
        assert fired == ["later"]

    def test_process_delay_respects_horizon(self):
        # Process delay-yields travel the resume lane (bare heap
        # tuples), which must honor the horizon like Event entries.
        sim = Simulator()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield 2.0
            trace.append(("resumed", sim.now))

        sim.process(proc())
        sim.run(until=1.0)
        assert trace == [("start", 0.0)]
        sim.run(until=3.0)
        assert trace == [("start", 0.0), ("resumed", 2.0)]


class TestStopInsideCallback:
    def test_stop_halts_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, lambda: (fired.append("stop"), sim.stop()))
        sim.schedule(3.0, fired.append, "c")
        end = sim.run()
        assert fired == ["a", "stop"]
        assert end == 2.0

    def test_stop_does_not_clamp_to_until(self):
        # A stopped run reports the stop time, not the horizon.
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        assert sim.run(until=10.0) == 1.0
        assert sim.now == 1.0

    def test_run_resumes_after_stop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, fired.append, "after")
        sim.run()
        assert fired == []
        sim.run()
        assert fired == ["after"]

    def test_stop_halts_same_timestamp_zero_delay_events(self):
        # stop() wins even against zero-delay work queued by the same
        # callback: run-to-completion of the callback, then halt.
        sim = Simulator()
        fired = []

        def stopper():
            sim.schedule(0.0, fired.append, "chained")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.run()
        assert fired == []
        sim.run()
        assert fired == ["chained"]

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1 and "re-entrant" in errors[0]


class TestEqualTimestampOrdering:
    def test_zero_delay_events_fire_in_fifo_order(self):
        sim = Simulator()
        order = []
        for tag in range(8):
            sim.schedule(0.0, order.append, tag)
        sim.run()
        assert order == list(range(8))

    def test_zero_delay_chain_preserves_schedule_order(self):
        # Zero-delay events scheduled *from a callback* run after the
        # callback returns, in the order they were scheduled, before
        # any later-timestamp work.
        sim = Simulator()
        order = []

        def root():
            order.append("root")
            sim.schedule(0.0, order.append, "first")
            sim.schedule(0.0, order.append, "second")

        sim.schedule(1.0, root)
        sim.schedule(1.0, order.append, "sibling")
        sim.schedule(2.0, order.append, "later")
        sim.run()
        assert order == ["root", "sibling", "first", "second", "later"]

    def test_heap_and_nowq_merge_by_seq_at_equal_time(self):
        # A positive-delay event landing at time T and zero-delay
        # events scheduled at T must interleave in seq order exactly as
        # a single priority queue would order them.
        sim = Simulator()
        order = []

        def at_one():
            order.append("heap-1")  # seq 0
            sim.schedule(0.0, order.append, "nowq-a")  # seq 2
            sim.schedule(0.0, order.append, "nowq-b")  # seq 3

        sim.schedule(1.0, at_one)
        sim.schedule(1.0, order.append, "heap-2")  # seq 1
        sim.run()
        assert order == ["heap-1", "heap-2", "nowq-a", "nowq-b"]

    def test_processes_and_events_interleave_by_schedule_order(self):
        # Resume-lane tuples carry the same global seq counter as
        # Events. A process's resume seq is assigned when the
        # generator *reaches* its yield — via the zero-delay kick-off,
        # after all creation-time schedules — so the Event at t=1
        # (scheduled earlier) fires first, then the two process
        # resumes in start order.
        sim = Simulator()
        order = []

        def sleeper(tag):
            yield 1.0
            order.append(tag)

        sim.process(sleeper("proc-a"))
        sim.schedule(1.0, order.append, "event")
        sim.process(sleeper("proc-b"))
        sim.run()
        assert order == ["event", "proc-a", "proc-b"]

    def test_cancelled_events_skipped_in_both_lanes(self):
        sim = Simulator()
        order = []
        zero = sim.schedule(0.0, order.append, "zero")
        late = sim.schedule(1.0, order.append, "late")
        sim.schedule(0.0, order.append, "kept-zero")
        sim.schedule(1.0, order.append, "kept-late")
        zero.cancel()
        late.cancel()
        sim.run()
        assert order == ["kept-zero", "kept-late"]

    def test_step_drains_same_order_as_run(self):
        # step() goes through EventQueue.pop() (which re-wraps resume
        # tuples into Events) — it must visit work in the same order
        # the inlined run() loop would.
        def build():
            sim = Simulator()
            order = []

            def proc():
                yield 0.5
                order.append("proc")
                sim.schedule(0.0, order.append, "chained")

            sim.process(proc())
            sim.schedule(0.5, order.append, "event")
            sim.schedule(1.0, order.append, "late")
            return sim, order

        sim_run, order_run = build()
        sim_run.run()
        sim_step, order_step = build()
        while sim_step.step():
            pass
        assert order_step == order_run == ["event", "proc", "chained", "late"]

    def test_events_executed_counts_all_lanes(self):
        sim = Simulator()

        def proc():
            yield 0.5  # resume lane
            yield 0.0  # zero-delay lane

        sim.process(proc())  # +1 initial kick-off event
        sim.schedule(1.0, lambda: None)  # +1 heap event
        sim.run()
        # kick-off + resume + zero-delay resume + heap event
        assert sim.events_executed == 4
