"""Tests for the token bucket and meter primitive (paper Fig. 8)."""

import pytest

from repro.core import MeterColor, TokenBucket


class TestConstruction:
    def test_starts_full_by_default(self):
        bucket = TokenBucket(1e6, 1000.0)
        assert bucket.tokens == 1000.0

    def test_start_empty(self):
        bucket = TokenBucket(1e6, 1000.0, start_full=False)
        assert bucket.tokens == 0.0

    def test_for_interval_sizes_burst(self):
        bucket = TokenBucket.for_interval(10e6, 0.01)  # 10 Mbps, 10 ms
        assert bucket.capacity == pytest.approx(100_000.0)

    def test_for_interval_floor(self):
        bucket = TokenBucket.for_interval(100.0, 0.001)
        assert bucket.capacity == 12_336.0  # one MTU frame + overhead

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(1e6, 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 100.0)


class TestRefill:
    def test_refill_adds_rate_times_dt(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False)
        added = bucket.refill(2.0)
        assert added == pytest.approx(2000.0)
        assert bucket.tokens == pytest.approx(2000.0)

    def test_refill_clamps_to_capacity(self):
        bucket = TokenBucket(1000.0, 500.0, start_full=False)
        bucket.refill(10.0)
        assert bucket.tokens == 500.0

    def test_refill_is_incremental(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False)
        bucket.refill(1.0)
        bucket.refill(2.0)
        assert bucket.tokens == pytest.approx(2000.0)

    def test_backwards_time_adds_nothing(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False, now=5.0)
        assert bucket.refill(4.0) == 0.0

    def test_set_rate_settles_old_rate_first(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False)
        bucket.set_rate(5000.0, now=1.0)  # 1 s at the OLD 1000 bps
        assert bucket.tokens == pytest.approx(1000.0)
        bucket.refill(2.0)  # 1 s at the new 5000 bps
        assert bucket.tokens == pytest.approx(6000.0)


class TestMeter:
    def test_green_consumes(self):
        bucket = TokenBucket(0.0, 1000.0)
        assert bucket.meter(400.0) is MeterColor.GREEN
        assert bucket.tokens == 600.0

    def test_red_leaves_tokens_untouched(self):
        bucket = TokenBucket(0.0, 1000.0)
        bucket.meter(900.0)
        assert bucket.meter(200.0) is MeterColor.RED
        assert bucket.tokens == pytest.approx(100.0)

    def test_exact_fit_is_green(self):
        bucket = TokenBucket(0.0, 1000.0)
        assert bucket.meter(1000.0) is MeterColor.GREEN
        assert bucket.tokens == 0.0

    def test_counters(self):
        bucket = TokenBucket(0.0, 1000.0)
        bucket.meter(600.0)
        bucket.meter(600.0)
        assert bucket.greens == 1
        assert bucket.reds == 1

    def test_peek_does_not_consume(self):
        bucket = TokenBucket(0.0, 1000.0)
        assert bucket.peek(500.0) is MeterColor.GREEN
        assert bucket.tokens == 1000.0


class TestRateConformance:
    """Long-run conformance: forwarded rate tracks θ (the paper's
    'single class rate-limiting can be performed with high precision')."""

    @pytest.mark.parametrize("rate", [1e6, 10e6, 123e6])
    def test_forwarded_rate_matches_theta(self, rate):
        # Capacity must cover one refill interval plus a packet,
        # otherwise refills clamp and tokens are lost to quantisation
        # (which is why SchedulingParams defaults burst_intervals=2).
        bucket = TokenBucket.for_interval(rate, 0.03, now=0.0)
        bucket.drain()
        packet_bits = 12_000.0
        t, forwarded = 0.0, 0.0
        # Offer at 3x the token rate for 10 simulated seconds; refill
        # every 10 ms like the update subprocedure would.
        offer_interval = packet_bits / (3 * rate)
        next_refill = 0.01
        while t < 10.0:
            if t >= next_refill:
                bucket.refill(t)
                next_refill += 0.01
            if bucket.meter(packet_bits) is MeterColor.GREEN:
                forwarded += packet_bits
            t += offer_interval
        achieved = forwarded / 10.0
        assert achieved == pytest.approx(rate, rel=0.02)

    def test_resize_clamps_tokens(self):
        bucket = TokenBucket(0.0, 1000.0)
        bucket.resize(300.0)
        assert bucket.tokens == 300.0
        assert bucket.capacity == 300.0

    def test_drain(self):
        bucket = TokenBucket(0.0, 1000.0)
        bucket.drain()
        assert bucket.tokens == 0.0


class TestSetRateValidation:
    def test_negative_rate_rejected_like_init(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False)
        with pytest.raises(ValueError):
            bucket.set_rate(-1.0, now=1.0)
        # The failed call must not have settled tokens or changed rate.
        assert bucket.rate_bps == 1000.0
        assert bucket.tokens == 0.0
        assert bucket.last_refill == 0.0

    def test_zero_rate_allowed(self):
        bucket = TokenBucket(1000.0, 10_000.0, start_full=False)
        bucket.set_rate(0.0, now=1.0)
        assert bucket.rate_bps == 0.0
        assert bucket.tokens == pytest.approx(1000.0)  # settled first
