"""Tests for the discrete-event simulation kernel (repro.sim)."""

import pytest

from repro.errors import ProcessError, SimulationError
from repro.sim import Simulator, AllOf, AnyOf
from repro.sim.process import ProcessInterrupt


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=3.0)
        assert end == 3.0
        assert sim.now == 3.0
        # The event is still pending and fires on the next run.
        assert sim.pending_events == 1
        sim.run()
        assert sim.now == 10.0

    def test_stop_aborts_run(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: pytest.fail("should not run"))
        sim.run()
        assert sim.now == 1.0

    def test_zero_delay_runs_after_current_callback(self):
        sim = Simulator()
        order = []

        def first():
            sim.schedule(0.0, order.append, "nested")
            order.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestProcesses:
    def test_process_yields_delays(self):
        sim = Simulator()
        ticks = []

        def proc():
            for _ in range(3):
                yield 0.5
                ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert ticks == [0.5, 1.0, 1.5]

    def test_process_return_value_delivered(self):
        sim = Simulator()

        def child():
            yield 1.0
            return 42

        results = []

        def parent():
            value = yield sim.process(child())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [42]

    def test_process_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield 0.1
            raise ValueError("boom")

        caught = []

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["boom"]

    def test_yielding_garbage_fails_process(self):
        sim = Simulator()

        def bad():
            yield "not a waitable"

        proc = sim.process(bad())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ProcessError)

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.process(lambda: None)

    def test_interrupt_wakes_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 100.0
            except ProcessInterrupt as intr:
                log.append(("interrupted", intr.cause, sim.now))

        proc = sim.process(sleeper())
        sim.schedule(1.0, proc.interrupt, "hurry")
        sim.run()
        assert log == [("interrupted", "hurry", 1.0)]

    def test_waiting_on_plain_event(self):
        sim = Simulator()
        gate = sim.event()
        woke = []

        def waiter():
            value = yield gate
            woke.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(2.0, gate.succeed, "opened")
        sim.run()
        assert woke == [(2.0, "opened")]


class TestCompositeEvents:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        results = []

        def waiter():
            values = yield AllOf(sim, [sim.timeout(0.2, "slow"), sim.timeout(0.1, "fast")])
            results.append((sim.now, values))

        sim.process(waiter())
        sim.run()
        assert results == [(0.2, ["slow", "fast"])]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        ev = AllOf(sim, [])
        assert ev.triggered and ev.value == []

    def test_any_of_returns_first(self):
        sim = Simulator()
        results = []

        def waiter():
            winner = yield AnyOf(sim, [sim.timeout(0.5, "a"), sim.timeout(0.2, "b")])
            results.append((sim.now, winner))

        sim.process(waiter())
        sim.run()
        assert results == [(0.2, (1, "b"))]

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_late_subscription_still_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        seen = []
        ev.subscribe(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["early"]


class TestRandomStreams:
    def test_streams_are_stable_per_name(self):
        a = Simulator(seed=99).random.stream("tcp").random()
        b = Simulator(seed=99).random.stream("tcp").random()
        assert a == b

    def test_streams_independent_of_creation_order(self):
        s1 = Simulator(seed=5)
        s1.random.stream("x")
        first = s1.random.stream("tcp").random()
        s2 = Simulator(seed=5)
        second = s2.random.stream("tcp").random()  # no "x" stream created
        assert first == second

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).random.stream("tcp").random()
        b = Simulator(seed=2).random.stream("tcp").random()
        assert a != b

    def test_reset_replays_sequence(self):
        sim = Simulator(seed=3)
        rng = sim.random.stream("w")
        seq = [rng.random() for _ in range(4)]
        sim.random.reset()
        assert [rng.random() for _ in range(4)] == seq
