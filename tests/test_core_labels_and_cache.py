"""Tests for QoS labels, the exact-match flow cache, and the labeling
function."""

import pytest

from repro.core import ExactMatchCache, FlowValveFrontend, QosLabel
from repro.core.sched_tree import SchedulingParams
from repro.errors import CapacityError, UnknownClassError
from repro.net import FiveTuple, PacketFactory

SCRIPT = """
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10mbit ceil 10mbit
fv class add dev eth0 parent 1:1 classid 1:2 fv weight 1
fv class add dev eth0 parent 1:2 classid 1:10 fv weight 1 borrow 1:20
fv class add dev eth0 parent 1:2 classid 1:20 fv weight 1
fv filter add dev eth0 parent 1: match app=A flowid 1:10
fv filter add dev eth0 parent 1: match app=B flowid 1:20
"""


@pytest.fixture
def frontend():
    return FlowValveFrontend.from_script(
        SCRIPT, link_rate_bps=10e6,
        params=SchedulingParams(update_interval=0.1, expire_after=1.0),
    )


class TestQosLabel:
    def test_leaf_and_root(self):
        label = QosLabel(hierarchy=("1:1", "1:2", "1:10"), borrow=("1:20",))
        assert label.leaf == "1:10"
        assert label.root == "1:1"
        assert label.depth == 3

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            QosLabel(hierarchy=())

    def test_apply_to_packet(self):
        label = QosLabel(hierarchy=("1:1", "1:10"), borrow=("1:20",))
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0)
        label.apply_to(packet)
        assert packet.hierarchy_label == ("1:1", "1:10")
        assert packet.borrow_label == ("1:20",)

    def test_str_rendering(self):
        label = QosLabel(hierarchy=("1:1", "1:10"), borrow=("1:20",))
        assert "1:1->1:10" in str(label)
        assert "1:20" in str(label)


class TestExactMatchCache:
    def test_hit_after_put(self):
        cache = ExactMatchCache(capacity=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = ExactMatchCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ExactMatchCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a
        cache.put("c", 3)       # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_idle_expiry(self):
        cache = ExactMatchCache(capacity=4, idle_timeout=1.0)
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=0.5) == "v"
        assert cache.get("k", now=2.0) is None  # expired

    def test_clear(self):
        cache = ExactMatchCache(capacity=4)
        cache.put("k", "v")
        cache.clear()
        assert len(cache) == 0

    def test_invalidate(self):
        cache = ExactMatchCache(capacity=4)
        cache.put("k", "v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            ExactMatchCache(capacity=0)

    def test_hit_ratio(self):
        cache = ExactMatchCache(capacity=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("x")
        assert cache.hit_ratio == pytest.approx(0.5)


class TestExactMatchCacheExpiry:
    """Idle-expiry accounting: get()-time, put()-time, and sweeps.

    The bug this guards against: only get() noticed idle corpses, so a
    churn workload (new flows displacing dead ones) pinned the cache at
    capacity and booked every displacement as an *eviction* — capacity
    pressure that wasn't real — while ``expirations`` stayed 0.
    """

    def test_get_expiry_counts_expiration(self):
        cache = ExactMatchCache(capacity=4, idle_timeout=1.0)
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=2.0) is None
        assert cache.expirations == 1
        assert cache.evictions == 0
        assert cache.misses == 1

    def test_put_reclaims_expired_lru_head_as_expiration(self):
        cache = ExactMatchCache(capacity=2, idle_timeout=1.0)
        cache.put("dead", 1, now=0.0)
        cache.put("live", 2, now=1.5)
        # Full cache, LRU head idle-dead: the insert reclaims it as an
        # expiration, not an eviction.
        cache.put("new", 3, now=2.0)
        assert cache.expirations == 1
        assert cache.evictions == 0
        assert cache.get("dead", now=2.0) is None
        assert cache.get("live", now=2.0) == 2
        assert cache.get("new", now=2.0) == 3

    def test_put_displacing_live_head_is_still_eviction(self):
        cache = ExactMatchCache(capacity=2, idle_timeout=10.0)
        cache.put("a", 1, now=0.0)
        cache.put("b", 2, now=0.1)
        cache.put("c", 3, now=0.2)  # all live: capacity pressure
        assert cache.evictions == 1
        assert cache.expirations == 0

    def test_put_without_timeout_never_expires(self):
        cache = ExactMatchCache(capacity=1)
        cache.put("a", 1, now=0.0)
        cache.put("b", 2, now=100.0)
        assert cache.evictions == 1
        assert cache.expirations == 0

    def test_expire_sweep_reclaims_only_idle_entries(self):
        cache = ExactMatchCache(capacity=8, idle_timeout=1.0)
        for i in range(4):
            cache.put(f"old{i}", i, now=0.0)
        for i in range(3):
            cache.put(f"new{i}", i, now=5.0)
        assert cache.expire(now=5.5) == 4
        assert cache.expirations == 4
        assert len(cache) == 3
        assert cache.get("new0", now=5.5) == 0

    def test_expire_sweep_disabled_without_timeout(self):
        cache = ExactMatchCache(capacity=4)
        cache.put("k", "v", now=0.0)
        assert cache.expire(now=1e9) == 0
        assert len(cache) == 1

    def test_refresh_on_hit_keeps_entry_alive_across_sweep(self):
        cache = ExactMatchCache(capacity=4, idle_timeout=1.0)
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=0.9) == "v"  # refresh stamps now=0.9
        assert cache.expire(now=1.5) == 0
        assert cache.get("k", now=1.5) == "v"

    def test_million_entry_churn_stays_bounded_and_books_expirations(self):
        # Scale regression for the put()-time reclaim: one million
        # distinct flows through a small cache with an idle timeout
        # short enough that every resident entry is dead by the time
        # its slot is reused. Before the fix this booked 10^6 - 64
        # evictions (phantom capacity pressure) and zero expirations.
        capacity = 64
        cache = ExactMatchCache(capacity=capacity, idle_timeout=1e-3)
        n = 1_000_000
        for i in range(n):
            cache.put(i, i, now=i * 1.0)  # successor insert: head long dead
        assert len(cache) == capacity
        assert cache.expirations == n - capacity
        assert cache.evictions == 0
        # The sweep clears the final resident generation too.
        assert cache.expire(now=n * 1.0 + 10.0) == capacity
        assert len(cache) == 0
        assert cache.expirations == n


class TestLabelingFunction:
    def test_hierarchy_path_is_root_to_leaf(self, frontend):
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0, app="A")
        label = frontend.labeler.label(packet, 0.0)
        assert label.hierarchy == ("1:1", "1:2", "1:10")
        assert label.borrow == ("1:20",)

    def test_second_packet_hits_cache(self, frontend):
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        frontend.labeler.label(factory.make(64, flow, 0.0, app="A"), 0.0)
        lookups_before = frontend.classifier.lookups
        frontend.labeler.label(factory.make(64, flow, 0.0, app="A"), 0.1)
        assert frontend.classifier.lookups == lookups_before  # slow path skipped

    def test_distinct_flows_distinct_entries(self, frontend):
        factory = PacketFactory()
        frontend.labeler.label(factory.make(64, FiveTuple("a", "b", 1, 2), 0.0, app="A"), 0.0)
        frontend.labeler.label(factory.make(64, FiveTuple("c", "d", 3, 4), 0.0, app="B"), 0.0)
        assert len(frontend.labeler.cache) == 2

    def test_unmatched_without_default_dropped(self, frontend):
        packet = PacketFactory().make(64, FiveTuple("a", "b", 1, 2), 0.0, app="Z")
        assert frontend.labeler.label(packet, 0.0) is None
        assert packet.dropped
        assert frontend.labeler.unclassified_drops == 1

    def test_label_for_unknown_leaf_raises(self, frontend):
        with pytest.raises(UnknownClassError):
            frontend.labeler.label_for_leaf("9:99")

    def test_cache_disabled(self):
        frontend = FlowValveFrontend.from_script(
            SCRIPT, link_rate_bps=10e6,
            params=SchedulingParams(update_interval=0.1, expire_after=1.0),
            cache_size=0,
        )
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        frontend.labeler.label(factory.make(64, flow, 0.0, app="A"), 0.0)
        frontend.labeler.label(factory.make(64, flow, 0.0, app="A"), 0.0)
        assert frontend.classifier.lookups == 2  # every packet walks rules
        assert frontend.labeler.cache_hit_ratio == 0.0


class TestFrontend:
    def test_describe_mentions_classes_and_filters(self, frontend):
        text = frontend.describe()
        assert "4 classes" in text
        assert "2 filters" in text

    def test_class_rates_snapshot(self, frontend):
        rates = frontend.class_rates()
        assert set(rates) == {"1:1", "1:2", "1:10", "1:20"}
        theta, gamma = rates["1:1"]
        assert theta == pytest.approx(0.97 * 10e6)
        assert gamma == 0.0

    def test_invalid_policy_rejected_at_construction(self):
        bad = SCRIPT + "fv filter add dev eth0 parent 1: match app=X flowid 9:99\n"
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            FlowValveFrontend.from_script(bad, link_rate_bps=10e6)
