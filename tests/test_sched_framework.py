"""Tests for the pluggable scheduler framework: step costs, rank
programs, the rank scheduler, adapters, the registry, the crossbar
runtime, and the ``sched_crossbar`` campaign spec."""

import pytest

from repro.errors import CampaignError, SchedulingError
from repro.experiments import crossbar
from repro.experiments.campaign import REGISTRY
from repro.experiments.policies import motivation_policy
from repro.net import FiveTuple, Link, PacketFactory
from repro.net.packet import DropReason
from repro.sched import (
    FifoProgram,
    PFabricProgram,
    RankProgram,
    RankScheduler,
    ScheduledPort,
    SrptProgram,
    StepCosts,
    WfqProgram,
    build_scheduler,
    scheduler_names,
)
from repro.sched.adapters import DPDK_QOS_COSTS, FLOWVALVE_COSTS
from repro.sim import Simulator

FLOW = FiveTuple("10.0.0.1", "10.0.1.1", 1, 2)


@pytest.fixture
def factory():
    return PacketFactory()


def packet(factory, app="A", size=1500):
    return factory.make(size, FLOW, 0.0, app=app)


class TestStepCosts:
    def test_per_packet_sums_steps(self):
        costs = StepCosts(classify=10.0, rank=20.0, enqueue=30.0, dequeue=40.0)
        assert costs.per_packet == 100.0
        assert costs.seconds(1000.0) == pytest.approx(0.1)

    def test_negative_step_rejected(self):
        with pytest.raises(SchedulingError):
            StepCosts(rank=-1.0)

    def test_calibrated_budgets(self):
        # DPDK QoS carries its measured 1022 cycles/packet; FlowValve's
        # split totals the Algorithm 1 budget.
        assert DPDK_QOS_COSTS.per_packet == 1022.0
        assert FLOWVALVE_COSTS.per_packet == 940.0

    def test_flowvalve_budget_tracks_nic_calibration(self):
        # The crossbar's FlowValve step costs derive from the same
        # calibrated CycleCosts the NIC pipeline charges.
        from repro.nic.config import CycleCosts

        cal = CycleCosts()
        assert FLOWVALVE_COSTS.classify == cal.emc_hit
        assert FLOWVALVE_COSTS.rank == 2 * cal.sched_per_class + cal.meter
        assert FLOWVALVE_COSTS.enqueue == FLOWVALVE_COSTS.dequeue == cal.ring_op


class TestPrograms:
    def test_fifo_ranks_are_monotone(self, factory):
        program = FifoProgram()
        ranks = [program.rank(packet(factory), "A", 0.0) for _ in range(5)]
        assert ranks == sorted(ranks) and len(set(ranks)) == 5

    def test_srpt_ranks_by_remaining_size(self, factory):
        program = SrptProgram(flow_sizes={"A": 6000.0})
        first = program.rank(packet(factory, size=1500), "A", 0.0)
        second = program.rank(packet(factory, size=1500), "A", 0.0)
        assert first == 6000.0 and second == 4500.0  # shrinking remainder

    def test_srpt_las_fallback_grows_with_attained(self, factory):
        program = SrptProgram()
        first = program.rank(packet(factory, size=1500), "A", 0.0)
        second = program.rank(packet(factory, size=1500), "A", 0.0)
        other = program.rank(packet(factory, size=1500), "B", 0.0)
        assert first == 0.0 and second == 1500.0
        assert other == 0.0  # a fresh flow starts ahead

    def test_pfabric_is_srpt_rank(self):
        assert PFabricProgram.name == "pfabric"
        assert issubclass(PFabricProgram, SrptProgram)

    def test_wfq_finish_tags_respect_weights(self, factory):
        program = WfqProgram({"A": 2.0, "B": 1.0})
        rank_a = program.rank(packet(factory, app="A"), "A", 0.0)
        rank_b = program.rank(packet(factory, app="B"), "B", 0.0)
        assert rank_b == pytest.approx(2.0 * rank_a)  # half the weight

    def test_wfq_vtime_advances_on_dequeue(self, factory):
        program = WfqProgram()
        rank = program.rank(packet(factory), "A", 0.0)
        program.on_dequeue(packet(factory), rank, 0.0)
        assert program.vtime == rank
        # A newly active flow starts at the current virtual time, not 0.
        fresh = program.rank(packet(factory, app="B"), "B", 0.0)
        assert fresh > rank


class _FixedRank(RankProgram):
    """Test stub: rank taken from a per-app table."""

    name = "fixed"

    def __init__(self, table):
        self.table = table

    def rank(self, pkt, key, now):
        return self.table[key]


class TestRankScheduler:
    def test_unclassified_without_key_drops(self, factory):
        sched = RankScheduler(FifoProgram())
        pkt = factory.make(1500, FLOW, 0.0)  # no app, no default key
        assert not sched.enqueue(pkt, 0.0)
        assert pkt.drop_reason is DropReason.UNCLASSIFIED
        assert sched.stats.unclassified == 1 and sched.stats.dropped == 1

    def test_default_key_rescues_unmatched(self, factory):
        sched = RankScheduler(FifoProgram(), default_key="best-effort")
        assert sched.enqueue(factory.make(1500, FLOW, 0.0), 0.0)
        assert sched.backlog == 1

    def test_dequeues_in_program_order(self, factory):
        sched = RankScheduler(_FixedRank({"A": 3.0, "B": 1.0, "C": 2.0}))
        for app in ("A", "B", "C"):
            assert sched.enqueue(packet(factory, app=app), 0.0)
        order = [p.app for p in sched.drain(0.0)]
        assert order == ["B", "C", "A"]
        assert sched.stats.dequeued == 3

    def test_tail_drop_at_limit(self, factory):
        sched = RankScheduler(FifoProgram(), limit_packets=2)
        assert sched.enqueue(packet(factory), 0.0)
        assert sched.enqueue(packet(factory), 0.0)
        loser = packet(factory)
        assert not sched.enqueue(loser, 0.0)
        assert loser.drop_reason is DropReason.CLASS_QUEUE_FULL
        assert sched.stats.dropped == 1 and sched.stats.evicted == 0

    def test_evict_on_full_displaces_worst(self, factory):
        sched = RankScheduler(
            _FixedRank({"slow": 100.0, "fast": 1.0}),
            limit_packets=1,
            evict_on_full=True,
        )
        resident = packet(factory, app="slow")
        assert sched.enqueue(resident, 0.0)
        assert sched.enqueue(packet(factory, app="fast"), 0.0)  # evicts
        assert resident.dropped
        assert sched.stats.evicted == 1
        assert sched.dequeue(0.0).app == "fast"

    def test_evict_on_full_keeps_better_resident(self, factory):
        sched = RankScheduler(
            _FixedRank({"slow": 100.0, "fast": 1.0}),
            limit_packets=1,
            evict_on_full=True,
        )
        assert sched.enqueue(packet(factory, app="fast"), 0.0)
        loser = packet(factory, app="slow")
        assert not sched.enqueue(loser, 0.0)
        assert loser.dropped and sched.stats.evicted == 0
        assert sched.dequeue(0.0).app == "fast"

    def test_next_ready_time_and_describe(self, factory):
        sched = RankScheduler(FifoProgram())
        assert sched.next_ready_time(5.0) is None
        sched.enqueue(packet(factory), 5.0)
        assert sched.next_ready_time(5.0) == 5.0
        assert "fifo[pifo]" in sched.describe()


class TestAdapters:
    def test_flowvalve_adapter_forwards_and_counts(self, factory):
        sched = build_scheduler("flowvalve", motivation_policy(1e9), 1e9)
        assert sched.name == "flowvalve"
        # t > 0: Algorithm 1's first rate update must have a nonzero
        # interval behind it before leaf meters hold tokens.
        assert sched.enqueue(packet(factory, app="NC"), 0.1)
        assert sched.backlog == 1
        assert sched.dequeue(0.1).app == "NC"
        assert sched.stats.enqueued == 1 and sched.stats.dequeued == 1

    def test_flowvalve_adapter_unclassified(self, factory):
        sched = build_scheduler("flowvalve", motivation_policy(1e9), 1e9)
        assert not sched.enqueue(packet(factory, app="mystery"), 0.0)
        assert sched.stats.unclassified == 1

    def test_qdisc_adapter_delegates(self, factory):
        sched = build_scheduler("htb", motivation_policy(1e9), 1e9)
        assert sched.enqueue(packet(factory, app="KVS"), 0.0)
        assert sched.backlog == 1
        pkt = sched.dequeue(0.0)
        assert pkt is not None and pkt.app == "KVS"
        assert sched.stats.dequeued == 1

    def test_qdisc_adapter_counts_unclassified(self, factory):
        # HTB with "default 0" drops unmatched traffic (PRIO instead
        # routes it to the last band, per tc's priomap default).
        sched = build_scheduler("htb", motivation_policy(1e9), 1e9)
        assert not sched.enqueue(packet(factory, app="mystery"), 0.0)
        assert sched.stats.unclassified == 1 and sched.stats.dropped == 1


class TestRegistry:
    def test_registered_names(self):
        assert scheduler_names() == [
            "dpdk_qos", "fifo", "flowvalve", "htb",
            "pfabric", "prio", "srpt", "wfq",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulingError):
            build_scheduler("cake", motivation_policy(1e9), 1e9)

    @pytest.mark.parametrize("name", [
        "dpdk_qos", "fifo", "flowvalve", "htb", "pfabric", "prio", "srpt", "wfq",
    ])
    @pytest.mark.parametrize("backend", ["pifo", "eiffel"])
    def test_every_builder_schedules_traffic(self, name, backend, factory):
        sched = build_scheduler(
            name, motivation_policy(1e9), 1e9, backend=backend, queue_limit=64,
        )
        for app in ("NC", "WS", "KVS", "ML"):
            sched.enqueue(packet(factory, app=app), 0.1)
        out = sched.drain(0.1)
        assert len(out) == sched.stats.dequeued == sched.stats.enqueued
        assert len(out) >= 1

    def test_pfabric_evicts_on_full(self):
        sched = build_scheduler("pfabric", motivation_policy(1e9), 1e9)
        assert sched.evict_on_full

    def test_dpdk_qos_carries_measured_budget(self):
        sched = build_scheduler("dpdk_qos", motivation_policy(1e9), 1e9)
        assert sched.costs.per_packet == 1022.0


class TestScheduledPort:
    def test_transmits_all_and_paces_by_service_time(self, factory):
        sim = Simulator(seed=1)
        received = []
        # 650-cycle default budget at 650 Hz -> 1 s/packet, far slower
        # than the wire: the port must be compute-bound.
        link = Link(sim, 1e9, receiver=received.append)
        sched = RankScheduler(FifoProgram())
        port = ScheduledPort(sim, sched, link, freq_hz=650.0)
        assert port.service_time == pytest.approx(1.0)
        for _ in range(5):
            port.submit(packet(factory))
        sim.run(until=10.0)
        assert port.transmitted == 5 and len(received) == 5
        starts = sorted(p.tx_start for p in received)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap >= 1.0 - 1e-9 for gap in gaps)

    def test_wakes_up_for_late_arrivals(self, factory):
        sim = Simulator(seed=1)
        received = []
        link = Link(sim, 1e9, receiver=received.append)
        port = ScheduledPort(sim, RankScheduler(FifoProgram()), link, freq_hz=1.2e9)
        sim.schedule_at(5.0, lambda: port.submit(packet(factory)))
        sim.run(until=6.0)
        assert port.transmitted == 1
        assert received[0].tx_start >= 5.0

    def test_drop_hook_fires(self, factory):
        sim = Simulator(seed=1)
        link = Link(sim, 1e9, receiver=lambda p: None)
        drops = []
        sched = RankScheduler(FifoProgram(), limit_packets=1)
        port = ScheduledPort(sim, sched, link, freq_hz=1.2e9, on_drop=drops.append)
        port.submit(packet(factory))
        port.submit(packet(factory))  # the drain loop hasn't run yet
        assert port.dropped == 1 and len(drops) == 1

    def test_rejects_bad_frequency(self, factory):
        sim = Simulator(seed=1)
        link = Link(sim, 1e9, receiver=lambda p: None)
        with pytest.raises(SchedulingError):
            ScheduledPort(sim, RankScheduler(FifoProgram()), link, freq_hz=0.0)


class TestCrossbar:
    def test_spec_registered(self):
        spec = REGISTRY.get("sched_crossbar")
        assert "scheduler" in spec.grid

    def test_unknown_workload_rejected(self):
        with pytest.raises(CampaignError):
            crossbar.run(workload="adversarial")

    def test_rank_scheduler_cell_runs(self):
        result = crossbar.run(
            scheduler="fifo", workload="motivation",
            duration=2.0, bin_seconds=1.0,
        )
        assert set(result.series) == {"KVS", "ML", "NC", "WS"}
        assert "scheduler=fifo[pifo]" in result.notes

    def test_flowvalve_cell_uses_reference_path(self):
        result = crossbar.run(
            scheduler="flowvalve", workload="motivation",
            duration=2.0, bin_seconds=1.0,
        )
        assert set(result.series) == {"KVS", "ML", "NC", "WS"}
        # The reference path reports no crossbar scheduler notes.
        assert "scheduler=" not in result.notes
