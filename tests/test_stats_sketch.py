"""Conformance tests for the constant-memory streaming statistics.

The sketch suite bounds the approximation against the exact summaries
(ROADMAP item 4's acceptance: quantiles within the configured relative
error on heavy-tailed data), pins the exact-moment contract, and
checks that the footprint actually stays constant while samples
stream through.
"""

import math
import random

import pytest

from repro.net import FiveTuple, PacketFactory, PacketSink
from repro.sim import Simulator
from repro.stats import (
    LatencySummary,
    QuantileSketch,
    WindowedRateSketch,
    jitter,
    percentile,
    summarize_latencies,
)


def heavy_tail_samples(n=20_000, seed=11):
    """Bounded-Pareto-ish delays spanning ~5 decades — the shape the
    sketch exists for."""
    rng = random.Random(seed)
    return [min(10.0, 1e-5 * rng.paretovariate(1.2)) for _ in range(n)]


class TestQuantileSketchAccuracy:
    def test_quantiles_within_relative_error(self):
        samples = heavy_tail_samples()
        sketch = QuantileSketch(relative_error=0.005)
        for s in samples:
            sketch.add(s)
        ordered = sorted(samples)
        for p in (1.0, 10.0, 50.0, 90.0, 99.0, 99.9):
            exact = percentile(ordered, p)
            approx = sketch.percentile(p)
            # The acceptance bound is 1%; the default ε is 0.5%.
            assert approx == pytest.approx(exact, rel=0.01), f"p{p}"

    def test_moments_are_exact(self):
        samples = heavy_tail_samples(n=5_000)
        sketch = QuantileSketch()
        for s in samples:
            sketch.add(s)
        assert sketch.count == len(samples)
        assert sketch.sum == pytest.approx(sum(samples))
        assert sketch.mean == pytest.approx(sum(samples) / len(samples))
        assert sketch.minimum == min(samples)
        assert sketch.maximum == max(samples)
        assert sketch.jitter == pytest.approx(jitter(samples), rel=1e-9)

    def test_summary_matches_exact_summary(self):
        samples = heavy_tail_samples(n=10_000, seed=3)
        sketch = QuantileSketch()
        for s in samples:
            sketch.add(s)
        exact = summarize_latencies(samples)
        approx = sketch.summary()
        assert isinstance(approx, LatencySummary)
        assert approx.count == exact.count
        assert approx.mean == pytest.approx(exact.mean)
        assert approx.minimum == exact.minimum
        assert approx.maximum == exact.maximum
        assert approx.jitter == pytest.approx(exact.jitter, rel=1e-9)
        assert approx.p50 == pytest.approx(exact.p50, rel=0.01)
        assert approx.p99 == pytest.approx(exact.p99, rel=0.01)

    def test_quantile_extremes_return_observed_range(self):
        sketch = QuantileSketch()
        for s in (0.002, 0.5, 3.0):
            sketch.add(s)
        assert sketch.quantile(0.0) == 0.002
        assert sketch.quantile(1.0) == 3.0
        # Interior quantiles never poke past the observed range either.
        assert 0.002 <= sketch.quantile(0.999) <= 3.0

    def test_empty_and_invalid_queries(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.percentile(-1.0)
        assert sketch.summary().count == 1

    def test_empty_summary_is_zero(self):
        assert QuantileSketch().summary() == LatencySummary(
            0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=1)
        with pytest.raises(ValueError):
            QuantileSketch(min_value=0.0)


class TestQuantileSketchFootprint:
    def test_bin_count_constant_in_sample_count(self):
        """Memory tracks the dynamic range of the data, not n: once the
        range is filled in, more samples occupy no new buckets."""
        rng = random.Random(5)
        sketch = QuantileSketch()
        for _ in range(10_000):
            sketch.add(10 ** rng.uniform(-5, 1))
        bins_small = sketch.bin_count
        for _ in range(40_000):
            sketch.add(10 ** rng.uniform(-5, 1))
        # 5x the samples over the same six decades: at most a few
        # previously-unlucky buckets fill in.
        assert sketch.bin_count <= bins_small * 1.05
        assert sketch.bin_count < 4096

    def test_collapse_caps_footprint(self):
        sketch = QuantileSketch(relative_error=0.005, max_bins=16)
        rng = random.Random(1)
        for _ in range(5_000):
            sketch.add(10 ** rng.uniform(-6, 6))
        assert sketch.bin_count <= 16
        assert sketch.collapsed > 0
        # Collapsing eats the low tail first: quantiles stay monotone
        # and the top of the range stays exact.
        assert sketch.quantile(0.5) <= sketch.quantile(0.99) <= sketch.maximum
        assert sketch.quantile(1.0) == sketch.maximum

    def test_underflow_bucket_for_tiny_values(self):
        sketch = QuantileSketch(min_value=1e-6)
        sketch.add(0.0)
        sketch.add(1e-9)
        sketch.add(1.0)
        assert sketch.count == 3
        assert sketch.minimum == 0.0
        # Underflow samples rank below everything representable.
        assert sketch.quantile(0.1) == pytest.approx(1e-6)


class TestQuantileSketchMerge:
    def test_merge_equals_single_stream(self):
        samples = heavy_tail_samples(n=8_000, seed=9)
        whole = QuantileSketch()
        left, right = QuantileSketch(), QuantileSketch()
        for i, s in enumerate(samples):
            whole.add(s)
            (left if i % 2 else right).add(s)
        left.merge(right)
        assert left.count == whole.count
        assert left.sum == pytest.approx(whole.sum)
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum
        assert left.jitter == pytest.approx(whole.jitter, rel=1e-9)
        assert left._bins == whole._bins

    def test_merge_rejects_mismatched_error(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.005).merge(
                QuantileSketch(relative_error=0.01)
            )


class TestWindowedRateSketch:
    def test_rate_over_trailing_window(self):
        ring = WindowedRateSketch(window=1.0, bins=10)
        for i in range(10):
            ring.add(i * 0.1, 100.0)
        assert ring.rate(0.95) == pytest.approx(1000.0)

    def test_old_bins_recycle(self):
        ring = WindowedRateSketch(window=1.0, bins=4)
        ring.add(0.0, 400.0)
        # A full window later the old amount is gone.
        assert ring.rate(2.0) == 0.0
        ring.add(2.0, 100.0)
        assert ring.rate(2.0) == pytest.approx(100.0)
        assert ring.total == 500.0

    def test_footprint_constant_in_run_length(self):
        ring = WindowedRateSketch(window=0.1, bins=8)
        for i in range(10_000):
            ring.add(i * 1.0, 1.0)
        assert len(ring._counts) == 8
        assert ring.total == 10_000.0
        assert ring.mean_rate(10_000.0) == pytest.approx(1.0)

    def test_rejects_time_regressions(self):
        ring = WindowedRateSketch()
        ring.add(1.0, 1.0)
        with pytest.raises(ValueError):
            ring.add(0.5, 1.0)
        with pytest.raises(ValueError):
            WindowedRateSketch(window=0.0)
        with pytest.raises(ValueError):
            WindowedRateSketch(bins=0)

    def test_empty_rate_is_zero(self):
        assert WindowedRateSketch().rate() == 0.0
        assert WindowedRateSketch().mean_rate(0.0) == 0.0


class TestSinkSketchMode:
    """The PacketSink routes its accounting through the sketches."""

    def _run(self, stats_mode, n=500, seed=4):
        sim = Simulator(seed=seed)
        sink = PacketSink(sim, rate_window=1.0, stats_mode=stats_mode)
        factory = PacketFactory()
        flow = FiveTuple("a", "b", 1, 2)
        rng = random.Random(seed)
        for i in range(n):
            at = 0.01 * (i + 1)
            packet = factory.make(
                100, flow, at - min(1.0, 1e-4 * rng.paretovariate(1.2)),
                app="A" if i % 2 else "B",
            )
            sim.schedule_at(at, sink.receive, packet)
        sim.run()
        return sink

    def test_summary_agrees_with_exact_mode(self):
        exact = self._run("exact").latency_summary()
        approx = self._run("sketch").latency_summary()
        assert approx.count == exact.count
        assert approx.mean == pytest.approx(exact.mean)
        assert approx.p50 == pytest.approx(exact.p50, rel=0.01)
        assert approx.p99 == pytest.approx(exact.p99, rel=0.01)
        assert approx.maximum == exact.maximum

    def test_per_app_summary_agrees(self):
        exact = self._run("exact")
        approx = self._run("sketch")
        for app in ("A", "B"):
            ordered = sorted(exact.delays_by_app[app])
            summary = approx.latency_summary(app)
            assert summary.count == len(ordered)
            # The ε-guarantee is against the order statistic at the
            # target rank, not the interpolated percentile (which at
            # 250 heavy-tailed samples can sit far from either
            # neighbour): the sketch's p99 must land within ε of one
            # of the two samples bracketing the rank.
            rank = 0.99 * (len(ordered) - 1)
            neighbours = (ordered[math.floor(rank)], ordered[math.ceil(rank)])
            assert any(
                summary.p99 == pytest.approx(x, rel=0.01) for x in neighbours
            )
        # An app never seen reports zeros rather than raising.
        assert approx.latency_summary("ghost").count == 0

    def test_sample_lists_unavailable_in_sketch_mode(self):
        sink = self._run("sketch")
        with pytest.raises(ValueError):
            sink.delays
        with pytest.raises(ValueError):
            sink.delays_by_app
        assert sink.delay_sketch().count == sink.total_packets
        assert sink.delay_sketch("A").count > 0

    def test_delay_sketch_requires_sketch_mode(self):
        sink = self._run("exact")
        with pytest.raises(ValueError):
            sink.delay_sketch()

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PacketSink(Simulator(), stats_mode="approximate")
        with pytest.raises(ValueError):
            PacketSink(Simulator(), fold_interval=0.0)

    def test_rates_still_report(self):
        sink = self._run("sketch")
        assert sink.rates["A"].rate() > 0.0
        assert math.isclose(
            sink.rates["A"].total + sink.rates["B"].total,
            sink.total_bytes * 8,
        )
