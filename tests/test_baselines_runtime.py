"""Tests for the kernel qdisc runtime and the DPDK QoS model."""

import pytest

from repro.baselines import (
    DpdkQosParams,
    DpdkQosScheduler,
    HtbClass,
    HtbQdisc,
    KernelParams,
    KernelQdiscRuntime,
    PrioQdisc,
)
from repro.host import FixedRateSender, HostCpu
from repro.net import FiveTuple, Link, PacketFactory, PacketSink
from repro.sim import Simulator
from repro.tc import Classifier, FilterSpec


def fair_qdisc(link_bps, queue_limit=2000):
    root = HtbClass("1:1", rate_bps=link_bps, ceil_bps=link_bps)
    HtbClass("1:10", rate_bps=link_bps / 2, ceil_bps=link_bps, parent=root)
    HtbClass("1:20", rate_bps=link_bps / 2, ceil_bps=link_bps, parent=root)
    classifier = Classifier([
        FilterSpec(flowid="1:10", match={"app": "A"}),
        FilterSpec(flowid="1:20", match={"app": "B"}),
    ])
    return HtbQdisc(root, classifier, queue_limit=queue_limit)


class TestKernelRuntime:
    """The runtime drives a qdisc under the global-lock cost model.
    These tests run rate-scaled (100x) like the experiments."""

    SCALE = 100.0

    def _testbed(self, qdisc, wire_bps):
        sim = Simulator(seed=2)
        sink = PacketSink(sim, rate_window=1.0, record_delays=True)
        link = Link(sim, wire_bps, receiver=sink.receive)
        runtime = KernelQdiscRuntime(
            sim, qdisc, link, params=KernelParams().scaled(self.SCALE)
        )
        return sim, sink, runtime

    def test_shapes_to_assured_rates(self):
        qdisc = fair_qdisc(100e6)
        sim, sink, runtime = self._testbed(qdisc, 400e6)
        factory = PacketFactory()
        for i, app in enumerate(("A", "B")):
            FixedRateSender(sim, app, factory, runtime.enqueue, rate_bps=80e6,
                            packet_size=1500, vf_index=i, jitter=0.1,
                            rng=sim.random.stream(app))
        sim.run(until=10.0)
        for app in ("A", "B"):
            rate = sink.rates[app].mean_rate(5, 10)
            # ~half the 100M policy each (the inflation artifact can
            # push a little above).
            assert rate == pytest.approx(50e6, rel=0.35)

    def test_ceiling_overshoot_under_contention(self):
        """The Fig. 3 artifact: under heavy offered load the policy
        ceiling is exceeded on a faster wire."""
        qdisc = fair_qdisc(100e6)
        sim, sink, runtime = self._testbed(qdisc, 400e6)
        factory = PacketFactory()
        # 1.3x total offered: enough to saturate the policy without
        # livelocking the lock (CBR far above the lock budget starves
        # the dequeue path instead of overshooting).
        for i, app in enumerate(("A", "B")):
            FixedRateSender(sim, app, factory, runtime.enqueue, rate_bps=65e6,
                            packet_size=1500, vf_index=i, jitter=0.1,
                            rng=sim.random.stream(app))
        sim.run(until=10.0)
        total = sum(sink.rates[a].mean_rate(5, 10) for a in ("A", "B"))
        assert total > 1.05 * 100e6
        assert runtime.lock_utilization > 0.3

    def test_queueing_delay_is_large(self):
        """Kernel HTB buffers: delay is orders above the wire time."""
        qdisc = fair_qdisc(100e6, queue_limit=500)
        sim, sink, runtime = self._testbed(qdisc, 400e6)
        factory = PacketFactory()
        FixedRateSender(sim, "A", factory, runtime.enqueue, rate_bps=120e6,
                        packet_size=1500, vf_index=0, jitter=0.1,
                        rng=sim.random.stream("A"))
        sim.run(until=5.0)
        mean_delay = sum(sink.delays) / len(sink.delays)
        wire_time = (1520 * 8) / 100e6
        assert mean_delay > 20 * wire_time

    def test_prio_runtime_orders_bands(self):
        classifier = Classifier([
            FilterSpec(flowid="1:1", match={"app": "hi"}),
            FilterSpec(flowid="1:2", match={"app": "lo"}),
        ])
        qdisc = PrioQdisc(bands=2, classifier=classifier, queue_limit=5000)
        sim, sink, runtime = self._testbed(qdisc, 100e6)
        factory = PacketFactory()
        for i, app in enumerate(("hi", "lo")):
            FixedRateSender(sim, app, factory, runtime.enqueue, rate_bps=90e6,
                            packet_size=1500, vf_index=i, jitter=0.1,
                            rng=sim.random.stream(app))
        sim.run(until=5.0)
        hi = sink.rates["hi"].mean_rate(2, 5)
        lo = sink.rates["lo"].mean_rate(2, 5) if "lo" in sink.rates else 0.0
        assert hi > 3 * max(lo, 1.0)

    def test_app_core_accounting(self):
        qdisc = fair_qdisc(100e6)
        sim = Simulator(seed=2)
        cpu = HostCpu(sim)
        sink = PacketSink(sim, record_delays=False)
        link = Link(sim, 400e6, receiver=sink.receive)
        runtime = KernelQdiscRuntime(
            sim, qdisc, link, params=KernelParams().scaled(self.SCALE),
            softirq_core=cpu.core(7),
        )
        runtime.register_app_core("A", cpu.core(0))
        factory = PacketFactory()
        FixedRateSender(sim, "A", factory, runtime.enqueue, rate_bps=50e6,
                        packet_size=1500, vf_index=0, jitter=0.1,
                        rng=sim.random.stream("A"))
        sim.run(until=2.0)
        assert cpu.report.core_equivalents(2.0, "sched:enqueue") > 0
        assert cpu.report.core_equivalents(2.0, "sched:softirq") > 0


class TestDpdkQos:
    def test_accurate_shaping(self):
        """DPDK's headline property vs kernel HTB: good conformance."""
        sim = Simulator(seed=4)
        sink = PacketSink(sim, rate_window=1.0, record_delays=False)
        link = Link(sim, 400e6 / 100, receiver=sink.receive)
        qdisc = fair_qdisc(100e6 / 100, queue_limit=64)
        sched = DpdkQosScheduler(sim, qdisc, link, n_cores=1,
                                 params=DpdkQosParams().scaled(100.0))
        factory = PacketFactory()
        for i, app in enumerate(("A", "B")):
            FixedRateSender(sim, app, factory, sched.submit, rate_bps=1.2e6,
                            packet_size=1500, vf_index=i, jitter=0.1,
                            rng=sim.random.stream(app))
        sim.run(until=10.0)
        total = sum(sink.rates[a].mean_rate(5, 10) for a in ("A", "B"))
        # Conformant: within a few % of the 1M scaled policy, NOT 1.2x.
        assert total == pytest.approx(1e6, rel=0.1)

    def test_capacity_model(self):
        params = DpdkQosParams()
        assert params.capacity_pps(1) == pytest.approx(2.25e6, rel=0.01)
        assert params.capacity_pps(4) == pytest.approx(9.0e6, rel=0.03)

    def test_core_bound_throughput(self):
        """Offered above the per-core capacity: throughput caps there."""
        sim = Simulator(seed=4)
        sink = PacketSink(sim, record_delays=False)
        link = Link(sim, 40e9, receiver=sink.receive)
        qdisc = fair_qdisc(40e9, queue_limit=64)
        sched = DpdkQosScheduler(sim, qdisc, link, n_cores=1)
        factory = PacketFactory()
        for i, app in enumerate(("A", "B")):
            FixedRateSender(sim, app, factory, sched.submit,
                            rate_bps=1.8e6 * 1518 * 8, packet_size=1518,
                            vf_index=i, jitter=0.05, rng=sim.random.stream(app))
        sim.run(until=0.02)
        achieved_pps = sink.total_packets / 0.02
        assert achieved_pps == pytest.approx(2.25e6, rel=0.1)

    def test_poll_mode_burns_cores(self):
        sim = Simulator(seed=4)
        cpu = HostCpu(sim)
        sink = PacketSink(sim, record_delays=False)
        link = Link(sim, 4e6, receiver=sink.receive)
        qdisc = fair_qdisc(1e6, queue_limit=64)
        sched = DpdkQosScheduler(sim, qdisc, link, n_cores=1,
                                 params=DpdkQosParams().scaled(100.0),
                                 cores=[cpu.core(5)])
        sim.run(until=2.0)
        # No traffic at all — the poll loop still burns the core.
        assert cpu.core(5).utilization() > 0.9

    def test_needs_a_core(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DpdkQosScheduler(sim, fair_qdisc(1e6), Link(sim, 1e6), n_cores=0)
