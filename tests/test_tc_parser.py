"""Tests for the fv/tc command parser."""

import pytest

from repro.errors import ParseError, PolicyError
from repro.tc import parse_script
from repro.tc.parser import CommandParser


class TestQdiscCommands:
    def test_root_htb_qdisc(self):
        policy = parse_script("fv qdisc add dev eth0 root handle 1: htb default 30")
        qdisc = policy.root_qdisc()
        assert qdisc.kind == "htb"
        assert qdisc.handle == "1:"
        assert qdisc.default == 0x30

    def test_prio_qdisc_bands(self):
        policy = parse_script("fv qdisc add dev eth0 root handle 1: prio bands 4")
        assert policy.root_qdisc().bands == 4

    def test_tc_prefix_accepted(self):
        policy = parse_script("tc qdisc add dev eth0 root handle 1: htb")
        assert policy.root_qdisc().kind == "htb"

    def test_bare_command_accepted(self):
        policy = parse_script("qdisc add dev eth0 root handle 1: fv")
        assert policy.root_qdisc().kind == "fv"

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyError):
            parse_script("fv qdisc add dev eth0 root handle 1: cbq")

    def test_missing_handle_rejected(self):
        with pytest.raises(ParseError):
            parse_script("fv qdisc add dev eth0 root htb")

    def test_duplicate_handle_rejected(self):
        script = (
            "fv qdisc add dev eth0 root handle 1: htb\n"
            "fv qdisc add dev eth0 parent 1:1 handle 1: htb\n"
        )
        with pytest.raises(PolicyError):
            parse_script(script)


class TestClassCommands:
    def test_class_with_rate_and_ceil(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: htb\n"
            "fv class add dev eth0 parent 1: classid 1:1 htb rate 10gbit ceil 10gbit\n"
        )
        spec = policy.class_map()["1:1"]
        assert spec.rate == 10e9
        assert spec.ceil == 10e9
        assert spec.parent == "1:"

    def test_fv_extensions(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv rate 2gbit "
            "prio 2 weight 1.5 guarantee 2gbit threshold 4gbit borrow 1:30,1:21\n"
        )
        spec = policy.class_map()["1:20"]
        assert spec.prio == 2
        assert spec.weight == 1.5
        assert spec.guarantee == 2e9
        assert spec.guarantee_threshold == 4e9
        assert spec.borrow == ("1:30", "1:21")

    def test_guarantee_threshold_defaults_to_double(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit\n"
            "fv class add dev eth0 parent 1:1 classid 1:20 fv guarantee 2gbit\n"
        )
        assert policy.class_map()["1:20"].guarantee_threshold == 4e9

    def test_quantum_and_burst_accepted_for_tc_parity(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: htb\n"
            "fv class add dev eth0 parent 1: classid 1:1 htb rate 1gbit quantum 1514 burst 32k\n"
        )
        assert policy.class_map()["1:1"].rate == 1e9

    def test_unknown_class_option_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                "fv qdisc add dev eth0 root handle 1: htb\n"
                "fv class add dev eth0 parent 1: classid 1:1 htb frobnicate 5\n"
            )

    def test_line_continuation(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv class add dev eth0 parent 1: classid 1:1 \\\n"
            "    fv rate 5gbit\n"
        )
        assert policy.class_map()["1:1"].rate == 5e9


class TestFilterCommands:
    def test_compact_match_form(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv filter add dev eth0 parent 1: prio 1 match app=NC flowid 1:10\n"
        )
        filt = policy.filters[0]
        assert filt.match == {"app": "NC"}
        assert filt.flowid == "1:10"
        assert filt.prio == 1

    def test_u32_match_form(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv filter add dev eth0 protocol ip parent 1: prio 2 u32 "
            "match ip src 10.0.0.1 match ip dport 80 0xffff flowid 1:10\n"
        )
        filt = policy.filters[0]
        assert filt.match == {"src": "10.0.0.1", "dport": "80"}
        assert filt.prio == 2

    def test_multiple_compact_matches(self):
        policy = parse_script(
            "fv qdisc add dev eth0 root handle 1: fv\n"
            "fv filter add dev eth0 parent 1: prio 1 match vf=2 match proto=tcp flowid 1:10\n"
        )
        assert policy.filters[0].match == {"vf": "2", "proto": "tcp"}

    def test_missing_flowid_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                "fv qdisc add dev eth0 root handle 1: fv\n"
                "fv filter add dev eth0 parent 1: prio 1 match app=NC\n"
            )

    def test_unsupported_u32_field_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                "fv qdisc add dev eth0 root handle 1: fv\n"
                "fv filter add dev eth0 parent 1: u32 match ip tos 4 flowid 1:10\n"
            )


class TestScriptHandling:
    def test_comments_and_blanks_ignored(self):
        policy = parse_script(
            "# motivation example\n"
            "\n"
            "fv qdisc add dev eth0 root handle 1: htb\n"
            "   \n"
        )
        assert len(policy.qdiscs) == 1

    def test_parser_accumulates_state(self):
        parser = CommandParser()
        parser.parse("fv qdisc add dev eth0 root handle 1: fv")
        parser.parse("fv class add dev eth0 parent 1: classid 1:1 fv rate 1gbit")
        assert len(parser.policy.classes) == 1

    def test_only_add_supported(self):
        with pytest.raises(ParseError):
            parse_script("fv qdisc del dev eth0 root handle 1: htb")
