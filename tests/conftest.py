"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

import pytest

from repro.core import FlowValve
from repro.core.scheduling import Verdict
from repro.core.sched_tree import SchedulingParams
from repro.net import FiveTuple, PacketFactory

# A scheduling parameter set suitable for Mbit-scale unit tests:
# 100 ms epochs give plenty of packets per interval at low rates.
TEST_PARAMS = SchedulingParams(update_interval=0.1, expire_after=1.0)


def make_flow(index: int, dport: int = 80) -> FiveTuple:
    """A distinct five-tuple per index."""
    return FiveTuple(f"10.0.0.{index}", "10.0.1.1", 40000 + index, dport)


def drive_valve(
    valve: FlowValve,
    demands: Dict[str, Callable[[float], float]],
    duration: float,
    packet_size: int = 1250,
    start: float = 0.0,
) -> Dict[str, float]:
    """Offer traffic to *valve* per-app at time-varying demand rates.

    ``demands`` maps app name -> callable(t) -> offered bit/s (0 = idle
    at that moment). Returns achieved throughput in bit/s per app over
    [start, start+duration). Event-driven: each app sends its next
    packet exactly one packet-time after the previous at the current
    demand.
    """
    factory = PacketFactory()
    flows = {app: make_flow(i) for i, app in enumerate(sorted(demands))}
    size_bits = packet_size * 8
    forwarded = {app: 0 for app in demands}
    heap: List[Tuple[float, str]] = [(start, app) for app in sorted(demands)]
    heapq.heapify(heap)
    end = start + duration
    while heap:
        t, app = heapq.heappop(heap)
        if t >= end:
            continue
        rate = demands[app](t)
        if rate <= 0:
            # Re-poll for demand a little later.
            heapq.heappush(heap, (t + 0.05, app))
            continue
        packet = factory.make(packet_size, flows[app], t, app=app)
        if valve.process(packet, t) is Verdict.FORWARD:
            forwarded[app] += 1
        heapq.heappush(heap, (t + size_bits / rate, app))
    return {app: count * size_bits / duration for app, count in forwarded.items()}


def constant(rate: float) -> Callable[[float], float]:
    """A constant-demand callable."""
    return lambda t: rate


@pytest.fixture
def test_params() -> SchedulingParams:
    """Unit-test scheduling parameters (long epochs, low rates)."""
    return TEST_PARAMS
