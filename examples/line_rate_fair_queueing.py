#!/usr/bin/env python3
"""Line-rate fair queueing on the SmartNIC model (paper Fig. 11b).

Four tenants join a 40 Gbit link one after another; FlowValve's
weighted scheduling plus shadow-bucket borrowing re-divides the line
rate fairly at every join: 40 → 20 → 13.3 → 10 Gbit each.

Also prints the NIC-side statistics so you can see *how* it happens:
every byte a tenant doesn't get was a packet FlowValve tail-dropped
early, before it could occupy the shared Tx buffer.

Run:  python examples/line_rate_fair_queueing.py   (~30 s)
"""

from repro.core import FlowValveFrontend
from repro.experiments import ScaledSetup
from repro.experiments.policies import fair_policy
from repro.host import FixedRateSender
from repro.host.traffic import windows
from repro.net import PacketFactory, PacketSink
from repro.nic import NicPipeline
from repro.sim import Simulator


def main() -> None:
    setup = ScaledSetup(nominal_link_bps=40e9, scale=800.0, wire_bps=40e9, seed=1)
    duration = 32.0
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        fair_policy(setup.link_bps, n_apps=4),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive)
    factory = PacketFactory()
    for i in range(4):
        # App names must match the policy's filters (App0..App3).
        FixedRateSender(
            sim, f"App{i}", factory, nic.submit,
            rate_bps=setup.sender_rate(),
            packet_size=1500,
            demand=windows((i * 8.0, duration, 1e12 / setup.scale)),
            vf_index=i, jitter=0.1, rng=sim.random.stream(f"App{i}"),
        )
    sim.run(until=duration)

    print("tenant throughput (Gbit/s, nominal) per 4 s window:")
    header = "window   " + "".join(f"App{i:<6}" for i in range(4))
    print(header)
    for start in range(0, int(duration), 4):
        cells = []
        for i in range(4):
            series = sink.rates.get(f"App{i}")
            rate = series.mean_rate(start, start + 4) if series else 0.0
            cells.append(f"{rate * setup.scale / 1e9:9.2f}")
        print(f"{start:>2}-{start + 4:<4}s" + "".join(cells))
    print()
    print(nic.stats_summary())
    print(frontend.describe())


if __name__ == "__main__":
    main()
