#!/usr/bin/env python3
"""The ``fv`` command-line front end, demonstrated programmatically.

FlowValve's shell interface inherits ``tc`` syntax (paper §III-E).
This example writes a policy script to a temp file and drives the
three CLI commands against it:

* ``fv check``     — parse + validate;
* ``fv show``      — print the scheduling tree with derived rates;
* ``fv simulate``  — software-mode what-if: offered vs achieved rates.

Run:  python examples/fv_cli_demo.py
"""

import tempfile
from pathlib import Path

from repro.cli import main as fv_main

POLICY = """\
# Motivation example (Section II), 10 Gbit link.
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit ceil 10gbit
fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0 rate 10gbit
fv class add dev eth0 parent 1:1 classid 1:2 fv prio 1 rate 8gbit
fv class add dev eth0 parent 1:2 classid 1:20 fv weight 1 borrow 1:3
fv class add dev eth0 parent 1:2 classid 1:3 fv weight 2
fv class add dev eth0 parent 1:3 classid 1:30 fv prio 0 rate 4gbit borrow 1:20
fv class add dev eth0 parent 1:3 classid 1:31 fv prio 1 rate 2gbit \\
    guarantee 2gbit threshold 4gbit borrow 1:20
fv filter add dev eth0 parent 1: match app=NC flowid 1:10
fv filter add dev eth0 parent 1: match app=WS flowid 1:20
fv filter add dev eth0 parent 1: match app=KVS flowid 1:30
fv filter add dev eth0 parent 1: match app=ML flowid 1:31
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        script = Path(tmp) / "motivation.fv"
        script.write_text(POLICY)

        print("$ fv check motivation.fv --link 10gbit")
        fv_main(["check", str(script), "--link", "10gbit"])
        print()

        print("$ fv show motivation.fv --link 10gbit")
        fv_main(["show", str(script), "--link", "10gbit"])
        print()

        print("$ fv simulate motivation.fv --link 10gbit \\")
        print("      --app NC=2gbit --app WS=9gbit --app KVS=9gbit --app ML=9gbit")
        fv_main([
            "simulate", str(script), "--link", "10gbit",
            "--app", "NC=2gbit", "--app", "WS=9gbit",
            "--app", "KVS=9gbit", "--app", "ML=9gbit",
            "--duration", "5",
        ])


if __name__ == "__main__":
    main()
