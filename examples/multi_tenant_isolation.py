#!/usr/bin/env python3
"""Multi-tenant isolation: the paper's motivation example, end to end.

Recreates §II's scenario on the full simulated stack — SR-IOV virtual
functions into the NP-based SmartNIC model running FlowValve:

* a network controller (NC) with strict priority;
* vm2's web server (WS) weighted 1 against vm1's 2;
* inside vm1, a key-value store (KVS) prioritised over machine
  learning (ML), with ML guaranteed 2 Gbit whenever vm1's share
  exceeds 4 Gbit.

The timeline staggers the apps (NC bursts alone, then the tenants
arrive and leave) so you can watch priorities, weights, the guarantee,
and work-conserving borrowing all engage. This is exactly experiment
E-F11a; the benchmark suite runs the full 60 s version — this example
runs a compressed 24 s timeline so it finishes in ~15 s.

Run:  python examples/multi_tenant_isolation.py
"""

from repro.experiments import ScaledSetup, run_flowvalve_timeline
from repro.experiments.policies import motivation_policy
from repro.host.traffic import windows


def main() -> None:
    setup = ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9, seed=42)
    # Compressed phases: 6 s each instead of 15 s.
    b = setup.nominal_link_bps
    demands = {
        "NC": windows((0, 6, 1e12), (6, 18, b / 5)),
        "KVS": windows((6, 18, 1e12)),
        "ML": windows((6, 12, 1e12)),
        "WS": windows((6, 24, 1e12)),
    }
    result = run_flowvalve_timeline(
        motivation_policy(setup.link_bps),
        demands,
        setup,
        duration=24.0,
        bin_seconds=3.0,
        title="Multi-tenant isolation (motivation example, compressed)",
    )
    print(result.to_table().render())
    print()
    print("What to look for:")
    print("  0-6 s   NC alone takes the whole 10 Gbit link (priority + borrowing)")
    print("  6-12 s  NC throttles itself to 2 G; WS:vm1 split 1:2; inside vm1")
    print("          KVS wins priority but ML's 2 Gbit guarantee holds")
    print(" 12-18 s  ML leaves; KVS absorbs vm1's whole share")
    print(" 18-24 s  only WS remains and borrows its way to the full link")


if __name__ == "__main__":
    main()
