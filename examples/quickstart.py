#!/usr/bin/env python3
"""Quickstart: build a FlowValve policy and watch it enforce rates.

This uses FlowValve's *software mode* — the algorithms without the
cycle-cost NIC model — which is the fastest way to understand what
the scheduler does:

1. write a policy in ``fv`` commands (tc-compatible syntax);
2. build a :class:`repro.core.FlowValve` from it;
3. feed packets; every packet gets a FORWARD/DROP verdict.

Here two tenants share a 100 Mbit link 2:1, tenant B may borrow
tenant A's idle share, and we drive three traffic phases to see
weighted sharing, work conservation, and reclaiming.

Run:  python examples/quickstart.py
"""

import heapq

from repro.core import FlowValve
from repro.core.scheduling import Verdict
from repro.core.sched_tree import SchedulingParams
from repro.net import FiveTuple, PacketFactory
from repro.units import format_rate

POLICY = """
# A 100 Mbit link: tenant A gets 2/3, tenant B gets 1/3.
# Each may borrow the other's idle bandwidth (shadow buckets).
fv qdisc add dev eth0 root handle 1: fv default 0
fv class add dev eth0 parent 1: classid 1:1 fv rate 100mbit ceil 100mbit
fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
fv filter add dev eth0 parent 1: match app=tenantA flowid 1:10
fv filter add dev eth0 parent 1: match app=tenantB flowid 1:20
"""

PACKET_SIZE = 1500
WIRE_BITS = (PACKET_SIZE + 20) * 8


def offered_rate(app: str, t: float) -> float:
    """Three phases: both blast; A goes idle; A returns."""
    if app == "tenantA":
        if t < 10 or t >= 20:
            return 150e6
        return 0.0
    return 150e6  # tenant B always wants everything


def main() -> None:
    valve = FlowValve.from_script(
        POLICY,
        link_rate_bps=100e6,
        params=SchedulingParams(update_interval=0.01, expire_after=0.1),
    )
    print(valve.describe())
    print()

    factory = PacketFactory()
    flows = {
        "tenantA": FiveTuple("10.0.0.1", "10.0.1.1", 40001, 5001),
        "tenantB": FiveTuple("10.0.0.2", "10.0.1.1", 40002, 5001),
    }
    forwarded = {app: 0 for app in flows}
    heap = [(0.0, app) for app in sorted(flows)]
    heapq.heapify(heap)
    labels = {10.0: "both active (2:1 split)", 20.0: "A idle, B borrows",
              30.0: "A back, B yields"}
    phase_end = 10.0

    def print_phase():
        ra = forwarded["tenantA"] * WIRE_BITS / 10.0
        rb = forwarded["tenantB"] * WIRE_BITS / 10.0
        print(f"{labels[phase_end]:<28}{format_rate(ra):>14}{format_rate(rb):>14}"
              f"{format_rate(ra + rb):>14}")

    print(f"{'phase':<28}{'tenantA':>14}{'tenantB':>14}{'total':>14}")
    while heap:
        t, app = heapq.heappop(heap)
        if t >= 30.0:
            continue
        if t >= phase_end:
            print_phase()
            forwarded = {a: 0 for a in flows}
            phase_end += 10.0
        rate = offered_rate(app, t)
        if rate <= 0:
            heapq.heappush(heap, (t + 0.1, app))
            continue
        packet = factory.make(PACKET_SIZE, flows[app], t, app=app)
        if valve.process(packet, t) is Verdict.FORWARD:
            forwarded[app] += 1
        heapq.heappush(heap, (t + WIRE_BITS / rate, app))
    print_phase()  # the final (20-30 s) phase

    stats = valve.stats
    print()
    print(f"decisions={stats.decisions} forwarded={stats.forwarded} "
          f"dropped={stats.dropped} borrowed={stats.forwarded_on_borrowed_tokens}")


if __name__ == "__main__":
    main()
