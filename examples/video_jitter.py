#!/usr/bin/env python3
"""Jitter-sensitive traffic: FlowValve vs kernel HTB.

The paper's §V-B observation: "FlowValve almost causes no variations
in delay... This makes FlowValve suitable for scheduling
jitter-sensitive workloads, e.g., the video traffic."

The scenario that makes the contrast visible: a tenant runs a paced
25 Mbit video stream *and* a bulk transfer in the same traffic class
(both classify as App0), while three other tenants saturate their own
classes. Identical policy, identical workload, two schedulers:

* **kernel HTB** queues: the bulk flow keeps the shared class queue
  deep, so every video packet inherits milliseconds of bufferbloat,
  modulated by softirq batching → large jitter;
* **FlowValve** never queues: the bulk flow's excess is *dropped
  early* (specialized tail drop), the NIC pipeline stays empty, and
  the video packets cross at a flat, microsecond-stable latency.

Run:  python examples/video_jitter.py   (~40 s)
"""

from repro.baselines import KernelQdiscRuntime
from repro.core import FlowValveFrontend
from repro.experiments import ScaledSetup
from repro.experiments.fig13 import _fair_htb_tree
from repro.experiments.policies import fair_policy
from repro.host import FixedRateSender, TcpApp, TcpParams, TcpRegistry
from repro.net import Link, PacketFactory, PacketSink
from repro.nic import NicPipeline
from repro.sim import Simulator
from repro.stats.latency import summarize_latencies
from repro.units import format_time

DURATION = 24.0
VIDEO_APP = "App0"


def _add_traffic(sim, setup, factory, submit, registry=None):
    """The shared workload: video + bulk in App0, bulk in App1..3."""
    # The paced video stream (small packets, gentle jitter).
    FixedRateSender(sim, VIDEO_APP, factory, submit,
                    rate_bps=25e6 / (setup.scale / 400),  # 25 Mbit nominal
                    packet_size=1400, vf_index=0,
                    jitter=0.02, rng=sim.random.stream("video"))
    if registry is not None:
        # Kernel run: bulk via TCP (backpressure-aware).
        for i in range(4):
            TcpApp(sim, f"App{i}", registry, factory, submit, n_connections=1,
                   tcp_params=TcpParams(base_rtt=100e-6 * setup.scale), vf_index=i)
    else:
        # FlowValve run: blasting bulk senders.
        for i in range(4):
            FixedRateSender(sim, f"App{i}", factory, submit,
                            rate_bps=0.4 * setup.link_bps, packet_size=1500,
                            vf_index=i, jitter=0.1, rng=sim.random.stream(f"bulk{i}"))


def video_delays_flowvalve(setup: ScaledSetup):
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        fair_policy(setup.link_bps, 4), link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=True,
                      delay_start=DURATION / 3)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive)
    _add_traffic(sim, setup, PacketFactory(), nic.submit)
    sim.run(until=DURATION)
    return sink.delays_by_app[VIDEO_APP]


def video_delays_htb(setup: ScaledSetup):
    sim = Simulator(seed=setup.seed)
    registry = TcpRegistry(sim)
    sink = PacketSink(sim, rate_window=1.0, record_delays=True,
                      delay_start=DURATION / 3,
                      on_delivery=registry.handle_delivery)
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    qdisc = _fair_htb_tree(setup.link_bps, 4)
    for leaf in qdisc._leaves:
        leaf.queue.limit = 1000  # kernel default txqueuelen
    runtime = KernelQdiscRuntime(sim, qdisc, link, params=setup.kernel_params(),
                                 on_drop=registry.handle_drop)
    _add_traffic(sim, setup, PacketFactory(), runtime.enqueue, registry=registry)
    sim.run(until=DURATION)
    return sink.delays_by_app[VIDEO_APP]


def main() -> None:
    setup = ScaledSetup(nominal_link_bps=10e9, scale=400.0, wire_bps=10e9, seed=9)
    fv = summarize_latencies(video_delays_flowvalve(setup)).scaled(1 / setup.scale)
    htb = summarize_latencies(video_delays_htb(setup)).scaled(1 / setup.scale)
    print("one-way delay of the 25 Mbit video stream (sharing a class")
    print("with a bulk flow, three other tenants saturating):\n")
    print(f"{'':14}{'mean':>12}{'p99':>12}{'jitter':>12}{'samples':>9}")
    print(f"{'FlowValve':14}{format_time(fv.mean):>12}{format_time(fv.p99):>12}"
          f"{format_time(fv.jitter):>12}{fv.count:>9}")
    print(f"{'kernel HTB':14}{format_time(htb.mean):>12}{format_time(htb.p99):>12}"
          f"{format_time(htb.jitter):>12}{htb.count:>9}")
    print()
    if fv.jitter > 0:
        print(f"HTB delay is {htb.mean / fv.mean:,.0f}x FlowValve's, its jitter "
              f"{htb.jitter / fv.jitter:,.0f}x — the paper's point about")
        print("jitter-sensitive (video) workloads.")


if __name__ == "__main__":
    main()
