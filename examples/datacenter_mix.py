#!/usr/bin/env python3
"""Realistic data-center traffic mix through FlowValve.

The previous examples drive constant-rate or single-flow traffic; real
tenants look different: a key-value store sends thousands of tiny RPC
responses, an ML service streams multi-megabyte model shards, a web
server serves a heavy-tailed object mix. This example generates that
traffic with the bounded-Pareto workload generator and pushes it
through the motivation-example policy on the simulated SmartNIC.

What to observe: FlowValve's enforcement is *per class*, so KVS's
thousands of mice are protected from ML's elephants by the class
bandwidth split, without any per-flow state beyond the label cache.

Run:  python examples/datacenter_mix.py   (~20 s)
"""

from repro.core import FlowValveFrontend
from repro.experiments import ScaledSetup
from repro.experiments.policies import motivation_policy
from repro.host import TraceWorkload, WORKLOAD_PRESETS
from repro.net import PacketFactory, PacketSink
from repro.nic import NicPipeline
from repro.sim import Simulator

DURATION = 30.0


def main() -> None:
    setup = ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9, seed=11)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive)
    factory = PacketFactory()

    # Offered loads chosen to oversubscribe the (scaled) 10 Gbit link:
    # ML and WS both want more than their shares.
    offered = {
        "KVS": ("kvs", 4e9 / setup.scale),
        "ML": ("ml", 8e9 / setup.scale),
        "WS": ("web", 6e9 / setup.scale),
        "NC": ("kvs", 0.4e9 / setup.scale),  # management RPCs
    }
    workloads = {}
    for index, (app, (preset, load)) in enumerate(offered.items()):
        profile = WORKLOAD_PRESETS[preset]
        # Scale the per-flow pacing with the experiment.
        from dataclasses import replace
        profile = replace(profile, flow_rate_limit_bps=profile.flow_rate_limit_bps / setup.scale)
        workloads[app] = TraceWorkload(
            sim, app, profile, offered_load_bps=load,
            submit=nic.submit, factory=factory, vf_index=index, duration=DURATION,
        )
    sim.run(until=DURATION)

    print(f"{'app':6}{'flows':>8}{'offered':>12}{'achieved':>12}{'share':>9}")
    total = 0.0
    for app, workload in workloads.items():
        series = sink.rates.get(app)
        achieved = (series.mean_rate(5, DURATION) if series else 0.0) * setup.scale
        offered_bps = workload.bytes_offered * 8 / DURATION * setup.scale
        total += achieved
        print(f"{app:6}{workload.flows_started:>8}"
              f"{offered_bps / 1e9:>10.2f}G{achieved / 1e9:>10.2f}G"
              f"{achieved / 10e9:>8.1%}")
    print(f"{'total':6}{'':>8}{'':>12}{total / 1e9:>10.2f}G")
    print()
    print(nic.stats_summary())
    print(f"flow-cache hit ratio: {frontend.labeler.cache_hit_ratio:.3f} "
          f"({len(frontend.labeler.cache)} cached flows)")


if __name__ == "__main__":
    main()
