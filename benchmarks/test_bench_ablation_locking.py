"""A-LOCK — Fig. 7's locking-discipline ablation.

Shape: FlowValve's try-lock (and uncontended per-class blocking) keep
the full multi-core capacity; a single global lock or a serialised
scheduling function collapses throughput by ~an order of magnitude —
the paper's Challenge 1 ("the selected core should always provide the
same throughput as the rest of cores amount to").
"""

from conftest import run_once

from repro.experiments import run_lock_mode_ablation
from repro.experiments.ablations import lock_ablation_table


def test_lock_mode_ablation(benchmark, emit):
    results = run_once(benchmark, run_lock_mode_ablation)
    emit(lock_ablation_table(results).render())

    by_mode = {r.lock_mode: r for r in results}
    trylock = by_mode["trylock"].mpps
    per_class = by_mode["per_class_block"].mpps
    global_block = by_mode["global_block"].mpps
    sequential = by_mode["sequential"].mpps

    # Parallel disciplines sustain the NP's capacity...
    assert trylock > 15.0
    assert per_class > 0.9 * trylock
    # ...serialising collapses it.
    assert global_block < 0.25 * trylock
    assert sequential <= global_block * 1.1
    # Nobody waits on locks in trylock mode; the serialised modes
    # accumulate real waiting time.
    assert by_mode["trylock"].lock_wait_seconds == 0.0
    assert by_mode["sequential"].lock_wait_seconds > 0.01
