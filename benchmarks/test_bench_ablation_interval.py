"""A-INTERVAL — short-window rate conformance vs the update interval.

Shape: with the paper's literal epoch-granted refill, worst-window
overshoot grows with ΔT (a whole epoch of tokens lands at once); with
the hardware-meter (continuous) refill FlowValve actually relies on,
conformance is flat in ΔT. This quantifies why modelling the NFP meter
instruction as continuously-accruing matters (DESIGN.md §5.3).
"""

from conftest import run_once

from repro.experiments import run_update_interval_sensitivity
from repro.stats.report import Table


def test_update_interval_sensitivity(benchmark, emit):
    results = run_once(benchmark, run_update_interval_sensitivity)

    table = Table(
        "A-INTERVAL — worst 0.5 s window overshoot vs ΔT (2x overload)",
        ["ΔT (s)", "epoch-granted refill", "continuous (hw meter)"],
    )
    for interval in sorted(results):
        row = results[interval]
        table.add_row(interval, f"{row['epoch']:.3f}", f"{row['continuous']:.3f}")
    emit(table.render())

    intervals = sorted(results)
    # Continuous refill: flat, small overshoot at every ΔT.
    for interval in intervals:
        assert results[interval]["continuous"] < 0.2
    # Epoch-granted refill: overshoot grows with ΔT and is severe at
    # epoch lengths comparable to the measurement window.
    assert results[intervals[-1]]["epoch"] > 0.5
    assert results[intervals[-1]]["epoch"] > results[intervals[0]]["epoch"]
