"""TCP-realism check: policy conformance under closed-loop TCP.

Not a paper figure — a validity check for the whole reproduction: the
paper's experiments ran real TCP, our headline figures run backlogged
CBR, and this bench shows the two agree. The motivation policy's
sharing regime (NC pinned at 2 G; WS/KVS/ML hungry TCP flows) must
land every class within a few percent of its policy target.
"""

from conftest import run_once

from repro.experiments import run_tcp_realism_shared, tcp_realism_table


def test_tcp_conformance(benchmark, emit):
    result = run_once(benchmark, run_tcp_realism_shared)
    emit(tcp_realism_table(
        result, "TCP realism — motivation policy, closed-loop AIMD senders"
    ).render())

    for app in ("NC", "WS", "KVS", "ML"):
        assert abs(result.drift(app)) < 0.10, (
            f"{app} drifted {result.drift(app):+.1%} from its policy target"
        )
    # Work conservation: the link stays full despite TCP dynamics.
    assert result.total_achieved > 0.95 * result.total_target
