"""E-MEGAFLOW bench — the million-flow batched trace engine.

A 2-nominal-second heavy-tailed mix (KVS mice + web transfers + ML
elephants at 75% link load) pushes 1.14M distinct flows and 1.97M
packets through the full NIC pipeline. Every flow's first packet
misses the exact-match cache, so this pins the three scaling
mechanisms together (DESIGN.md §12):

* **Event budget** (hard asserts): exact event/packet/flow counts for
  the seeded run, and the acceptance ceiling of <= 0.5 events/packet
  (measured: 0.103) — the fluid lane's classification replay keeps
  EMC misses off the eventful path.
* **Constant memory** (hard asserts): the sketch-mode sink's occupied
  buckets stay in the hundreds while 1.86M delay samples stream
  through, every workload ledger folds away, and process peak RSS
  stays far below what per-packet or per-flow state would cost.
* **Artifact**: ``BENCH_megaflow.json`` — the baseline for the CI
  regression gate (``fv bench --workload trace --baseline``), with
  the flow/cache/sketch tallies for localizing a regression.
"""

import os
import resource

from conftest import run_once

from repro.experiments import megaflow
from repro.stats.perf import write_json

#: Exact counts for the seeded canonical run (seed 7, scale 200, 2
#: nominal seconds, batched engines, fluid classify on) —
#: deterministic on any machine.
EXPECTED_FLOWS = 1_139_315
EXPECTED_PACKETS = 1_968_187
EXPECTED_EVENTS = 203_531

#: The headline acceptance ceiling from the issue: the engine must
#: hold a million-flow trace under half an event per packet.
EVENTS_PER_PACKET_CEILING = 0.5

#: Peak-RSS bound (KiB). The run measures ~400 MiB end to end; holding
#: per-packet delivery records or per-flow generator state would cost
#: gigabytes, which is the failure mode this guards against. Headroom
#: covers allocator/platform variance and earlier tests in the same
#: process (ru_maxrss is process-lifetime).
PEAK_RSS_CEILING_KIB = 1_536 * 1024


def test_megaflow_events_per_packet(benchmark, emit):
    run = run_once(benchmark, megaflow.run)

    # Determinism guards: exact counts for seed 7, any machine.
    assert run.flows == EXPECTED_FLOWS
    assert run.perf.packets == EXPECTED_PACKETS
    assert run.perf.events == EXPECTED_EVENTS

    epp = run.perf.events_per_packet
    emit(
        f"megaflow: {run.flows:,} flows, {run.perf.events:,} events / "
        f"{run.perf.packets:,} packets = {epp:.4f} ev/pkt "
        f"(emc: {run.emc_evictions:,} evictions, hit ratio "
        f"{run.emc_hit_ratio:.3f}; sketch bins {run.sketch_bins}; "
        f"peak RSS {run.peak_rss_kib // 1024} MiB; "
        f"wall {run.perf.wall_seconds:.1f}s)"
    )

    # The acceptance gates: a million distinct flows under the event
    # ceiling, with million-entry cache churn actually exercised.
    assert run.flows >= 1_000_000
    assert epp <= EVENTS_PER_PACKET_CEILING
    assert run.emc_misses == run.flows  # every flow's first packet
    assert run.emc_evictions >= 1_000_000
    assert run.miss_absorbed > 0.9 * run.emc_misses

    # Constant-memory gates: the sink's delay stats occupy hundreds of
    # buckets (not 1.86M samples), the generators folded every window
    # ledger into scalars, and the process stayed bounded.
    assert run.sketch_bins < 4_096
    assert run.windows > 0
    assert run.peak_rss_kib <= PEAK_RSS_CEILING_KIB
    assert resource.getrusage(resource.RUSAGE_SELF).ru_maxrss <= PEAK_RSS_CEILING_KIB

    out = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "BENCH_megaflow.json")
    )
    write_json(
        out,
        run.perf,
        extra={
            "seed": megaflow.DEFAULT_SETUP.seed,
            "shards": 1,
            # Recorded workload: the `fv bench --baseline` gate only
            # compares artifacts from the same workload.
            "workload": "trace",
            **run.extra(),
        },
    )
