"""E-F14 — regenerate Figure 14: one-way delay under fair queueing.

Shape assertions:

* FlowValve has the lowest delay at 10 Gbit;
* its 40 Gbit delay is ~4× the 10 Gbit one (the SmartNIC pipeline
  floor), near the paper's 161 µs;
* FlowValve "almost causes no variations in delay" — jitter orders of
  magnitude below HTB's;
* kernel HTB (10 Gbit only) is the slowest and jitteriest.
"""

from conftest import run_once

from repro.experiments import run_fig14
from repro.experiments.fig14 import fig14_table


def test_fig14_one_way_delay(benchmark, emit):
    rows = run_once(benchmark, run_fig14)
    emit(fig14_table(rows).render())

    cells = {(row.scheduler, row.line_rate_bps): row.summary for row in rows}
    fv10 = cells[("FlowValve", 10e9)]
    fv40 = cells[("FlowValve", 40e9)]
    htb10 = cells[("Linux HTB", 10e9)]
    dpdk10 = cells[("DPDK QoS", 10e9)]

    # FlowValve lowest at 10 Gbit.
    assert fv10.mean < dpdk10.mean < htb10.mean

    # ~4x growth from 10 to 40 Gbit, near the paper's 161 us floor.
    ratio = fv40.mean / fv10.mean
    assert 3.0 < ratio < 5.5, f"expected ~4x delay growth, got {ratio:.1f}x"
    assert 120e-6 < fv40.mean < 200e-6

    # Near-zero jitter for FlowValve; HTB jitter dominates everything.
    assert fv10.jitter < 5e-6
    assert fv40.jitter < 5e-6
    assert htb10.jitter > 20 * fv10.jitter
