"""E-F3 — regenerate Figure 3: kernel HTB mis-enforcing the
motivation policy.

Shape assertions (the paper's three observations):

1. NC's service is *inaccurate* even while NC is alone — its rate
   wobbles around (and across) the 10 Gbit ceiling instead of sitting
   cleanly on it, unlike FlowValve's flat line in Fig. 11(a);
2. total throughput between 15 s and 45 s exceeds the 10 Gbit ceiling;
3. KVS and ML split their share ~equally despite the priority setting.
"""

from conftest import run_once

from repro.experiments import run_fig03


def test_fig03_kernel_htb_motivation(benchmark, emit):
    result = run_once(benchmark, run_fig03)
    emit(result.to_table().render() + f"\n[{result.notes}]")

    # Observation 1: NC's lone-phase rate is inaccurate — bins wobble
    # by hundreds of Mbit and stray across the configured ceiling.
    nc_bins = [result.mean_rate("NC", t, t + 5) for t in (0, 5, 10)]
    assert max(nc_bins) - min(nc_bins) > 0.03 * 10e9
    assert any(abs(b - 10e9) > 0.015 * 10e9 for b in nc_bins)
    assert min(nc_bins) > 0.75 * 10e9  # ...but service is not collapsed.

    # Observation 2: the 10 Gbit ceiling is overshot while contended.
    overshoot = result.total_rate(20, 45)
    assert overshoot > 1.05 * 10e9, f"expected ceiling overshoot, got {overshoot/1e9:.2f}G"

    # Observation 3: priority between KVS and ML is ignored (15-30 s).
    kvs = result.mean_rate("KVS", 20, 30)
    ml = result.mean_rate("ML", 20, 30)
    assert kvs == __import__("pytest").approx(ml, rel=0.15), (
        f"kernel HTB should split KVS/ML evenly, got {kvs/1e9:.2f}G vs {ml/1e9:.2f}G"
    )
