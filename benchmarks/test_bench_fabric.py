"""E-FABRIC bench — kernel-event budget of the sharded ring fabric.

The single-NIC hot path runs at 0.083 events/packet; before the fluid
lane learned to emit and absorb cross-shard wire trains the fabric
forfeited that and paid ~4.2 (boundary NICs fell back to the
per-packet fast path). This bench pins the recovered budget:

* **Deterministic** (hard asserts): exact event/packet counts of the
  seeded 8-host ring, the events/packet ceiling (<= 0.2, within 2x of
  the single-NIC ratio), bit-identical tallies across shard counts and
  with the lane off, and the exact fluid-off event count (the
  fallback-exactness guard, as in the hot-path bench).
* **Artifact**: ``BENCH_fabric.json`` — recorded at ``shards=2`` so
  the CI fabric regression gate (``fv bench --shards 2 --baseline``)
  compares like with like, with the lane counters and per-domain
  event breakdown for localizing a regression.
"""

import os

from conftest import run_once

from repro.experiments import fabric
from repro.stats.perf import HotpathResult, write_json

#: Expected counts for the seeded fabric run (seed 7, 8 hosts, 2 s,
#: scale 2000) — deterministic on any machine and for any shard count.
#: 981 events / 6,028 packets = 0.163 ev/pkt with the fluid lane
#: emitting/absorbing boundary trains (was 25,160 / 4.17 with the lane
#: disengaged on boundary NICs).
EXPECTED_EVENTS = 981
EXPECTED_PACKETS = 6_028

#: With the lane off the fabric must reproduce the per-packet fast
#: path exactly — the same fallback-exactness contract the single-NIC
#: bench pins with its fluid-off count.
EXPECTED_EVENTS_FLUID_OFF = 25_160

HOSTS = 8
DURATION = 2.0

#: The single-NIC hot-path ratio (BENCH_hotpath.json); the acceptance
#: target is the fabric within 2x of it.
SINGLE_NIC_EVENTS_PER_PACKET = 14_843 / 179_154


def _tallies(result: fabric.FabricResult):
    return (
        result.total_packets,
        result.total_submitted,
        result.total_dropped,
        result.app_rates,
    )


def test_fabric_events_per_packet(benchmark, emit):
    run = run_once(
        benchmark,
        lambda: fabric.run(hosts=HOSTS, shards=2, duration=DURATION),
    )

    # Determinism guards: exact counts for seed 7, any machine.
    assert run.total_events == EXPECTED_EVENTS
    assert run.total_packets == EXPECTED_PACKETS

    epp = run.events_per_packet
    emit(
        f"fabric{HOSTS}-shards2: {run.total_events} events / "
        f"{run.total_packets} packets = {epp:.4f} ev/pkt "
        f"(lane: {run.fluid_absorbed} absorbed, {run.fluid_spills} "
        f"spilled, {run.fluid_suspends} suspends; wall {run.wall_seconds:.2f}s)"
    )

    # The acceptance ceiling: <= 0.2 ev/pkt on the 8-host ring, within
    # 2x of the single-NIC hot path. Both are deterministic ratios.
    assert epp <= 0.2
    assert epp <= 2.0 * SINGLE_NIC_EVENTS_PER_PACKET
    # The lane must be doing the work, not a workload shrink: nearly
    # everything submitted is absorbed analytically.
    assert run.fluid_absorbed > 0.99 * (run.fluid_absorbed + run.fluid_spills)

    safe_wall = run.wall_seconds if run.wall_seconds > 0 else float("inf")
    result = HotpathResult(
        label=f"fabric{HOSTS}-shards2-scale{fabric.DEFAULT_SETUP.scale:g}-{DURATION:g}s",
        wall_seconds=run.wall_seconds,
        events=run.total_events,
        packets=run.total_packets,
        events_per_sec=run.total_events / safe_wall,
        packets_per_sec=run.total_packets / safe_wall,
        events_per_packet=epp,
    )
    out = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "BENCH_fabric.json")
    )
    write_json(
        out,
        result,
        extra={
            "seed": fabric.DEFAULT_SETUP.seed,
            "hosts": HOSTS,
            # Recorded shard count: the `fv bench --baseline` gate only
            # compares artifacts from the same shard count.
            "shards": 2,
            "workers": run.workers,
            "fluid_absorbed": run.fluid_absorbed,
            "fluid_spills": run.fluid_spills,
            "fluid_suspends": run.fluid_suspends,
            "domain_events": run.domain_events,
        },
    )


def test_fabric_shard_counts_are_identical(emit):
    """shards=1 and shards=2 must agree on every deterministic field —
    including the kernel-event total, now that absorption decisions are
    window-invariant (the carry horizon looks through barriers)."""
    r1 = fabric.run(hosts=HOSTS, shards=1, duration=DURATION)
    r2 = fabric.run(hosts=HOSTS, shards=2, duration=DURATION)
    assert _tallies(r1) == _tallies(r2)
    assert r1.total_events == r2.total_events == EXPECTED_EVENTS
    assert r1.domain_events == r2.domain_events
    assert (r1.fluid_absorbed, r1.fluid_spills, r1.fluid_suspends) == (
        r2.fluid_absorbed, r2.fluid_spills, r2.fluid_suspends
    )
    emit(f"shards 1 vs 2: identical ({r1.total_events} events)")


def test_fabric_fluid_off_reproduces_packet_path(emit):
    """The lane off must replay the per-packet fabric exactly: same
    tallies, and the exact pre-fluid event count."""
    on = fabric.run(hosts=HOSTS, shards=1, duration=DURATION)

    from repro.topology import ScaledSetup

    class NoFluidSetup(ScaledSetup):
        def nic_config(self, **overrides):
            overrides.setdefault("fluid", False)
            return super().nic_config(**overrides)

    # Same construction as fabric.DEFAULT_SETUP, lane off.
    off = fabric.run(
        NoFluidSetup(scale=2000.0), hosts=HOSTS, shards=1, duration=DURATION
    )
    assert _tallies(on) == _tallies(off)
    assert off.total_events == EXPECTED_EVENTS_FLUID_OFF
    assert (off.fluid_absorbed, off.fluid_spills, off.fluid_suspends) == (0, 0, 0)
    emit(
        f"fluid off: {off.total_events} events (on: {on.total_events}, "
        f"{off.total_events / on.total_events:.1f}x cut), tallies identical"
    )
