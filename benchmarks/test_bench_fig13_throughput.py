"""E-F13 — regenerate Figure 13: maximum throughput vs packet size.

Shape assertions:

* FlowValve reaches line rate for ≥512 B frames and is NP-bound near
  the paper's 19.69 Mpps at 64 B;
* DPDK QoS is scheduler-core-bound (~2.25 Mpps/core) and loses to
  FlowValve at every size;
* the FlowValve:DPDK gap *widens* as packets shrink (the paper's
  "becomes more obvious as the packet rate increases").
"""

import pytest
from conftest import run_once

from repro.experiments import run_fig13
from repro.experiments.fig13 import fig13_table


def test_fig13_max_throughput(benchmark, emit):
    rows = run_once(benchmark, run_fig13)
    emit(fig13_table(rows).render())

    by_size = {row.size: row for row in rows}

    # FlowValve: line-rate-bound for large frames...
    for size in (512, 1024, 1518):
        row = by_size[size]
        assert row.flowvalve_mpps == pytest.approx(row.line_rate_mpps, rel=0.05)
    # ...and NP-processing-bound at 64 B, near the paper's 19.69 Mpps.
    assert by_size[64].flowvalve_mpps == pytest.approx(19.69, rel=0.1)

    # DPDK: ~2.25 Mpps per core at the published core counts.
    assert by_size[1518].dpdk_mpps == pytest.approx(2.25, rel=0.1)
    assert by_size[1024].dpdk_mpps == pytest.approx(4.49, rel=0.1)
    assert by_size[64].dpdk_mpps == pytest.approx(9.06, rel=0.15)

    # FlowValve wins everywhere, and the gap widens at small frames.
    for row in rows:
        assert row.flowvalve_mpps > row.dpdk_mpps
    gap_large = by_size[1518].flowvalve_mpps / by_size[1518].dpdk_mpps
    gap_small = by_size[64].flowvalve_mpps / by_size[64].dpdk_mpps
    assert gap_small > gap_large
