"""E-CPU — the §V-B core-saving claim.

Shape assertions:

* FlowValve's scheduling cost on the host is ~zero (it is offloaded);
* DPDK QoS burns at least one dedicated core at 1518 B and more at
  64 B (the claim: FlowValve "contributes to saving at least two CPU
  cores", growing with packet rate);
* kernel HTB both costs cores *and* fails to reach the offered rate
  at 40 Gbit.
"""

from conftest import run_once

from repro.experiments import run_cpu_comparison
from repro.experiments.cpu_cores import cpu_table


def run_both():
    rows = run_cpu_comparison(packet_size=1518, duration=15.0)
    rows += run_cpu_comparison(packet_size=64, duration=15.0, scale=2000.0)
    return rows


def test_cpu_core_saving(benchmark, emit):
    rows = run_once(benchmark, run_both)
    emit(cpu_table(rows).render())

    by_key = {(r.scheduler, r.packet_size): r for r in rows}
    fv_large = by_key[("FlowValve", 1518)]
    dpdk_large = by_key[("DPDK QoS", 1518)]
    htb_large = by_key[("Linux HTB", 1518)]
    fv_small = by_key[("FlowValve", 64)]
    dpdk_small = by_key[("DPDK QoS", 64)]

    # FlowValve: no host scheduling cost at all.
    assert fv_large.sched_cores < 0.05
    assert fv_small.sched_cores < 0.05

    # DPDK: ≥1 dedicated core at 1518 B, more at 64 B (saving grows
    # with packet rate).
    assert dpdk_large.sched_cores >= 0.95
    assert dpdk_small.sched_cores > dpdk_large.sched_cores

    # Aggregate saving at small packets reaches the "at least two
    # cores" the paper claims (DPDK's cores + HTB's even more).
    assert dpdk_small.sched_cores + htb_large.sched_cores > 2.0

    # Kernel HTB can't reach the offered rate at 40 Gbit even while
    # burning cores.
    assert htb_large.throughput_mpps < 0.5 * fv_large.throughput_mpps
