"""E-F11c — regenerate Figure 11(c): 40 Gbit weighted fair queueing
with the Fig. 12 hierarchy (App0:S1 = App1:S2 = App2:App3 = 1:1).

Shape claims from the paper:

* with App0/App1/App3 active, nominal weighted shares hold
  (App0 = 20 G, App1 = 10 G; App3 inherits S2's 10 G while App2 idle);
* "the appearance of App2's traffic at time 20 s does not affect the
  traffic of App0" — App0 stays at its 20 G share;
* when App0 stops at 30 s the remaining classes share the link
  without weighted borrowing (roughly equally).
"""

import pytest
from conftest import run_once

from repro.experiments import run_fig11c


def test_fig11c_weighted_fair_queueing(benchmark, emit):
    result = run_once(benchmark, run_fig11c)
    emit(result.to_table().render() + f"\n[{result.notes}]")

    link = 40e9
    # Before App2 joins: App0 half, App1 quarter, App3 the rest.
    assert result.mean_rate("App0", 10, 20) == pytest.approx(link / 2, rel=0.1)
    assert result.mean_rate("App1", 10, 20) == pytest.approx(link / 4, rel=0.15)

    # App2's arrival must not disturb App0 (the paper's headline claim).
    before = result.mean_rate("App0", 10, 20)
    after = result.mean_rate("App0", 20, 30)
    assert after == pytest.approx(before, rel=0.08)

    # App2+App3 split S2's share while App0/App1 keep theirs (20-30 s).
    assert result.mean_rate("App2", 20, 30) == pytest.approx(link / 8, rel=0.25)
    assert result.mean_rate("App3", 20, 30) == pytest.approx(link / 8, rel=0.25)

    # App0 stops at 30 s: the rest share the link, none starved, link
    # still saturated.
    for app in ("App1", "App2", "App3"):
        share = result.mean_rate(app, 40, 60)
        assert share > link / 6, f"{app} starved at {share/1e9:.1f}G"
    assert result.total_rate(40, 60) > 0.9 * link
