"""A-DELAY — Fig. 10's token-rate propagation analysis, measured.

Shape: after a step change in the top priority class's rate, each
deeper class's θ settles one-to-a-few update epochs later than the
class above it — the paper's ΔD_A1 < ΔD_A2 ordering — and absolute
settle times stay within tens of epochs.
"""

from conftest import run_once

from repro.experiments import run_propagation_delay
from repro.stats.report import Table


def test_propagation_delay_grows_with_depth(benchmark, emit):
    results = run_once(benchmark, run_propagation_delay)

    table = Table(
        "A-DELAY — θ settle time after a step in the top class (Fig. 10)",
        ["class", "tree depth", "settle (s)", "settle (epochs)"],
    )
    for r in results:
        table.add_row(r.classid, r.depth, r.settle_seconds, r.settle_epochs)
    emit(table.render())

    assert len(results) >= 2
    # Ordered by depth: deeper classes settle no earlier.
    for shallower, deeper in zip(results, results[1:]):
        assert deeper.depth > shallower.depth
        assert deeper.settle_epochs >= shallower.settle_epochs
    # Everything converges within tens of epochs (the paper's "tens of
    # milliseconds" at hardware epoch lengths).
    for r in results:
        assert r.settle_epochs < 40
