"""E-PERF — hot-path microbenchmark of the DES kernel + NIC pipeline.

Runs the Fig. 11(a) motivation workload (scale=200) for 20 simulated
seconds and records kernel events/sec and end-to-end packets/sec via
:mod:`repro.stats.perf`, persisting the numbers to
``BENCH_hotpath.json`` next to the other bench artifacts.

Two kinds of guards:

* **Deterministic** (hard asserts): the exact event and packet counts
  of this seeded run, and the events-per-packet ratio vs. the v0 seed
  code. These reproduce bit-identically on any machine — if they move,
  kernel or pipeline semantics changed (the golden-trace suite will
  usually fail first).
* **Throughput** (reported, sanity-bounded): pkt/s and the speedup
  over the seed baseline measured interleaved on the same host. Wall
  clock is machine-dependent, so the hard floor is deliberately loose;
  the headline ratio lands in the JSON and the bench output.
"""

import json
import os

import pytest
from conftest import run_once

from repro.experiments import hotpath
from repro.stats.perf import measure_run, write_json

# v0 seed-code reference constants (commit c37e241) live next to the
# workload builder so `fv bench` reports the same baselines.
SEED_EVENTS = hotpath.SEED_EVENTS
SEED_PACKETS = hotpath.SEED_PACKETS
SEED_PKT_PER_SEC = hotpath.SEED_PKT_PER_SEC

#: Expected counts for the optimized build — deterministic for seed 7.
#: 14,843 events / 179,154 packets = 0.083 ev/pkt with the fluid
#: fast-forward lane absorbing quiescent-flow packets analytically on
#: top of batched ingress/egress (was 451,618 / 2.52 with batching
#: alone, 919,441 / 5.13 with egress batching only, 1,789,426 / 9.99
#: before that, 16.1 in the v0 seed).
EXPECTED_EVENTS = 14_843
EXPECTED_PACKETS = 179_154

#: With the fluid lane disabled the run must reproduce the batched
#: per-packet path exactly — same counts as the pre-fluid build. This
#: is the fallback-exactness guard: fluid=off is not "roughly the
#: same", it is the identical event sequence.
EXPECTED_EVENTS_FLUID_OFF = 451_618

DURATION = hotpath.DEFAULT_DURATION


def test_hotpath_events_and_packets_per_sec(benchmark, emit):
    # The workload builder is shared with `fv campaign run hotpath`
    # (repro.experiments.hotpath); construction order is part of the
    # deterministic contract asserted below.
    sim, nic = hotpath.build()
    result = run_once(
        benchmark,
        lambda: measure_run(
            sim,
            lambda: sim.run(until=DURATION),
            lambda: nic.submitted,
            label="fig11a-scale200-20s",
        ),
    )

    # Determinism guards: exact counts for seed 7, any machine.
    assert result.events == EXPECTED_EVENTS
    assert result.packets == EXPECTED_PACKETS

    speedup_pkt = result.packets_per_sec / SEED_PKT_PER_SEC
    events_ratio = SEED_EVENTS / result.events

    # The fabric events/packet row (E-FABRIC): the sharded 8-host ring
    # with the fluid lane emitting/absorbing boundary trains. Cheap
    # (~0.2 s) and deterministic; the full fabric bench with its own
    # committed baseline lives in test_bench_fabric.py.
    from repro.experiments import fabric

    fab = fabric.run(hosts=8, shards=1, duration=2.0)
    fabric_row = {
        "label": f"fabric8-scale{fabric.DEFAULT_SETUP.scale:g}-2s",
        "events": fab.total_events,
        "packets": fab.total_packets,
        "events_per_packet": fab.events_per_packet,
        "fluid_absorbed": fab.fluid_absorbed,
        "fluid_spills": fab.fluid_spills,
        "fluid_suspends": fab.fluid_suspends,
    }

    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")
    write_json(
        os.path.normpath(out),
        result,
        extra={
            "seed_events": SEED_EVENTS,
            "seed_packets": SEED_PACKETS,
            "seed_pkt_per_sec_ref": SEED_PKT_PER_SEC,
            "speedup_pkt_per_sec_vs_seed": speedup_pkt,
            "kernel_events_cut_vs_seed": events_ratio,
            # Single-NIC hot path: the `fv bench --baseline` gate skips
            # artifacts recorded at a different shard count.
            "shards": 1,
            "workers": 1,
            "fabric": fabric_row,
        },
    )
    emit(
        result.summary()
        + f"\nvs seed: {speedup_pkt:.2f}x pkt/s (ref {SEED_PKT_PER_SEC:,.0f}), "
        f"{events_ratio:.2f}x fewer kernel events "
        f"({SEED_EVENTS} -> {result.events})"
    )

    # The fluid lane on top of batched ingress/egress cuts the seed's
    # kernel events ~194x (16.1 -> 0.083 ev/pkt) — this ratio is
    # deterministic, so assert a floor just under it.
    assert events_ratio > 190.0
    # Loose wall-clock sanity floor (the real target, >= 2x the seed's
    # ~17.5k pkt/s, is recorded in BENCH_hotpath.json; a hard 2x assert
    # here would flake on loaded CI machines).
    assert result.packets_per_sec > 0.5 * SEED_PKT_PER_SEC


def test_hotpath_fluid_off_reproduces_packet_path(benchmark, emit):
    """fluid=off must replay the committed per-packet world exactly.

    The fluid lane's contract is bit-identity with deferral, so turning
    it off has to reproduce the pre-fluid event count to the event —
    any drift means the off-path (or the kernel underneath it) changed
    semantics, not just performance.
    """
    sim, nic = hotpath.build(fluid=False)
    result = run_once(
        benchmark,
        lambda: measure_run(
            sim,
            lambda: sim.run(until=DURATION),
            lambda: nic.submitted,
            label="fig11a-scale200-20s-fluid-off",
        ),
    )
    assert result.events == EXPECTED_EVENTS_FLUID_OFF
    assert result.packets == EXPECTED_PACKETS
    emit(result.summary())


def test_hotpath_json_artifact_is_readable():
    """The previous test's artifact parses and has the headline keys."""
    path = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")
    )
    if not os.path.exists(path):
        pytest.skip("BENCH_hotpath.json not generated in this session")
    with open(path) as fh:
        payload = json.load(fh)
    for key in (
        "events_per_sec",
        "packets_per_sec",
        "events_per_packet",
        "speedup_pkt_per_sec_vs_seed",
    ):
        assert key in payload
