"""E-F11a — regenerate Figure 11(a): FlowValve enforcing the
motivation policy at 10 Gbit.

Shape assertions (the paper's claims for this figure):

* NC gets all available bandwidth while alone (vs HTB's shortfall);
* from 15-30 s bandwidth distributes per weight and priority: NC at
  its 2 Gbit demand, WS ≈ (link−NC)/3, KVS ≈ S2−guarantee, ML held at
  its 2 Gbit guarantee;
* the total never exceeds the link;
* after everyone leaves, WS work-conserves to the full link.
"""

import pytest
from conftest import run_once

from repro.experiments import run_fig11a


def test_fig11a_flowvalve_motivation(benchmark, emit):
    result = run_once(benchmark, run_fig11a)
    emit(result.to_table().render() + f"\n[{result.notes}]")

    link = 10e9
    # NC takes the whole link while alone (better than HTB's Fig. 3).
    assert result.mean_rate("NC", 5, 15) > 0.93 * link

    # 15-30 s: weight + priority + guarantee all hold.
    assert result.mean_rate("NC", 20, 30) == pytest.approx(2e9, rel=0.1)
    assert result.mean_rate("WS", 20, 30) == pytest.approx(2.5e9, rel=0.2)
    assert result.mean_rate("KVS", 20, 30) == pytest.approx(3.1e9, rel=0.2)
    assert result.mean_rate("ML", 20, 30) == pytest.approx(2.0e9, rel=0.15)
    # Unlike kernel HTB, priority between KVS and ML is enforced.
    assert result.mean_rate("KVS", 20, 30) > 1.25 * result.mean_rate("ML", 20, 30)

    # The ceiling holds at all times (vs HTB's 12 Gbit).
    for start in range(0, 60, 5):
        assert result.total_rate(start, start + 5) < 1.02 * link

    # 30-45 s: ML gone, KVS absorbs the S2 share.
    assert result.mean_rate("KVS", 35, 45) > 1.35 * result.mean_rate("KVS", 20, 30)

    # 45-60 s: WS alone reclaims (close to) the whole link.
    assert result.mean_rate("WS", 50, 60) > 0.93 * link
