"""Micro-benchmarks of the hot-path primitives.

Not a paper figure — these guard the simulator's own performance so
the figure benches stay runnable: the event loop, the meter, the
classifier slow path vs the flow-cache fast path, and a full
software-mode scheduling decision.
"""

import pytest

from repro.core import FlowValve
from repro.core.sched_tree import SchedulingParams
from repro.core.token_bucket import TokenBucket
from repro.net import FiveTuple, PacketFactory
from repro.sim import Simulator


@pytest.fixture
def valve():
    script = """
    fv qdisc add dev eth0 root handle 1: fv default 0
    fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit ceil 10gbit
    fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
    fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
    fv filter add dev eth0 parent 1: match app=A flowid 1:10
    fv filter add dev eth0 parent 1: match app=B flowid 1:20
    """
    return FlowValve.from_script(
        script, link_rate_bps=10e9,
        params=SchedulingParams(update_interval=0.001, expire_after=0.01),
    )


def test_bench_event_loop(benchmark):
    """Raw kernel throughput: schedule+run 10k trivial events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, int)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events == 10_000


def test_bench_meter(benchmark):
    """The atomic meter primitive."""
    bucket = TokenBucket(10e9, 1e9)

    def run():
        bucket.refill(0.0)
        return bucket.meter(12_160.0)

    benchmark(run)


def test_bench_scheduling_decision(benchmark, valve):
    """A full software-mode Algorithm 1 decision (cache-hot flow)."""
    factory = PacketFactory()
    flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 80)
    state = {"t": 0.0}
    # Warm the flow cache.
    valve.process(factory.make(1500, flow, 0.0, app="A"), 0.0)

    def run():
        state["t"] += 1e-5
        packet = factory.make(1500, flow, state["t"], app="A")
        return valve.process(packet, state["t"])

    benchmark(run)
    assert valve.labeler.cache_hit_ratio > 0.99


def test_bench_classifier_slow_path(benchmark, valve):
    """Rule-walk classification without the flow cache."""
    factory = PacketFactory()
    flow = FiveTuple("10.0.0.2", "10.0.1.1", 2, 80)
    packet = factory.make(1500, flow, 0.0, app="B")

    def run():
        return valve.frontend.classifier.classify(packet)

    result = benchmark(run)
    assert result == "1:20"
