"""Benchmark-suite helpers.

Every bench regenerates one of the paper's tables/figures and prints
it through :func:`emit` so the rendered rows land in the captured
bench output (``bench_output.txt``) right next to the timing table.
Shape assertions in each bench guard the *qualitative* claims (who
wins, rough factors, crossovers) rather than absolute numbers.
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture
def emit(capsys):
    """Print *text* to the real stdout, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")
            sys.stdout.flush()

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — re-running them
    only re-measures the host machine, so one round is the right
    trade.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
