"""E-F11b — regenerate Figure 11(b): 40 Gbit fair queueing.

Shape: each staggered join re-divides the line rate evenly
(≈40 → 20 → 13.3 → 10 Gbit per app), and the link stays saturated
throughout ("FlowValve precisely distributes bandwidth among active
flows and drives line rate").
"""

import pytest
from conftest import run_once

from repro.experiments import run_fig11b


def test_fig11b_fair_queueing(benchmark, emit):
    result = run_once(benchmark, run_fig11b)
    emit(result.to_table().render() + f"\n[{result.notes}]")

    link = 40e9
    # Phase means (apps join at 0/10/20/30 s).
    assert result.mean_rate("App0", 5, 10) > 0.9 * link
    for app in ("App0", "App1"):
        assert result.mean_rate(app, 15, 20) == pytest.approx(link / 2, rel=0.08)
    for app in ("App0", "App1", "App2"):
        assert result.mean_rate(app, 25, 30) == pytest.approx(link / 3, rel=0.08)
    for app in ("App0", "App1", "App2", "App3"):
        assert result.mean_rate(app, 40, 60) == pytest.approx(link / 4, rel=0.08)

    # Line rate is sustained once more than one app is active.
    for start in range(15, 60, 5):
        assert result.total_rate(start, start + 5) > 0.92 * link
