"""FlowValve reproduction: packet scheduling offloaded on NP-based
SmartNICs (ICDCS 2022), rebuilt as a simulation-first Python library.

Quick tour (see README.md for the full map):

>>> from repro import FlowValve, SchedulingParams
>>> valve = FlowValve.from_script('''
...     fv qdisc add dev eth0 root handle 1: fv default 0
...     fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit ceil 10gbit
...     fv class add dev eth0 parent 1:1 classid 1:10 fv weight 2 borrow 1:20
...     fv class add dev eth0 parent 1:1 classid 1:20 fv weight 1 borrow 1:10
...     fv filter add dev eth0 parent 1: match app=A flowid 1:10
...     fv filter add dev eth0 parent 1: match app=B flowid 1:20
... ''', link_rate_bps=10e9)

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event simulation kernel.
``repro.net``
    Packets, flows, links, sinks.
``repro.nic``
    The NP-based SmartNIC model (micro-engine workers, memory
    hierarchy, rings, reorder system, traffic manager).
``repro.tc``
    Traffic-control front end: ``fv``/``tc`` parser, classifier,
    validation.
``repro.core``
    FlowValve itself: scheduling trees, token/shadow buckets,
    condition templates, Algorithm 1, labeling, offload compilation.
``repro.baselines``
    Linux PRIO/HTB with the kernel execution model, and the DPDK QoS
    Scheduler.
``repro.host``
    End-host model: CPU accounting, ack-clocked AIMD TCP, workload
    generators.
``repro.topology``
    Declarative construction: ``Topology`` + ``SimulationSpec`` — the
    one public way to build and run a simulation (single- or
    multi-domain, sharded across worker processes).
``repro.experiments``
    The evaluation harness — one module per paper figure/table.
"""

from .core import (
    FlowValve,
    FlowValveFrontend,
    SchedulingFunction,
    SchedulingParams,
    SchedulingTree,
    Verdict,
)
from .core.offload import compile_offload
from .net import FiveTuple, Link, Packet, PacketFactory, PacketSink
from .nic import NicConfig, NicPipeline
from .sched import Scheduler, build_scheduler, scheduler_names
from .sim import ShardPlan, Simulator
from .tc import PolicyConfig, parse_script, validate_policy
from .topology import (
    ScaledSetup,
    SimulationResult,
    DomainSummary,
    SimulationSpec,
    Topology,
)
from .units import format_rate, parse_rate

__version__ = "1.0.0"

__all__ = [
    "FlowValve",
    "FlowValveFrontend",
    "SchedulingFunction",
    "SchedulingParams",
    "SchedulingTree",
    "Verdict",
    "compile_offload",
    "FiveTuple",
    "Link",
    "Packet",
    "PacketFactory",
    "PacketSink",
    "NicConfig",
    "NicPipeline",
    "Scheduler",
    "build_scheduler",
    "scheduler_names",
    "ShardPlan",
    "Simulator",
    "Topology",
    "SimulationSpec",
    "SimulationResult",
    "DomainSummary",
    "ScaledSetup",
    "PolicyConfig",
    "parse_script",
    "validate_policy",
    "format_rate",
    "parse_rate",
    "__version__",
]
