"""Generator-based simulation processes.

A process is a Python generator that ``yield``\\ s *waitables* —
:class:`~repro.sim.events.SimEvent` instances (timeouts, resource
acquisitions, other processes) or a bare ``float``/``int`` which is
shorthand for ``sim.timeout(value)``.

Example::

    def sender(sim, link):
        for i in range(10):
            yield 0.001                 # pace at 1 ms
            link.transmit(make_packet(i))

    sim.process(sender(sim, link))
    sim.run()

A :class:`Process` is itself a :class:`SimEvent` that succeeds with the
generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from heapq import heappush

from ..errors import ProcessError
from .events import SimEvent

__all__ = ["At", "Process"]


class At:
    """A yield target resuming a process at an *absolute* time.

    ``yield At(t)`` resumes the process at exactly ``t`` (which must
    not lie in the past). This exists for fast paths that pre-compute
    a composite wake-up time from several cost terms: re-expressing it
    as a delay (``t - now``) and letting the kernel add ``now`` back
    would not round-trip bit-identically in floating point, and the
    hot-path contract (DESIGN.md §7) requires resume timestamps to
    match the multi-yield slow path to the last ulp.

    Instances are mutable so one can be reused across the yields of a
    single packet: the kernel reads ``.time`` synchronously.
    """

    __slots__ = ("time",)

    def __init__(self, time: float):
        self.time = time


class Process(SimEvent):
    """Drives a generator through the simulation kernel.

    Created through :meth:`Simulator.process`; triggering semantics:

    * succeeds with the generator's ``return`` value when it finishes;
    * fails with the exception if the generator raises;
    * :meth:`interrupt` throws :class:`ProcessInterrupt` into the
      generator at the current timestamp.
    """

    __slots__ = ("_generator", "_alive", "_send", "_throw")

    def __init__(self, sim: Any, generator: Generator[Any, Any, Any]):
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"sim.process() needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        super().__init__(sim)
        self._generator = generator
        self._alive = True
        # Bound methods cached once: _resume runs per simulated event.
        self._send = generator.send
        self._throw = generator.throw
        # Kick off on the current timestamp, after the caller returns.
        sim.schedule(0.0, self._resume, None, None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process now."""
        if not self._alive:
            return
        self.sim.schedule(0.0, self._resume, None, ProcessInterrupt(cause))

    # ------------------------------------------------------------------
    def _resume(self, send_value: Any, throw_exc: Any) -> None:
        if not self._alive:
            return
        try:
            if throw_exc is not None:
                yielded = self._throw(throw_exc)
            else:
                yielded = self._send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(getattr(stop, "value", None))
            return
        except ProcessInterrupt:
            # Interrupt not handled by the process body: treat as a
            # clean cancellation.
            self._alive = False
            self.succeed(None)
            return
        except Exception as exc:
            self._alive = False
            self.fail(exc)
            return
        # Fast path, inlined from _wait_on: a bare delay schedules the
        # resume directly — no intermediate timeout SimEvent, no
        # subscription, and one queued event instead of two. The resume
        # fires at the seq the timeout's *succeed* would have had, which
        # keeps relative order among delay-yielding processes identical.
        # The queue insert is open-coded (mirroring Simulator.schedule)
        # and pushes a bare ``(time, seq, resume)`` entry — the resume
        # lane of EventQueue — skipping the Event handle allocation:
        # this is the single most frequent schedule in packet workloads
        # and nothing ever cancels it.
        cls = yielded.__class__
        if cls is float or cls is int:
            if yielded > 0.0:
                sim = self.sim
                queue = sim._queue
                heappush(
                    queue._heap,
                    (sim._now + yielded, next(queue._counter), self._resume),
                )
                queue._live += 1
            else:
                # Zero routes through schedule's now-queue path;
                # negative raises there.
                self.sim.schedule(yielded, self._resume, None, None)
            return
        if cls is At:
            time = yielded.time
            sim = self.sim
            if time > sim._now:
                queue = sim._queue
                heappush(queue._heap, (time, next(queue._counter), self._resume))
                queue._live += 1
            else:
                # time == now goes to the zero-delay FIFO; a past time
                # raises inside schedule(), same as a negative delay.
                sim.schedule(time - sim._now, self._resume, None, None)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            # Same fast path for int/float subclasses (bool, numpy-ish
            # scalars) that miss _resume's exact-class check.
            self.sim.schedule(float(yielded), self._resume, None, None)
            return
        if not isinstance(yielded, SimEvent):
            self._alive = False
            exc = ProcessError(
                f"process yielded unsupported object {yielded!r}; "
                "yield a SimEvent or a delay in seconds"
            )
            self.fail(exc)
            return
        if yielded.triggered:
            # Already-triggered event (e.g. a Store.get with an item
            # ready): schedule the resume directly at the same position
            # subscribe() would have queued _on_waited, skipping that
            # intermediate callback frame.
            if yielded.ok:
                self.sim.schedule(0.0, self._resume, yielded.value, None)
            else:
                self.sim.schedule(0.0, self._resume, None, yielded.value)
            return
        yielded.subscribe(self._on_waited)

    def _on_waited(self, event: SimEvent) -> None:
        if not self._alive:
            return
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)


class ProcessInterrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries whatever the interrupter passed along.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


__all__.append("ProcessInterrupt")
