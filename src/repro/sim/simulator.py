"""The simulation clock and event loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..stats.metrics import MetricsRegistry, NullMetricsRegistry
from .events import Event, EventQueue, EventRun, SimEvent
from .randomness import RandomStreams
from .trace import NullTracer, Tracer

__all__ = ["Simulator"]


class Simulator:
    """Owns simulated time and the event queue.

    One :class:`Simulator` instance is shared by every component of an
    experiment (hosts, NIC, links, schedulers). Time is a float in
    seconds and only ever moves forward.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.randomness.RandomStreams`;
        identical seeds give bit-identical runs.
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` receiving structured
        trace records from instrumented components.
    metrics:
        Optional :class:`~repro.stats.metrics.MetricsRegistry`;
        instrumented components register counters and probes on it.
        Defaults to the no-op registry, which records nothing.
    """

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        #: Count of events executed so far (diagnostic).
        self.events_executed = 0
        #: Horizon of the in-progress run() (+inf outside / open-ended).
        #: Fast paths that pre-aggregate future work consult it so they
        #: never perform state changes the horizon would have cut off.
        self._horizon = float("inf")
        #: Absolute time through which deferred event-free work (the
        #: fluid lane's micro-queue) may be *carried across* back-to-back
        #: ``run(until=...)`` calls. The sharded engine's window barriers
        #: are pause points, not ends: steps maturing past a barrier
        #: flush during the next window, so absorption may look through
        #: barriers all the way to the simulation's final horizon. The
        #: default (-inf) never extends a run's own horizon.
        self.carry_horizon = float("-inf")
        #: Per-purpose deterministic random streams.
        self.random = RandomStreams(seed)
        #: Structured trace sink; NullTracer discards everything.
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        #: Metrics registry; the no-op default records nothing.
        self.metrics: MetricsRegistry = metrics if metrics is not None else NullMetricsRegistry()
        #: Drain hooks: callables returning an Optional[float] timestamp
        #: of lazily-recorded pending work (e.g. folded link deliveries)
        #: that owns no kernel event. When an open-ended run() drains
        #: the queue, the clock advances to the latest such timestamp so
        #: `run(until=None)` ends at the same final time an eventful run
        #: would (see PacketSink lazy accounting).
        self._drain_hooks: list = []
        #: End hooks: callables invoked once per run(), after the final
        #: clock is settled (including the advance-to-`until` clamp).
        #: Lazy fast paths register flushes here so deferred work with
        #: no kernel event of its own (the NIC fluid lane's micro-queue)
        #: is applied before run() returns and observers look at state.
        self._end_hooks: list = []

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` *delay* seconds from now; returns a handle.

        ``delay`` must be non-negative. A zero delay runs the callback
        after the current callback returns (run-to-completion), still at
        the same timestamp — via the queue's FIFO fast path rather than
        the heap (same firing order, no heap traffic).

        The queue insert is inlined (not ``self._queue.push(...)``):
        this method runs about once per executed event, so one call
        frame per schedule is measurable.
        """
        queue = self._queue
        if delay == 0.0:
            event = Event(self._now, next(queue._counter), fn, args)
            queue._nowq.append(event)
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            time = self._now + delay
            event = Event(time, next(queue._counter), fn, args)
            heapq.heappush(queue._heap, (time, event.seq, event))
        queue._live += 1
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulation *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, fn, args)

    def event(self) -> SimEvent:
        """Create a fresh untriggered :class:`SimEvent` bound to this sim."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """A :class:`SimEvent` that succeeds *delay* seconds from now."""
        ev = SimEvent(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    def process(self, generator: Any) -> "Any":
        """Start a generator as a simulation process (see :mod:`.process`)."""
        from .process import Process

        return Process(self, generator)

    def add_drain_hook(self, fn: Callable[[], Optional[float]]) -> None:
        """Register a callable reporting pending event-free work.

        *fn* returns the latest simulation timestamp of work recorded
        lazily outside the event queue (or ``None`` if none pending).
        Open-ended :meth:`run` calls advance the clock to the largest
        reported time when the queue drains.
        """
        self._drain_hooks.append(fn)

    def add_end_hook(self, fn: Callable[[], None]) -> None:
        """Register a callable invoked when each :meth:`run` finishes.

        Hooks run after the final clock is settled (the last event, the
        drain-hook advance, or the ``until`` clamp) and before ``run``
        returns — the point where deferred-but-determined work must be
        materialised so post-run observers see a consistent world.
        """
        self._end_hooks.append(fn)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        self.events_executed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulation time. When *until* is given the
        clock is advanced to exactly *until* even if the last event
        fired earlier (so back-to-back ``run`` calls tile cleanly).

        This loop is the simulator's hottest code: it merges the
        queue's zero-delay FIFO and the time heap inline (no per-event
        ``peek``/``pop`` method calls), preserving the exact
        ``(time, seq)`` order a single priority queue would produce.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        nowq = queue._nowq
        heappop = heapq.heappop
        # One float comparison per event instead of a None test + a
        # comparison: an open-ended run uses +inf as its horizon.
        horizon = float("inf") if until is None else until
        self._horizon = horizon
        executed = 0
        try:
            while not self._stopped:
                if nowq:
                    event = nowq[0]
                    if heap:
                        top = heap[0]
                        if top[0] < event.time or (
                            top[0] == event.time and top[1] < event.seq
                        ):
                            event = None  # an older heap event fires first
                    if event is not None:
                        if event.time > horizon:
                            break
                        nowq.popleft()
                        queue._live -= 1
                        if event.cancelled:
                            continue
                        self._now = event.time
                        executed += 1
                        event.fn(*event.args)
                        continue
                if not heap:
                    if nowq:
                        continue  # heap drained mid-iteration; re-merge
                    if self._drain_hooks:
                        target = self._now
                        for hook in self._drain_hooks:
                            t = hook()
                            if t is not None and t > target:
                                target = t
                        if target > horizon:
                            target = horizon
                        if target > self._now:
                            self._now = target
                    break
                top = heap[0]
                payload = top[2]
                cls = payload.__class__
                if cls is not Event:
                    if cls is EventRun:
                        # Run-lane entry: drain the train in place while
                        # its head still beats the heap top and the
                        # zero-delay FIFO, then re-key the remainder.
                        if (top[0], top[1]) != payload._key:
                            heappop(heap)  # stale key from merge_run
                            continue
                        if payload.cancelled:
                            heappop(heap)
                            queue._discard_run(payload)
                            continue
                        if top[0] > horizon:
                            break
                        heappop(heap)
                        payload._queued = False
                        payload._executing = True
                        items = payload._items
                        # The whole drained segment counts as ONE
                        # executed kernel event: one heap pop dispatched
                        # it (that is the point of the run lane).
                        executed += 1
                        while items:
                            head = items[0]
                            t = head[0]
                            if t > horizon:
                                break
                            if payload.cancelled:
                                queue._live -= len(items)
                                items.clear()
                                break
                            s = head[1]
                            if nowq:
                                ev = nowq[0]
                                if ev.time < t or (ev.time == t and ev.seq < s):
                                    break
                            if heap:
                                top2 = heap[0]
                                if top2[0] < t or (top2[0] == t and top2[1] < s):
                                    break
                            items.popleft()
                            queue._live -= 1
                            self._now = t
                            head[2](*head[3])
                        payload._executing = False
                        if items and not payload.cancelled:
                            head = items[0]
                            heapq.heappush(heap, (head[0], head[1], payload))
                            payload._queued = True
                            payload._key = (head[0], head[1])
                        continue
                    # Resume-lane entry (bare process-resume callable).
                    if top[0] > horizon:
                        break
                    heappop(heap)
                    queue._live -= 1
                    self._now = top[0]
                    executed += 1
                    payload(None, None)
                    continue
                if payload.cancelled:
                    heappop(heap)
                    queue._live -= 1
                    continue
                if top[0] > horizon:
                    break
                heappop(heap)
                queue._live -= 1
                self._now = top[0]
                executed += 1
                payload.fn(*payload.args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
            for hook in self._end_hooks:
                hook()
        finally:
            self._running = False
            self.events_executed += executed
        return self._now

    def stop(self) -> None:
        """Make the current :meth:`run` return after this callback."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)
