"""Deterministic per-purpose random streams.

Sharing a single RNG across unrelated components couples their sampled
sequences: adding one draw in the TCP model would perturb every packet
size in the workload generator. :class:`RandomStreams` derives an
independent, stable stream per name, so components stay decoupled and
seeded runs stay reproducible as code evolves.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of named :class:`random.Random` instances.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("tcp")
    >>> b = streams.stream("workload")
    >>> a is streams.stream("tcp")
    True

    The per-name seed is derived by hashing ``(master_seed, name)``, so
    the "tcp" stream produces the same sequence regardless of which
    other streams exist or the order they were created in.
    """

    def __init__(self, seed: int = 0):
        self.master_seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name, rng in self._streams.items():
            rng.seed(self._derive(name))
