"""Event primitives for the simulation kernel.

Two distinct notions of "event" live here:

* :class:`Event` — a *scheduled callback*: an entry in the simulator's
  time-ordered :class:`EventQueue`. This is the low-level, high-volume
  mechanism (one per packet arrival, per token-bucket refresh, ...).
* :class:`SimEvent` — a *waitable condition* in the style of simpy:
  processes subscribe to it and are resumed when it triggers. Used by
  the generator-process layer and the resource classes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple

from ..errors import SimulationError

__all__ = ["Event", "EventQueue", "EventRun", "SimEvent", "AllOf", "AnyOf"]


class Event:
    """A callback scheduled at an absolute simulation time.

    Events are created through :meth:`Simulator.schedule`; user code
    normally only keeps the handle to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        The entry stays queued (lazy deletion) and is skipped when it
        reaches the front, so cancellation is O(1).
        """
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} #{self.seq} {getattr(self.fn, '__name__', self.fn)}{state}>"


class EventRun:
    """A time-sorted train of callbacks occupying a *single* heap slot.

    The run lane: a burst of N pre-sorted future callbacks (e.g. the
    RX DMA completions of a precomputed sender burst) is inserted with
    one ``heappush`` via :meth:`EventQueue.push_run` instead of N. The
    heap key is always the run's *head* item ``(time, seq)``; the event
    loop peeks the remaining items against the heap top and the
    ``_nowq`` FIFO after each callback, so interleaving with ordinary
    events is exactly what N individual pushes would give. Each item
    carries its own ``seq`` drawn from the queue's shared counter at
    insertion, preserving equal-time tie-breaks across lanes.

    ``cancel()`` kills every not-yet-executed item in the train (lazy,
    O(1)); individual items cannot be cancelled separately.
    """

    __slots__ = ("_items", "cancelled", "_queued", "_executing", "_key")

    def __init__(self) -> None:
        #: (time, seq, fn, args) tuples, non-decreasing in (time, seq).
        self._items: Deque[Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]] = deque()
        self.cancelled = False
        #: True while the run sits in the heap under its head's key.
        self._queued = False
        #: True while the event loop is draining items from this run.
        self._executing = False
        #: The (time, seq) key of the run's *live* heap entry.
        #: :meth:`EventQueue.merge_run` can move the head earlier than
        #: the queued key; it then pushes a fresh entry and the old one
        #: goes stale — consumers skip any popped run entry whose key
        #: does not match this slot.
        self._key: Optional[Tuple[float, int]] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def next_time(self) -> Optional[float]:
        """Timestamp of the next pending item, or ``None`` if drained."""
        items = self._items
        return items[0][0] if items else None

    def cancel(self) -> None:
        """Drop every item not yet executed. Idempotent, O(1)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<EventRun n={len(self._items)}{state}>"


class EventQueue:
    """A time-ordered priority queue of :class:`Event` objects.

    Ties are broken by insertion sequence so that equal-time events run
    in the order they were scheduled — this is what makes runs
    deterministic.

    Three internal stores back the queue (the hot-path layout the event
    loop in :meth:`Simulator.run` exploits directly):

    * ``_heap`` — ``(time, seq, event)`` tuples ordered by ``heapq``.
      Tuples compare on the float/int keys at C speed, so pushing and
      popping never call a Python ``__lt__``; ``seq`` is unique, so
      the comparison never reaches the event object itself. The third
      element is normally an :class:`Event`, but the *resume lane*
      (process delay-yields, the most frequent event kind) stores the
      bare resume callable instead — no handle allocation, called as
      ``fn(None, None)``, never cancellable — and the *run lane*
      stores an :class:`EventRun` keyed by its head item. Consumers
      dispatch on ``payload.__class__``.
    * ``_nowq`` — a FIFO of zero-delay events (process resumes, event
      callbacks, store handoffs — roughly half of all traffic). They
      fire at the timestamp they were scheduled, so a deque append
      replaces an O(log n) heap push. All stores share one ``seq``
      counter and every pop compares ``(time, seq)`` across them, so
      the merged order is exactly the order a single heap would give.
    """

    __slots__ = ("_heap", "_nowq", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._nowq: Deque[Event] = deque()
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()) -> Event:
        """Insert a callback at absolute *time* and return its handle."""
        event = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        return event

    def push_now(self, now: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()) -> Event:
        """Insert a callback firing at the current timestamp *now*.

        The fast path for zero-delay scheduling: the entry goes to the
        FIFO ``_nowq`` instead of the heap. Only valid for ``now`` ==
        the simulator's current time (callers guarantee this).
        """
        event = Event(now, next(self._counter), fn, args)
        self._nowq.append(event)
        self._live += 1
        return event

    def push_batch(self, entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]]) -> List[Event]:
        """Insert several ``(time, fn, args)`` callbacks in one call.

        Sequence numbers are assigned in iteration order, so the batch
        fires in exactly the order N individual :meth:`push` calls
        would give. Small batches pay N heap pushes; a batch comparable
        in size to the heap itself is cheaper to splice in wholesale
        and re-heapify (O(n + k) vs O(k log n)).
        """
        counter = self._counter
        heap = self._heap
        events = [Event(time, next(counter), fn, args) for time, fn, args in entries]
        k = len(events)
        if k >= 8 and 4 * k >= len(heap):
            heap.extend((event.time, event.seq, event) for event in events)
            heapq.heapify(heap)
        else:
            for event in events:
                heapq.heappush(heap, (event.time, event.seq, event))
        self._live += k
        return events

    def push_run(
        self, entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]]
    ) -> EventRun:
        """Insert a time-sorted train of ``(time, fn, args)`` callbacks.

        The whole train costs one heap operation: it is wrapped in an
        :class:`EventRun` keyed by its first entry, and the event loop
        drains it in place, re-keying only when an interleaving event
        (heap or ``_nowq``) must run first. Entry times must be
        non-decreasing and ``>=`` the simulator's current time (callers
        guarantee the latter, as with :meth:`push_now`).

        Sequence numbers are drawn in iteration order from the shared
        counter, so equal-time ties against other lanes resolve exactly
        as N individual :meth:`push` calls issued now would.
        """
        run = EventRun()
        self.extend_run(run, entries)
        return run

    def extend_run(
        self,
        run: EventRun,
        entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> None:
        """Append ``(time, fn, args)`` entries to *run* (may be in flight).

        Appending to a queued or executing run is legal as long as the
        times keep the train monotone; the run is (re-)armed in the heap
        only when it is neither queued nor currently being drained.
        """
        if run.cancelled:
            raise SimulationError("cannot extend a cancelled EventRun")
        items = run._items
        counter = self._counter
        last = items[-1][0] if items else None
        n = 0
        for time, fn, args in entries:
            if last is not None and time < last:
                raise SimulationError(
                    f"EventRun entries must be time-sorted ({time} < {last})"
                )
            last = time
            items.append((time, next(counter), fn, args))
            n += 1
        if n == 0:
            return
        self._live += n
        if not run._queued and not run._executing:
            head = items[0]
            heapq.heappush(self._heap, (head[0], head[1], run))
            run._queued = True
            run._key = (head[0], head[1])

    def merge_run(
        self,
        run: EventRun,
        entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> None:
        """Merge time-sorted *entries* into *run*, re-keying its heap
        entry if the head moves earlier.

        Unlike :meth:`extend_run`, the new entries may interleave with
        — or precede — the run's pending items: the two sorted
        sequences are merged in place by ``(time, seq)``. Each new item
        still draws its seq from the shared counter *now*, so the
        combined execution order (including equal-time tie-breaks
        against other lanes) is exactly what individual :meth:`push`
        calls issued at this moment would give; merging only changes
        how many heap slots and drain segments the items cost. When the
        merged head is earlier than the queued key, a fresh heap entry
        is pushed and the old one goes stale — the event loop and
        :meth:`pop` detect staleness via ``run._key`` and discard it.
        """
        if run.cancelled:
            raise SimulationError("cannot merge into a cancelled EventRun")
        counter = self._counter
        items = run._items
        last = None
        new: List[Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]] = []
        for time, fn, args in entries:
            if last is not None and time < last:
                raise SimulationError(
                    f"EventRun entries must be time-sorted ({time} < {last})"
                )
            last = time
            new.append((time, next(counter), fn, args))
        if not new:
            return
        self._live += len(new)
        if not items or items[-1][0] <= new[0][0]:
            # Pure append: every pending item fires no later than the
            # first new one (new seqs are larger, so an equal-time tail
            # still precedes the new head).
            items.extend(new)
        else:
            # In-place sorted merge — the event loop may hold a
            # reference to this deque, so never rebind ``_items``.
            merged = list(heapq.merge(list(items), new))
            items.clear()
            items.extend(merged)
        if run._executing:
            return  # the drain loop re-arms with the merged head
        head = items[0]
        key = (head[0], head[1])
        if not run._queued:
            heapq.heappush(self._heap, (key[0], key[1], run))
            run._queued = True
            run._key = key
        elif key != run._key:
            heapq.heappush(self._heap, (key[0], key[1], run))
            run._key = key

    def _discard_run(self, run: EventRun) -> None:
        """Drop all pending items of a cancelled run (already un-heaped)."""
        items = run._items
        self._live -= len(items)
        items.clear()
        run._queued = False

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue is empty.

        Run-lane entries are unbundled one item at a time: the head
        item is returned (wrapped as an :class:`Event`) and the rest of
        the train is re-keyed into the heap. Only the cold
        :meth:`Simulator.step` path pays this.
        """
        heap = self._heap
        nowq = self._nowq
        while True:
            if nowq:
                event = nowq[0]
                top = heap[0] if heap else None
                if top is None or top[0] > event.time or (
                    top[0] == event.time and top[1] > event.seq
                ):
                    nowq.popleft()
                    self._live -= 1
                    if event.cancelled:
                        continue
                    return event
            if not heap:
                raise SimulationError("pop from an empty event queue")
            time, seq, payload = heapq.heappop(heap)
            cls = payload.__class__
            if cls is not Event:
                if cls is EventRun:
                    if (time, seq) != payload._key:
                        continue  # stale entry left behind by merge_run
                    if payload.cancelled:
                        self._discard_run(payload)
                        continue
                    t, s, fn, args = payload._items.popleft()
                    self._live -= 1
                    payload._queued = False
                    items = payload._items
                    if items:
                        head = items[0]
                        heapq.heappush(heap, (head[0], head[1], payload))
                        payload._queued = True
                        payload._key = (head[0], head[1])
                    return Event(t, s, fn, args)
                # Resume-lane entry: wrap it so pop()'s contract holds
                # (only the cold step() path pays this allocation).
                self._live -= 1
                return Event(time, seq, payload, (None, None))
            self._live -= 1
            if payload.cancelled:
                continue
            return payload

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            top = heap[0]
            payload = top[2]
            cls = payload.__class__
            if cls is Event and payload.cancelled:
                heapq.heappop(heap)
                self._live -= 1
            elif cls is EventRun and (top[0], top[1]) != payload._key:
                heapq.heappop(heap)  # stale entry left behind by merge_run
            elif cls is EventRun and payload.cancelled:
                heapq.heappop(heap)
                self._discard_run(payload)
            else:
                break
        nowq = self._nowq
        while nowq and nowq[0].cancelled:
            nowq.popleft()
            self._live -= 1
        if nowq:
            if heap and heap[0][0] < nowq[0].time:
                return heap[0][0]
            return nowq[0].time
        return heap[0][0] if heap else None


class SimEvent:
    """A one-shot waitable condition.

    Starts untriggered; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, resuming every subscribed process/callback. Late
    subscribers on an already-triggered event are resumed immediately
    (on the same simulation timestamp, via the simulator's "now" queue).
    """

    __slots__ = ("sim", "triggered", "ok", "value", "_callbacks")

    def __init__(self, sim: "Any") -> None:
        self.sim = sim
        self.triggered = False
        #: True if succeeded, False if failed; meaningless until triggered.
        self.ok = True
        #: Payload delivered to waiters (the yielded value in processes).
        self.value: Any = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    def subscribe(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register *callback* to run when the event triggers."""
        if self.triggered:
            # Deliver asynchronously-but-now to preserve run-to-completion
            # semantics of the caller. Goes straight to the zero-delay
            # FIFO lane — the same slot ``schedule(0.0, ...)`` would
            # assign, without the schedule() branch and call frame.
            self.sim._queue.push_now(self.sim._now, callback, (self,))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully with an optional payload.

        (_trigger is inlined here: succeed runs for every resource
        handoff, so the extra call frame is measurable.)
        """
        if self.triggered:
            raise SimulationError("SimEvent triggered twice")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            schedule = self.sim.schedule
            for callback in callbacks:
                schedule(0.0, callback, self)
        return self

    def succeed_now(self, value: Any = None) -> "SimEvent":
        """Trigger successfully and run waiters *synchronously*.

        :meth:`succeed` defers waiter callbacks through the zero-delay
        queue, preserving run-to-completion order among equal-time
        events. This variant runs them inline — one fewer kernel event
        per trigger — and is reserved for fast-path handoffs where the
        caller knows no other same-timestamp event can observe the
        difference (DESIGN.md §7).
        """
        if self.triggered:
            raise SimulationError("SimEvent triggered twice")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger the event as failed; waiters re-raise *exc*."""
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("SimEvent triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            schedule = self.sim.schedule
            for callback in callbacks:
                schedule(0.0, callback, self)


class AllOf(SimEvent):
    """Triggers when *all* child events have succeeded.

    The payload is the list of child values, in the order given.
    Fails fast if any child fails.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Any", events: Sequence[SimEvent]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.subscribe(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[SimEvent], None]:
        def on_child(event: SimEvent) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_child


class AnyOf(SimEvent):
    """Triggers when the *first* child event triggers.

    The payload is a ``(index, value)`` tuple identifying the winner.
    """

    __slots__ = ()

    def __init__(self, sim: "Any", events: Sequence[SimEvent]):
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(events):
            event.subscribe(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[SimEvent], None]:
        def on_child(event: SimEvent) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
            else:
                self.succeed((index, event.value))

        return on_child
