"""Event primitives for the simulation kernel.

Two distinct notions of "event" live here:

* :class:`Event` — a *scheduled callback*: an entry in the simulator's
  time-ordered :class:`EventQueue`. This is the low-level, high-volume
  mechanism (one per packet arrival, per token-bucket refresh, ...).
* :class:`SimEvent` — a *waitable condition* in the style of simpy:
  processes subscribe to it and are resumed when it triggers. Used by
  the generator-process layer and the resource classes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError

__all__ = ["Event", "EventQueue", "SimEvent", "AllOf", "AnyOf"]


class Event:
    """A callback scheduled at an absolute simulation time.

    Events are created through :meth:`Simulator.schedule`; user code
    normally only keeps the handle to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        The entry stays in the heap (lazy deletion) and is skipped when
        it reaches the front, so cancellation is O(1).
        """
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} #{self.seq} {getattr(self.fn, '__name__', self.fn)}{state}>"


class EventQueue:
    """A time-ordered priority queue of :class:`Event` objects.

    Ties are broken by insertion sequence so that equal-time events run
    in the order they were scheduled — this is what makes runs
    deterministic.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()) -> Event:
        """Insert a callback at absolute *time* and return its handle."""
        event = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: an event in this queue was cancelled."""
        self._live -= 1


class SimEvent:
    """A one-shot waitable condition.

    Starts untriggered; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, resuming every subscribed process/callback. Late
    subscribers on an already-triggered event are resumed immediately
    (on the same simulation timestamp, via the simulator's "now" queue).
    """

    __slots__ = ("sim", "triggered", "ok", "value", "_callbacks")

    def __init__(self, sim: "Any") -> None:
        self.sim = sim
        self.triggered = False
        #: True if succeeded, False if failed; meaningless until triggered.
        self.ok = True
        #: Payload delivered to waiters (the yielded value in processes).
        self.value: Any = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    def subscribe(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register *callback* to run when the event triggers."""
        if self.triggered:
            # Deliver asynchronously-but-now to preserve run-to-completion
            # semantics of the caller.
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully with an optional payload."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger the event as failed; waiters re-raise *exc*."""
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("SimEvent triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, self)


class AllOf(SimEvent):
    """Triggers when *all* child events have succeeded.

    The payload is the list of child values, in the order given.
    Fails fast if any child fails.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Any", events: Sequence[SimEvent]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.subscribe(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[SimEvent], None]:
        def on_child(event: SimEvent) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_child


class AnyOf(SimEvent):
    """Triggers when the *first* child event triggers.

    The payload is a ``(index, value)`` tuple identifying the winner.
    """

    __slots__ = ()

    def __init__(self, sim: "Any", events: Sequence[SimEvent]):
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(events):
            event.subscribe(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[SimEvent], None]:
        def on_child(event: SimEvent) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
            else:
                self.succeed((index, event.value))

        return on_child
