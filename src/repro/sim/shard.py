"""Conservative-time-window parallel DES: the sharded execution engine.

A multi-NIC/multi-host :class:`~repro.topology.Topology` is cut into
*domains* (one NIC, its senders, its sink — the unit that shares an
event queue) and domains are assigned to shard worker processes by a
:class:`ShardPlan`. Synchronization is classic conservative windowing
(DESIGN.md §11):

* **Lookahead** ``L`` = the minimum scaled propagation delay over all
  cross-domain wires. A frame finishing serialisation at time *t*
  cannot arrive remotely before ``t + L``.
* **Windows** of length ``Δ <= L`` tile ``[0, duration]``. Every frame
  sent during window *k* arrives at or after barrier *k*'s time, so
  domains simulate a window with no inbound communication, then
  exchange at the barrier.
* **Exchange**: each domain's boundary links record
  :class:`~repro.net.boundary.WireRecord` trains instead of delivering
  (zero events); at the barrier the coordinator routes and globally
  sorts them per destination by ``(arrival, source domain, wire
  order)``, and the destination splices the train into its queue with
  one ``EventQueue.push_run`` — the run-lane format burst ingress
  already uses.

Because every domain owns its own :class:`Simulator` (seed derived
from the domain index), its own RNG streams, and a disjoint packet
sequence range, a domain's event stream is a pure function of its
local state plus the injected barrier trains — which the protocol
makes identical regardless of how domains are spread over processes.
``--shards N`` is therefore *bit-identical* to ``--shards 1``, and a
single-domain topology degenerates to exactly one open-window
``run(until=duration)``, i.e. today's engine (gated by the golden
traces).

Worker lifecycle mirrors the campaign runner: ``fork`` start method
when available, daemon processes, half-duplex pipes, wall-clock
deadlines with terminate-on-timeout.
"""

from __future__ import annotations

import multiprocessing
import time as _time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..net.boundary import WireRecord

__all__ = ["BoundaryWire", "ShardPlan", "ShardError", "can_spawn_workers", "execute"]


def can_spawn_workers() -> bool:
    """True when this process may fork shard workers.

    Daemonic processes (the campaign runner's task workers) are not
    allowed children; there the engine runs the same barrier protocol
    inline — bit-identical by construction, just single-process.
    """
    return not multiprocessing.current_process().daemon


class ShardError(SimulationError):
    """The shard barrier protocol failed (worker death, timeout,
    protocol violation). Carries the failing shard's traceback when
    one was recovered."""


@dataclass(frozen=True)
class BoundaryWire:
    """One cross-domain link: ``src`` domain's egress feeds ``dst``
    domain's sink, with *scaled* propagation delay ``lookahead``."""

    src: str
    dst: str
    lookahead: float


@dataclass(frozen=True)
class ShardPlan:
    """The partition + synchronization contract for one run.

    ``assignment[i]`` is the shard index of ``domains[i]`` (contiguous
    blocks — ring neighbours tend to stay together, minimising
    cross-*process* traffic for the fabric topologies). ``window`` is
    the barrier spacing (``None`` when no windowing is needed);
    ``degraded`` marks the zero-lookahead fallback: multi-domain, but
    windowing impossible, so everything runs in-process sequentially
    with end-of-run record folding.
    """

    domains: Tuple[str, ...]
    assignment: Tuple[int, ...]
    n_shards: int
    boundaries: Tuple[BoundaryWire, ...] = ()
    lookahead: Optional[float] = None
    window: Optional[float] = None
    degraded: bool = False

    @classmethod
    def build(
        cls,
        domains: Sequence[str],
        boundaries: Sequence[BoundaryWire] = (),
        shards: int = 1,
        window: Optional[float] = None,
    ) -> "ShardPlan":
        """Plan a run: partition *domains* over *shards* workers.

        The zero-lookahead guard lives here: a boundary wire with
        ``propagation_delay == 0`` admits no conservative window (the
        barrier protocol would deadlock at Δ=0), so the plan falls back
        to a single in-process shard with a :class:`UserWarning`
        instead.
        """
        names = tuple(domains)
        if not names:
            raise SimulationError("cannot plan a run with no domains")
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate domain names in {names}")
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        wires = tuple(boundaries)
        known = set(names)
        for wire in wires:
            if wire.src not in known or wire.dst not in known:
                raise SimulationError(
                    f"boundary wire {wire.src}->{wire.dst} references an unknown domain"
                )
        lookahead = min((w.lookahead for w in wires), default=None)
        if wires and lookahead is not None and lookahead <= 0.0:
            # Zero/negative lookahead: no window length is safe. Fall
            # back to one in-process shard with end-of-run folding.
            culprit = min(wires, key=lambda w: w.lookahead)
            warnings.warn(
                "cross-domain wire "
                f"{culprit.src}->{culprit.dst} has zero propagation delay: "
                "lookahead is 0, so the windowed barrier protocol cannot "
                "run; falling back to a single shard (sequential domains, "
                "end-of-run exchange)",
                UserWarning,
                stacklevel=2,
            )
            return cls(
                domains=names,
                assignment=(0,) * len(names),
                n_shards=1,
                boundaries=wires,
                lookahead=None,
                window=None,
                degraded=True,
            )
        if window is not None:
            if window <= 0:
                raise SimulationError(f"window must be positive, got {window}")
            if lookahead is not None and window > lookahead:
                raise SimulationError(
                    f"window {window} exceeds the lookahead {lookahead} — "
                    "remote arrivals could land inside the window that "
                    "sent them"
                )
        effective_window = window if window is not None else lookahead
        if not wires:
            # Independent domains need no synchronization at all.
            effective_window = None
        n_shards = max(1, min(shards, len(names)))
        base, extra = divmod(len(names), n_shards)
        assignment: List[int] = []
        for shard in range(n_shards):
            count = base + (1 if shard < extra else 0)
            assignment.extend([shard] * count)
        return cls(
            domains=names,
            assignment=tuple(assignment),
            n_shards=n_shards,
            boundaries=wires,
            lookahead=lookahead,
            window=effective_window,
        )

    # ------------------------------------------------------------------
    def shard_of(self, domain: str) -> int:
        return self.assignment[self.domains.index(domain)]

    def domains_of(self, shard: int) -> Tuple[int, ...]:
        """Domain *indices* assigned to *shard* (ascending)."""
        return tuple(i for i, s in enumerate(self.assignment) if s == shard)

    def barriers(self, duration: float) -> Tuple[float, ...]:
        """Barrier times tiling ``(0, duration]``; always ends exactly
        at *duration*. A plan with no window is one open window."""
        if self.window is None or duration <= 0:
            return (duration,)
        out: List[float] = []
        k = 1
        while True:
            t = k * self.window
            if t >= duration - 1e-12:
                break
            out.append(t)
            k += 1
        out.append(duration)
        return tuple(out)


# ----------------------------------------------------------------------
# record routing (shared by inline and multi-process execution)
# ----------------------------------------------------------------------
#: One domain's drained outbox: (source domain index, destination
#: domain name, wire records in send order).
Shipment = Tuple[int, str, List[WireRecord]]


def route_records(shipments: Sequence[Shipment]) -> Dict[str, List[WireRecord]]:
    """Merge shipments into per-destination, globally ordered trains.

    Order is ``(arrival time, source domain index, wire position)`` —
    a total order every execution mode computes identically, so
    equal-timestamp arrivals from different sources never flip between
    shard counts (the property test pins this, including that a window
    barrier splitting a stream cannot reorder it).
    """
    keyed: Dict[str, List[Tuple[float, int, int, WireRecord]]] = {}
    for src_index, dst, records in shipments:
        if not records:
            continue
        bucket = keyed.setdefault(dst, [])
        for position, record in enumerate(records):
            bucket.append((record[0], src_index, position, record))
    out: Dict[str, List[WireRecord]] = {}
    for dst, bucket in keyed.items():
        bucket.sort(key=lambda item: (item[0], item[1], item[2]))
        out[dst] = [item[3] for item in bucket]
    return out


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def execute(spec):
    """Run a :class:`~repro.topology.SimulationSpec` to completion.

    Entry point used by ``SimulationSpec.run()``. Picks the inline
    single-process engine or the multi-process barrier protocol from
    the spec's plan.
    """
    plan = spec.plan()
    barriers = plan.barriers(spec.duration)
    start = _time.perf_counter()
    if plan.n_shards <= 1 or not can_spawn_workers():
        summaries, extra_notes = _run_inline(spec, plan, barriers)
    else:
        summaries = _run_multiprocess(spec, plan, barriers)
        extra_notes = ""
    wall = _time.perf_counter() - start
    from ..topology.result import assemble_result

    return assemble_result(spec, plan, barriers, summaries, wall, extra_notes)


def _drain_shipments(domains) -> List[Shipment]:
    """Drain every outbox, dropping empty drains on the spot.

    On sparse fabrics most (domain, window) cells ship nothing;
    filtering here keeps empty lists out of the barrier pickles (and
    out of the inline routing loop). Harmless to correctness:
    ``route_records`` ignores empty shipments anyway.
    """
    return [
        (domain.index, outbox.dst, records)
        for domain in domains
        for outbox in domain.outboxes
        for records in (outbox.drain(),)
        if records
    ]


def _run_inline(spec, plan: ShardPlan, barriers: Sequence[float]):
    """All domains in this process — the bit-identical reference mode.

    With one domain and no boundaries this is exactly one
    ``run(until=duration)`` on one simulator: today's engine.
    """
    from ..topology.build import build_domains, observability_notes, summarize_domain

    domains = build_domains(spec, range(len(plan.domains)))
    by_name = {domain.name: domain for domain in domains}
    if plan.degraded:
        # Zero lookahead: run each domain over the full horizon, then
        # fold cross-domain records directly (see RemoteIngress).
        for domain in domains:
            domain.sim.run(until=spec.duration)
        routed = route_records(_drain_shipments(domains))
        for dst, records in routed.items():
            by_name[dst].ingress.fold_direct(records, spec.duration)
    else:
        for barrier in barriers:
            for domain in domains:
                domain.sim.run(until=barrier)
            routed = route_records(_drain_shipments(domains))
            for dst, records in routed.items():
                by_name[dst].ingress.inject(barrier, records)
    extra_notes = observability_notes(spec, domains)
    return [summarize_domain(domain, spec) for domain in domains], extra_notes


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _recv(conn, deadline: Optional[float], shard: int, process):
    """Receive one message with an optional wall-clock deadline."""
    while True:
        remaining = None if deadline is None else deadline - _time.monotonic()
        if remaining is not None and remaining <= 0:
            raise ShardError(f"shard {shard} missed the barrier deadline")
        if conn.poll(0.05 if remaining is None else min(remaining, 0.05)):
            try:
                return conn.recv()
            except EOFError:
                raise ShardError(f"shard {shard} closed its pipe mid-protocol") from None
        if process is not None and not process.is_alive():
            # One last poll: the worker may have sent its message and
            # exited before we looked.
            if conn.poll(0):
                return conn.recv()
            raise ShardError(
                f"shard {shard} worker died (exitcode {process.exitcode})"
            )


def _shard_worker(spec, shard_index: int, cmd, out) -> None:
    """One shard: build assigned domains, run the barrier protocol."""
    try:
        from ..topology.build import build_domains, summarize_domain

        plan = spec.plan()
        barriers = plan.barriers(spec.duration)
        domains = build_domains(spec, plan.domains_of(shard_index))
        by_name = {domain.name: domain for domain in domains}
        for barrier in barriers:
            for domain in domains:
                domain.sim.run(until=barrier)
            out.send(("out", barrier, _drain_shipments(domains)))
            message = cmd.recv()
            if message[0] != "in" or message[1] != barrier:
                raise SimulationError(
                    f"shard {shard_index}: barrier protocol violation: "
                    f"expected ('in', {barrier}), got {message[:2]}"
                )
            for dst, records in message[2].items():
                by_name[dst].ingress.inject(barrier, records)
        out.send(
            ("done", shard_index, [summarize_domain(d, spec) for d in domains])
        )
    except BaseException as exc:  # ship the failure to the coordinator
        import traceback

        try:
            out.send(("error", shard_index, f"{type(exc).__name__}: {exc}",
                      traceback.format_exc()))
        except Exception:
            pass
        raise


def _run_multiprocess(spec, plan: ShardPlan, barriers: Sequence[float]):
    """Coordinator: star-topology barrier protocol over pipes."""
    ctx = _mp_context()
    deadline = (
        None if spec.timeout is None else _time.monotonic() + spec.timeout
    )
    workers = []
    try:
        for shard in range(plan.n_shards):
            cmd_recv, cmd_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_shard_worker,
                args=(spec, shard, cmd_recv, out_send),
                daemon=True,
                name=f"fv-shard-{shard}",
            )
            process.start()
            cmd_recv.close()
            out_send.close()
            workers.append((process, cmd_send, out_recv))

        owners: Dict[str, int] = {
            name: plan.assignment[i] for i, name in enumerate(plan.domains)
        }
        for barrier in barriers:
            shipments: List[Shipment] = []
            for shard, (process, _cmd, out) in enumerate(workers):
                message = _recv(out, deadline, shard, process)
                if message[0] == "error":
                    raise ShardError(
                        f"shard {message[1]} failed: {message[2]}\n{message[3]}"
                    )
                if message[0] != "out" or message[1] != barrier:
                    raise ShardError(
                        f"shard {shard}: expected ('out', {barrier}), "
                        f"got {message[:2]}"
                    )
                shipments.extend(message[2])
            routed = route_records(shipments)
            per_shard: List[Dict[str, List[WireRecord]]] = [
                {} for _ in range(plan.n_shards)
            ]
            for dst, records in routed.items():
                per_shard[owners[dst]][dst] = records
            for shard, (_process, cmd, _out) in enumerate(workers):
                cmd.send(("in", barrier, per_shard[shard]))

        summaries = []
        for shard, (process, _cmd, out) in enumerate(workers):
            message = _recv(out, deadline, shard, process)
            if message[0] == "error":
                raise ShardError(
                    f"shard {message[1]} failed: {message[2]}\n{message[3]}"
                )
            if message[0] != "done":
                raise ShardError(f"shard {shard}: expected 'done', got {message[0]}")
            summaries.extend(message[2])
        summaries.sort(key=lambda summary: summary.index)
        return summaries
    finally:
        for process, cmd, out in workers:
            cmd.close()
            out.close()
        for process, _cmd, _out in workers:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
