"""Waitable resources for simulation processes.

* :class:`Lock` — a FIFO mutex; models software locks on the NP where a
  thread spins until the holder releases.
* :class:`Store` — a bounded FIFO of items; models rings and queues at
  the process level.
* :class:`TokenPool` — a counted resource (e.g. DMA credits).

All acquisition methods return :class:`SimEvent` objects to ``yield``
from a process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..errors import CapacityError, SimulationError
from .events import SimEvent

__all__ = ["Lock", "Store", "TokenPool"]


class Lock:
    """FIFO mutual exclusion.

    Usage in a process::

        yield lock.acquire()
        try:
            ...critical section...
        finally:
            lock.release()

    Statistics (`acquisitions`, `contended_acquisitions`,
    `total_wait_time`) feed the lock-contention ablation (A-LOCK).
    """

    def __init__(self, sim: Any, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._holder_count = 0
        self._waiters: Deque[tuple[SimEvent, float]] = deque()
        #: Total successful acquisitions.
        self.acquisitions = 0
        #: Acquisitions that had to wait for another holder.
        self.contended_acquisitions = 0
        #: Sum of simulated seconds spent waiting.
        self.total_wait_time = 0.0

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._holder_count > 0

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Return an event that succeeds once the lock is held."""
        ev = SimEvent(self.sim)
        if self._holder_count == 0:
            self._holder_count = 1
            self.acquisitions += 1
            ev.succeed(self)
        else:
            self.contended_acquisitions += 1
            self._waiters.append((ev, self.sim.now))
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._holder_count == 0:
            self._holder_count = 1
            self.acquisitions += 1
            return True
        return False

    def release(self) -> None:
        """Release the lock, waking the longest-waiting acquirer."""
        if self._holder_count == 0:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        if self._waiters:
            ev, enqueued_at = self._waiters.popleft()
            self.acquisitions += 1
            self.total_wait_time += self.sim.now - enqueued_at
            ev.succeed(self)
        else:
            self._holder_count = 0

    @property
    def mean_wait_time(self) -> float:
        """Average wait among *contended* acquisitions (0 if none)."""
        if self.contended_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.contended_acquisitions


class Store:
    """A bounded FIFO buffer of items with waitable put/get.

    ``put`` on a full store and ``get`` on an empty store both return
    events that trigger when the operation completes, giving natural
    back-pressure between producer and consumer processes.
    """

    def __init__(self, sim: Any, capacity: int = 0, name: str = "store"):
        if capacity < 0:
            raise CapacityError(f"store capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.name = name
        #: 0 means unbounded.
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple[SimEvent, Any]] = deque()
        #: Items accepted over the store's lifetime.
        self.total_put = 0
        #: Items handed to getters over the store's lifetime.
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """True when a bounded store is at capacity."""
        return self.capacity > 0 and len(self._items) >= self.capacity

    def put(self, item: Any) -> SimEvent:
        """Insert *item*, waiting for space if the store is full."""
        ev = SimEvent(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed(item)
            ev.succeed(None)
        elif not self.is_full:
            self._items.append(item)
            self.total_put += 1
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when the store is full."""
        if self._getters:
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed(item)
            return True
        if self.capacity > 0 and len(self._items) >= self.capacity:  # is_full, inlined
            return False
        self._items.append(item)
        self.total_put += 1
        return True

    def try_put_now(self, item: Any) -> bool:
        """:meth:`try_put` with a *synchronous* getter handoff.

        When a getter is parked, its process resumes inline instead of
        through a zero-delay event — same timestamp, one fewer kernel
        event per handoff. Fast-path use only (DESIGN.md §7): the
        resumed process runs before any other event already queued at
        this timestamp, so callers must tolerate that reordering.
        """
        if self._getters:
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed_now(item)
            return True
        if self.capacity > 0 and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self.total_put += 1
        return True

    def get(self) -> SimEvent:
        """Remove the oldest item, waiting if the store is empty."""
        ev = SimEvent(self.sim)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            ev.succeed(item)
            self._admit_waiting_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self.total_got += 1
        self._admit_waiting_putter()
        return item

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            putter_ev, item = self._putters.popleft()
            self._items.append(item)
            self.total_put += 1
            putter_ev.succeed(None)


class TokenPool:
    """A counted resource: acquire *n* units, release *n* units.

    Unlike the scheduling-domain token buckets in :mod:`repro.core`,
    this pool does not refill over time; it models finite hardware
    credits (DMA slots, buffer handles) at the process level.
    """

    def __init__(self, sim: Any, capacity: int, name: str = "pool"):
        if capacity <= 0:
            raise CapacityError(f"token pool capacity must be > 0, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[tuple[SimEvent, int]] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    def acquire(self, amount: int = 1) -> SimEvent:
        """Wait until *amount* units are free, then take them."""
        if amount > self.capacity:
            raise CapacityError(
                f"cannot acquire {amount} from pool of capacity {self.capacity}"
            )
        ev = SimEvent(self.sim)
        if self._available >= amount and not self._waiters:
            self._available -= amount
            ev.succeed(amount)
        else:
            self._waiters.append((ev, amount))
        return ev

    def try_acquire(self, amount: int = 1) -> bool:
        """Non-blocking acquire; False if insufficient units."""
        if self._available >= amount and not self._waiters:
            self._available -= amount
            return True
        return False

    def release(self, amount: int = 1) -> None:
        """Return *amount* units and wake satisfiable waiters in order."""
        self._available += amount
        if self._available > self.capacity:
            raise SimulationError(
                f"pool {self.name!r} over-released: {self._available}/{self.capacity}"
            )
        while self._waiters and self._available >= self._waiters[0][1]:
            ev, wanted = self._waiters.popleft()
            self._available -= wanted
            ev.succeed(wanted)
