"""Deterministic discrete-event simulation kernel.

This is the substrate every other subsystem runs on: the SmartNIC
model, the host/TCP model, and the experiment harness all schedule
work through one :class:`~repro.sim.simulator.Simulator`.

Two programming styles are supported and interoperate freely:

* **Callbacks** — ``sim.schedule(delay, fn, *args)`` for hot paths
  (per-packet events) where generator overhead matters.
* **Processes** — generator functions that ``yield`` waitables
  (:meth:`Simulator.timeout`, :class:`~repro.sim.events.SimEvent`,
  resource acquisitions) for sequential logic such as traffic drivers.

Determinism: events at equal timestamps fire in schedule order, and all
randomness flows through :class:`~repro.sim.randomness.RandomStreams`,
so a seeded run is exactly reproducible.
"""

from .events import Event, EventQueue, SimEvent, AllOf, AnyOf
from .simulator import Simulator
from .process import At, Process
from .resources import Lock, Store, TokenPool
from .randomness import RandomStreams
from .shard import BoundaryWire, ShardError, ShardPlan
from .trace import Tracer, NullTracer, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "SimEvent",
    "AllOf",
    "AnyOf",
    "Simulator",
    "At",
    "Process",
    "BoundaryWire",
    "ShardError",
    "ShardPlan",
    "Lock",
    "Store",
    "TokenPool",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
