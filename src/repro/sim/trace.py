"""Structured tracing for simulations.

Components emit :class:`TraceRecord` tuples through the simulator's
``tracer``; a :class:`Tracer` collects them with optional filtering,
while :class:`NullTracer` (the default) discards everything at near
zero cost. Traces back the per-figure experiment reports and are handy
when debugging scheduling decisions packet by packet.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


class TraceRecord(NamedTuple):
    """One trace sample.

    Attributes
    ----------
    time: simulation timestamp in seconds.
    source: emitting component, e.g. ``"nic.tx"`` or ``"core.sched"``.
    kind: event kind within the source, e.g. ``"drop"``.
    data: free-form payload dict.
    """

    time: float
    source: str
    kind: str
    data: Dict[str, Any]


class Tracer:
    """Collects trace records, optionally filtered by a predicate.

    Parameters
    ----------
    predicate:
        ``predicate(source, kind) -> bool``; records failing it are
        dropped before the payload dict is even built by callers that
        use :meth:`wants`.
    limit:
        Hard cap on stored records (0 = unlimited); oldest beyond the
        cap are discarded to bound memory in long runs.
    """

    def __init__(
        self,
        predicate: Optional[Callable[[str, str], bool]] = None,
        limit: int = 0,
    ):
        self.records: List[TraceRecord] = []
        self._predicate = predicate
        self._limit = limit

    @property
    def enabled(self) -> bool:
        """True — this tracer stores records (see :class:`NullTracer`)."""
        return True

    def wants(self, source: str, kind: str) -> bool:
        """Cheap pre-check so hot paths can skip building payloads."""
        return self._predicate is None or self._predicate(source, kind)

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        """Store one record (subject to the filter and the limit)."""
        if not self.wants(source, kind):
            return
        self.records.append(TraceRecord(time, source, kind, data))
        if self._limit and len(self.records) > self._limit:
            del self.records[: len(self.records) - self._limit]

    def select(self, source: Optional[str] = None, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate stored records matching *source* and/or *kind*."""
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if kind is not None and record.kind != kind:
                continue
            yield record

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()


class NullTracer(Tracer):
    """A tracer that discards everything; the default sink."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        """False — callers can skip emitting entirely."""
        return False

    def wants(self, source: str, kind: str) -> bool:
        return False

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        return None
