"""Structured tracing for simulations.

Components emit :class:`TraceRecord` tuples through the simulator's
``tracer``; a :class:`Tracer` collects them with optional filtering,
while :class:`NullTracer` (the default) discards everything at near
zero cost. Traces back the per-figure experiment reports and are handy
when debugging scheduling decisions packet by packet.

Emitting sources and kinds used by the instrumented components are
listed in DESIGN.md's "Observability" section; :meth:`Tracer.to_jsonl`
exports the stream for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Iterator, List, NamedTuple, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


class TraceRecord(NamedTuple):
    """One trace sample.

    Attributes
    ----------
    time: simulation timestamp in seconds.
    source: emitting component, e.g. ``"nic.tx"`` or ``"core.sched"``.
    kind: event kind within the source, e.g. ``"drop"``.
    data: free-form payload dict.
    """

    time: float
    source: str
    kind: str
    data: dict


class Tracer:
    """Collects trace records, optionally filtered by a predicate.

    Parameters
    ----------
    predicate:
        ``predicate(source, kind) -> bool``; records failing it are
        dropped before the payload dict is even built by callers that
        use :meth:`wants`.
    limit:
        Hard cap on stored records (0 = unlimited); oldest beyond the
        cap are discarded to bound memory in long runs. The store is a
        bounded :class:`collections.deque`, so eviction is O(1) per
        record rather than an O(limit) list trim.
    """

    def __init__(
        self,
        predicate: Optional[Callable[[str, str], bool]] = None,
        limit: int = 0,
    ):
        self._records: Deque[TraceRecord] = deque(maxlen=limit if limit > 0 else None)
        self._predicate = predicate
        self._limit = limit

    @property
    def enabled(self) -> bool:
        """True — this tracer stores records (see :class:`NullTracer`)."""
        return True

    @property
    def records(self) -> List[TraceRecord]:
        """Stored records, oldest first (a list snapshot of the store)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def wants(self, source: str, kind: str) -> bool:
        """Cheap pre-check so hot paths can skip building payloads."""
        return self._predicate is None or self._predicate(source, kind)

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        """Store one record (subject to the filter and the limit)."""
        if not self.wants(source, kind):
            return
        self._records.append(TraceRecord(time, source, kind, data))

    def select(self, source: Optional[str] = None, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate stored records matching *source* and/or *kind*."""
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if kind is not None and record.kind != kind:
                continue
            yield record

    def clear(self) -> None:
        """Drop all stored records."""
        self._records.clear()

    def to_jsonl(self, path: str) -> int:
        """Write every stored record as one JSON object per line.

        Schema: ``{"time": float, "source": str, "kind": str,
        "data": {...}}`` — the payload stays nested so its keys can
        never collide with the envelope's. Returns the record count.
        """
        count = 0
        with open(path, "w") as handle:
            for record in self._records:
                handle.write(json.dumps(
                    {
                        "time": record.time,
                        "source": record.source,
                        "kind": record.kind,
                        "data": record.data,
                    },
                    sort_keys=True,
                ))
                handle.write("\n")
                count += 1
        return count


class NullTracer(Tracer):
    """A tracer that discards everything; the default sink."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        """False — callers can skip emitting entirely."""
        return False

    def wants(self, source: str, kind: str) -> bool:
        return False

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        return None
