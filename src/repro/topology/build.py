"""Domain instantiation: turn a ``SimulationSpec`` into live worlds.

One *domain* = one :class:`~repro.sim.Simulator` carrying a NIC (or a
software-scheduler port), its senders, and its sink. The construction
order inside a domain replicates the classic runners **exactly**
(simulator → frontend → sink → pipeline → factory → senders →
sampler), because constructor-time event scheduling and RNG stream
creation participate in the deterministic event order — a single-domain
topology must produce today's event stream bit-for-bit (golden-trace
gated).

Cross-shard determinism comes from three per-domain derivations that
depend only on the domain *index*, never on the shard layout:

* seed: ``setup.seed`` for domain 0 (classic parity), then
  ``setup.seed + index * 1_000_003``;
* packet sequence bank: ``index << 40`` (disjoint, reorder-safe);
* RNG streams: per-app names on the domain's own seeded streams.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core import FlowValveFrontend
from ..host import FixedRateSender, propagate_next_change, windows
from ..net import PacketFactory, PacketSink
from ..net.boundary import BoundaryOutbox, RemoteIngress
from ..nic import NicConfig, NicPipeline
from ..sim import Simulator
from .result import DomainSummary
from .spec import AppSpec, DomainSpec, SimulationSpec

__all__ = ["BuiltDomain", "build_domains", "summarize_domain", "timeline"]

#: Disjoint per-domain packet-sequence banks: 2^40 packets per domain
#: before collision — far above any simulated volume.
SEQ_BANK = 1 << 40

#: Seed stride between domains (prime, so striding never aliases the
#: small seed space users pick from).
SEED_STRIDE = 1_000_003


def domain_seed(setup_seed: int, index: int) -> int:
    """Domain *index*'s simulator seed. Domain 0 keeps the setup seed
    unchanged — single-domain topologies must match the classic engine
    bit-for-bit."""
    return setup_seed if index == 0 else setup_seed + index * SEED_STRIDE


class BuiltDomain:
    """A live domain plus the engine's handles into it."""

    __slots__ = (
        "name", "index", "spec", "sim", "sink", "nic", "port", "submit",
        "outboxes", "ingress", "apps", "records", "drop_records",
        "senders", "tracer", "registry", "sampler",
    )

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index
        self.outboxes: List[BoundaryOutbox] = []
        self.nic = None
        self.port = None
        self.tracer = None
        self.registry = None
        self.sampler = None
        self.records = None
        self.drop_records = None


def _demand_of(app: AppSpec, scale: float):
    """Resolve an app's demand declaration into a scaled schedule."""
    demand = app.demand
    if demand is None:
        return None
    base = demand if callable(demand) else windows(*[tuple(span) for span in demand])
    return propagate_next_change(lambda t: base(t) / scale, base)


def build_domains(spec: SimulationSpec, indices: Iterable[int]) -> List[BuiltDomain]:
    """Instantiate the domains at *indices* (ascending)."""
    all_domains = spec.topology.domains()
    single = len(all_domains) == 1
    out: List[BuiltDomain] = []
    for index in sorted(indices):
        out.append(_build_one(spec, all_domains[index], single))
    return out


def _build_one(spec: SimulationSpec, dom: DomainSpec, single: bool) -> BuiltDomain:
    setup = spec.setup
    built = BuiltDomain(dom.name, dom.index)
    built.spec = dom

    tracer = registry = None
    if single and spec.trace_path:
        from ..sim import Tracer

        tracer = Tracer(limit=spec.trace_limit)
    if single and spec.metrics_path:
        from ..stats.metrics import MetricsRegistry

        registry = MetricsRegistry()
    built.tracer = tracer
    built.registry = registry

    sim = Simulator(seed=domain_seed(setup.seed, dom.index), tracer=tracer, metrics=registry)
    # Window barriers pause this simulator mid-horizon; deferred fluid
    # work may be carried across them up to the spec's end (must be set
    # before the pipeline constructs its fluid lane).
    sim.carry_horizon = spec.duration
    built.sim = sim
    params = dom.nic.params if dom.nic.params is not None else (
        spec.params if spec.params is not None else setup.sched_params()
    )

    if dom.nic.scheduler == "flowvalve":
        frontend = FlowValveFrontend(
            dom.nic.policy, link_rate_bps=setup.link_bps, params=params
        )
    else:
        frontend = None

    sink = PacketSink(sim, rate_window=1.0, record_delays=spec.record_delays)
    built.sink = sink

    receive = sink.receive
    on_drop = None
    if spec.collect_records:
        records: List[tuple] = []
        drop_records: List[tuple] = []
        built.records = records
        built.drop_records = drop_records

        def receive(packet, _sink=sink, _records=records, _sim=sim):
            _records.append((packet.app, packet.seq, repr(_sim._now)))
            _sink.receive(packet)

        def on_drop(packet, _records=drop_records, _sim=sim):
            reason = packet.drop_reason
            _records.append(
                (packet.app, packet.seq,
                 reason.value if reason is not None else "", repr(_sim._now))
            )

    local_receiver = None if dom.remote else receive

    # A remote domain's egress terminates in another shard: construct
    # the outbox up front (a plain record collector — no simulator or
    # RNG interaction, so construction order stays deterministic) and
    # hand it to the pipeline, which installs it as the wire's lazy
    # sink. Installing at construction (rather than after, as the port
    # branch still does) is what lets the fluid lane's guard see a lazy
    # egress and engage on boundary NICs (DESIGN.md §11).
    outbox = BoundaryOutbox(dom.name, dom.wire.dst) if dom.remote else None

    if frontend is not None:
        kwargs = {}
        if dom.wire is not None:
            kwargs["wire_propagation"] = dom.wire.propagation_delay * setup.scale
        nic = NicPipeline.with_flowvalve(
            sim,
            setup.nic_config(**dict(dom.nic.config)),
            frontend,
            receiver=local_receiver,
            on_drop=on_drop,
            boundary=outbox,
            **kwargs,
        )
        built.nic = nic
        built.submit = nic.submit
        egress_link = nic.link
    else:
        from ..net import Link
        from ..sched import ScheduledPort, build_scheduler

        link_kwargs = {}
        if dom.wire is not None:
            link_kwargs["propagation_delay"] = dom.wire.propagation_delay * setup.scale
        egress_link = Link(
            sim, setup.scaled_wire_bps, receiver=local_receiver, **link_kwargs
        )
        sched_kwargs = {"backend": dom.nic.backend, "params": params}
        if dom.nic.queue_limit is not None:
            sched_kwargs["queue_limit"] = dom.nic.queue_limit
        sched = build_scheduler(
            dom.nic.scheduler, dom.nic.policy, setup.link_bps, **sched_kwargs
        )
        port = ScheduledPort(
            sim, sched, egress_link, freq_hz=NicConfig().freq_hz / setup.scale
        )
        built.port = port
        built.submit = port.submit

    if outbox is not None:
        if built.nic is None:
            # Software ports know nothing of boundaries; install the
            # lazy route on their link directly.
            egress_link.enable_lazy_delivery(outbox)
        built.outboxes.append(outbox)

    factory = PacketFactory(start_seq=dom.index * SEQ_BANK)
    built.senders = []
    for vf_index, app in enumerate(dom.apps):
        built.senders.append(
            FixedRateSender(
                sim,
                app.name,
                factory,
                built.submit,
                rate_bps=(
                    setup.sender_rate()
                    if app.rate_bps is None
                    else app.rate_bps / setup.scale
                ),
                packet_size=(
                    app.packet_size if app.packet_size is not None else spec.packet_size
                ),
                demand=_demand_of(app, setup.scale),
                vf_index=vf_index,
                jitter=app.jitter,
                rng=sim.random.stream(app.name),
            )
        )

    if registry is not None:
        from ..stats.metrics import MetricsSampler

        interval = (
            spec.metrics_interval
            if spec.metrics_interval is not None
            else spec.bin_seconds
        )
        built.sampler = MetricsSampler(sim, registry, interval=interval)

    built.ingress = RemoteIngress(sim, sink, receive, pipeline=built.nic)
    built.apps = tuple(app.name for app in dom.apps)
    return built


# ----------------------------------------------------------------------
# post-run harvesting
# ----------------------------------------------------------------------
def summarize_domain(built: BuiltDomain, spec: SimulationSpec) -> DomainSummary:
    """Reduce a live domain to a picklable result record."""
    sink = built.sink
    scale = spec.setup.scale
    series = {}
    for app in built.apps:
        rates = sink.rates.get(app)
        points = []
        t = spec.bin_seconds
        while t <= spec.duration + 1e-9:
            rate = rates.mean_rate(t - spec.bin_seconds, t) if rates else 0.0
            points.append((t, rate * scale))
            t += spec.bin_seconds
        series[app] = points
    fluid_absorbed = fluid_spills = fluid_suspends = 0
    if built.nic is not None:
        submitted = built.nic.submitted
        dropped = built.nic.dropped
        drops_by_reason = {
            reason.value: count
            for reason, count in built.nic.drops_by_reason.items()
            if count
        }
        lane = built.nic._fluid
        if lane is not None:
            fluid_absorbed = lane.absorbed
            fluid_spills = lane.spills
            fluid_suspends = lane.suspends
    else:
        submitted = built.port.submitted
        dropped = built.port.dropped
        drops_by_reason = {}
    return DomainSummary(
        name=built.name,
        index=built.index,
        scheduler=built.spec.nic.scheduler,
        apps=built.apps,
        packets=dict(sink.packets),
        bytes=dict(sink.bytes),
        series=series,
        delivered=sink.total_packets,
        delivered_bytes=sink.total_bytes,
        submitted=submitted,
        dropped=dropped,
        drops_by_reason=drops_by_reason,
        events=built.sim.events_executed,
        records=built.records,
        drop_records=built.drop_records,
        fluid_absorbed=fluid_absorbed,
        fluid_spills=fluid_spills,
        fluid_suspends=fluid_suspends,
    )


def observability_notes(spec: SimulationSpec, domains: Sequence[BuiltDomain]) -> str:
    """Flush single-domain trace/metrics taps; returns note suffixes
    in the classic runners' format."""
    notes = ""
    for built in domains:
        if built.tracer is not None and spec.trace_path:
            count = built.tracer.to_jsonl(spec.trace_path)
            notes += f", trace={count} records -> {spec.trace_path}"
        if built.sampler is not None and spec.metrics_path:
            built.sampler.sample()  # final snapshot at t=duration
            count = built.sampler.to_jsonl(spec.metrics_path)
            notes += f", metrics={count} snapshots -> {spec.metrics_path}"
    return notes


# ----------------------------------------------------------------------
# the classic single-NIC adapter
# ----------------------------------------------------------------------
def timeline(
    policy,
    demands,
    setup,
    duration: float = 60.0,
    bin_seconds: float = 5.0,
    title: str = "FlowValve timeline",
    packet_size: int = 1500,
    params=None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    trace_limit: int = 0,
):
    """Run FlowValve on one simulated NIC against backlogged senders.

    The figure-reproduction entry point (fig. 3/11/crossbar), rebuilt
    as a thin adapter over :class:`~repro.topology.SimulationSpec` —
    same world, same event stream, same
    :class:`~repro.experiments.base.TimelineResult` shape as the
    historical ``run_flowvalve_timeline``.
    """
    from .spec import SimulationSpec, Topology

    topo = Topology()
    topo.nic("nic0", policy=policy)
    topo.host("host0", nic="nic0")
    for app, demand in sorted(demands.items()):
        topo.app("host0", app, demand=demand)
    spec = SimulationSpec(
        topology=topo,
        setup=setup,
        duration=duration,
        bin_seconds=bin_seconds,
        title=title,
        packet_size=packet_size,
        params=params,
        trace_path=trace_path,
        metrics_path=metrics_path,
        trace_limit=trace_limit,
    )
    return spec.run().timeline()
