"""The rate-scaled testbed configuration.

:class:`ScaledSetup` historically lived in :mod:`repro.experiments.base`;
it moved here when :mod:`repro.topology` became the public construction
API (every simulation — figure reproduction, CLI what-if, sharded
fabric — starts from one). ``repro.experiments.base.ScaledSetup``
remains as a re-export, so existing imports and pickled campaign
params keep working.

**Rate scaling.** The paper's timelines run 45-60 s at 10-40 Gbit —
hundreds of millions of packets, beyond a per-packet Python DES. Every
timeline experiment therefore runs *rate-scaled* (DESIGN.md §1): all
bandwidths divide by ``scale`` and all latency/time constants multiply
by it, preserving every dimensionless ratio (packets per update epoch,
RTT/ΔT, queue time/epoch, burst/BDP). Results are reported in nominal
units by multiplying rates back up; measured delays divide by
``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.sched_tree import SchedulingParams
from ..nic import NicConfig

__all__ = ["ScaledSetup"]


@dataclass(frozen=True)
class ScaledSetup:
    """A consistent rate-scaled testbed configuration.

    Attributes
    ----------
    nominal_link_bps: the link rate the results are reported at.
    scale: the rate-scale divisor (DESIGN.md §1).
    wire_bps: the physical NIC wire in nominal units (the Netronome is
        a 40 Gbit card even when the policy ceiling is 10 Gbit — the
        distinction matters for the HTB ceiling-overshoot artifact).
    seed: simulation seed.
    """

    nominal_link_bps: float = 10e9
    scale: float = 100.0
    wire_bps: float = 40e9
    seed: int = 7

    @classmethod
    def for_link(cls, link_bps: float, *, scale: float = 100.0, seed: int = 7) -> "ScaledSetup":
        """A setup whose policy ceiling and physical wire coincide.

        This is the CLI/campaign convention: one ``--link`` flag names
        both rates (the HTB overshoot experiments, which need them to
        differ, construct their setups explicitly).
        """
        return cls(nominal_link_bps=link_bps, scale=scale, wire_bps=link_bps, seed=seed)

    @property
    def link_bps(self) -> float:
        """The scaled policy/link rate the simulation runs at."""
        return self.nominal_link_bps / self.scale

    @property
    def scaled_wire_bps(self) -> float:
        return self.wire_bps / self.scale

    def sched_params(self, **overrides) -> SchedulingParams:
        """Scaled FlowValve scheduling parameters."""
        return SchedulingParams.scaled(self.scale, **overrides)

    def nic_config(self, **overrides) -> NicConfig:
        """Scaled NIC configuration with epoch-consistent queue depths.

        Ring/dispatch depths are sized so their *time* at the scaled
        packet rate matches the real card's (≈1-2 ms of wire), which
        the plain depth/scale division can't express once a depth
        floors out.
        """
        cfg = NicConfig(line_rate_bps=self.wire_bps).scaled(self.scale)
        pps = self.link_bps / ((1500 + 20) * 8)
        ring = max(32, int(2.0 * self.sched_params().update_interval * pps))
        cfg = replace(
            cfg,
            tx_ring_depth=ring,
            dispatch_depth=2 * ring,
            buffer_count=8 * ring,
            **overrides,
        )
        return cfg

    def kernel_params(self):
        """Scaled kernel cost model."""
        from ..baselines import KernelParams

        return KernelParams().scaled(self.scale)

    def sender_rate(self, fraction_of_link: float = 1.4) -> float:
        """A backlogging offered rate: *fraction* × the scaled link.

        1.4× keeps every active sender decisively above any share it
        could be granted while bounding the (simulation-costly)
        dropped-packet volume."""
        return fraction_of_link * self.link_bps
