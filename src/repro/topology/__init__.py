"""The public simulation-construction API (DESIGN.md §11).

Declare a world with :class:`Topology` (NICs, hosts, apps, wires),
bind it to a :class:`ScaledSetup` in a :class:`SimulationSpec`, and
``run()`` it — inline, or sharded over worker processes via the
conservative-window engine in :mod:`repro.sim.shard`:

>>> from repro import ScaledSetup, SimulationSpec, Topology
>>> topo = (Topology()
...         .nic("n0", policy=policy)
...         .host("h0", nic="n0")
...         .app("h0", "KVS", demand=((0.0, 30.0, 9e9),)))
>>> result = SimulationSpec(topology=topo, setup=ScaledSetup()).run()

Every classic entry point — ``run_flowvalve_timeline``, the ``fv
simulate`` argument plumbing, the figure runners — is a thin adapter
over this package (:func:`timeline` is the single-NIC one they share).
"""

from .build import timeline
from .result import DomainSummary, SimulationResult
from .setup import ScaledSetup
from .spec import (
    AppSpec,
    DomainSpec,
    HostSpec,
    NicSpec,
    SimulationSpec,
    Topology,
    WireSpec,
)

__all__ = [
    "AppSpec",
    "DomainSpec",
    "DomainSummary",
    "HostSpec",
    "NicSpec",
    "ScaledSetup",
    "SimulationResult",
    "SimulationSpec",
    "Topology",
    "WireSpec",
    "timeline",
]
