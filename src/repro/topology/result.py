"""Result types for topology-built simulations.

A :class:`SimulationResult` aggregates one picklable
:class:`DomainSummary` per domain — the shard workers' wire format —
and adapts back to the classic :class:`TimelineResult` for the figure
pipeline. Everything except ``wall_seconds`` is deterministic for a
fixed spec (and identical across shard counts — the determinism suite
compares these objects field by field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["DomainSummary", "SimulationResult", "assemble_result"]


@dataclass
class DomainSummary:
    """One domain's harvested tallies (picklable; see
    :func:`repro.topology.build.summarize_domain`)."""

    name: str
    index: int
    scheduler: str
    apps: Tuple[str, ...]
    packets: Dict[str, int]
    bytes: Dict[str, int]
    #: app -> [(bin_end_seconds, nominal_bps)]
    series: Dict[str, List[Tuple[float, float]]]
    delivered: int
    delivered_bytes: int
    submitted: int
    dropped: int
    drops_by_reason: Dict[str, int]
    events: int
    #: collect_records taps: (app, seq, repr(time)) per delivery /
    #: (app, seq, reason, repr(time)) per drop; None when not recording.
    records: Optional[List[tuple]] = None
    drop_records: Optional[List[tuple]] = None
    #: Fluid fast-forward lane tallies (0 when the lane is off). Part
    #: of the bench artifact so the regression gate can localize which
    #: domain's lane disengaged, not just the event total.
    fluid_absorbed: int = 0
    fluid_spills: int = 0
    fluid_suspends: int = 0


@dataclass
class SimulationResult:
    """The outcome of ``SimulationSpec.run()``.

    ``domains`` is keyed by domain name in topology order.
    ``wall_seconds`` is the only wall-clock-dependent field; comparing
    two results for determinism means comparing everything else.
    """

    title: str
    duration: float
    bin_seconds: float
    scale: float
    seed: int
    shards: int
    windows: int
    degraded: bool
    domains: Dict[str, DomainSummary]
    wall_seconds: float
    notes: str = ""

    # ------------------------------------------------------------------
    @property
    def total_packets(self) -> int:
        """Frames delivered across every domain's sink."""
        return sum(d.delivered for d in self.domains.values())

    @property
    def total_submitted(self) -> int:
        return sum(d.submitted for d in self.domains.values())

    @property
    def total_dropped(self) -> int:
        return sum(d.dropped for d in self.domains.values())

    @property
    def total_events(self) -> int:
        """Kernel events executed, summed over every domain simulator."""
        return sum(d.events for d in self.domains.values())

    @property
    def total_fluid_absorbed(self) -> int:
        return sum(d.fluid_absorbed for d in self.domains.values())

    @property
    def total_fluid_spills(self) -> int:
        return sum(d.fluid_spills for d in self.domains.values())

    @property
    def total_fluid_suspends(self) -> int:
        return sum(d.fluid_suspends for d in self.domains.values())

    def throughput_bps(self, app: str) -> float:
        """Aggregate delivered nominal rate for *app* over the run."""
        if self.duration <= 0:
            return 0.0
        total = sum(d.bytes.get(app, 0) for d in self.domains.values())
        return total * 8 / self.duration * self.scale

    def app_names(self) -> List[str]:
        names = set()
        for domain in self.domains.values():
            names.update(domain.apps)
        return sorted(names)

    def timeline(self):
        """Adapt to the classic :class:`TimelineResult`.

        Single-domain results carry that domain's per-app series
        verbatim (bit-identical to the historical runner); multi-domain
        results sum the per-app series bin-by-bin across domains.
        """
        from ..experiments.base import TimelineResult

        result = TimelineResult(
            title=self.title, bin_seconds=self.bin_seconds, notes=self.notes
        )
        for app in self.app_names():
            merged: Dict[float, float] = {}
            order: List[float] = []
            for domain in self.domains.values():
                for t, value in domain.series.get(app, ()):
                    if t not in merged:
                        merged[t] = 0.0
                        order.append(t)
                    merged[t] += value
            result.series[app] = [(t, merged[t]) for t in order]
        return result

    def to_table(self):
        return self.timeline().to_table()


def assemble_result(spec, plan, barriers, summaries, wall_seconds: float,
                    extra_notes: str = "") -> SimulationResult:
    """Combine worker summaries into the final result (engine hook)."""
    domains = {summary.name: summary for summary in sorted(summaries, key=lambda s: s.index)}
    scale = spec.setup.scale
    if len(domains) == 1:
        only = next(iter(domains.values()))
        notes = f"scale=1/{scale:.0f}, drops={only.dropped}/{only.submitted}"
    else:
        total_dropped = sum(d.dropped for d in domains.values())
        total_submitted = sum(d.submitted for d in domains.values())
        notes = (
            f"scale=1/{scale:.0f}, domains={len(domains)}, "
            f"shards={plan.n_shards}, windows={len(barriers)}, "
            f"drops={total_dropped}/{total_submitted}"
        )
        if plan.degraded:
            notes += " [degraded: zero lookahead, sequential fallback]"
    notes += extra_notes
    return SimulationResult(
        title=spec.title,
        duration=spec.duration,
        bin_seconds=spec.bin_seconds,
        scale=scale,
        seed=spec.setup.seed,
        shards=plan.n_shards,
        windows=len(barriers),
        degraded=plan.degraded,
        domains=domains,
        wall_seconds=wall_seconds,
        notes=notes,
    )
