"""Declarative simulation construction: ``Topology`` + ``SimulationSpec``.

This is the one public way to build a simulation (DESIGN.md §11). A
:class:`Topology` declares the *world* — NICs (each with a QoS policy
and scheduler choice), hosts bound to NICs, apps on hosts, and wires
between NICs; a :class:`SimulationSpec` binds a topology to a
:class:`~repro.topology.setup.ScaledSetup`, a duration, and an
execution plan (shard count, window override, observability taps), and
``spec.run()`` executes it — inline for one shard, over the
conservative-window barrier protocol (:mod:`repro.sim.shard`) for
many.

The classic entry points (``run_flowvalve_timeline``, ``fv simulate``'s
argument plumbing, ``ScaledSetup.for_link`` construction snippets) are
thin adapters over this module; see :func:`repro.topology.timeline`.

A *domain* — the unit of parallelism — is one NIC plus the hosts/apps
that feed it and the sink that terminates wires pointing at it. Apps
within a domain are ordered by name (``vf_index`` = position), exactly
as the classic runners enumerated ``sorted(demands.items())``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from .setup import ScaledSetup

__all__ = [
    "AppSpec",
    "NicSpec",
    "HostSpec",
    "WireSpec",
    "DomainSpec",
    "Topology",
    "SimulationSpec",
]

#: Demand forms accepted by :meth:`Topology.app`: ``None`` (always
#: backlogged), a tuple of ``(start, end, nominal_bps)`` spans
#: (picklable — required for spawn-start workers), or a bare callable
#: ``time -> nominal_bps`` (fork/inline only).
DemandLike = Union[None, Sequence[Tuple[float, float, float]], Callable[[float], float]]


@dataclass(frozen=True)
class AppSpec:
    """One sender application on a host.

    ``demand`` is the *offered* load in nominal bit/s over time; the
    sender blasts at ``rate_bps`` (default: the setup's backlogging
    rate) gated by it. ``packet_size=None`` inherits the spec default.
    """

    name: str
    host: str
    demand: DemandLike = None
    packet_size: Optional[int] = None
    rate_bps: Optional[float] = None
    jitter: float = 0.1


@dataclass(frozen=True)
class NicSpec:
    """One NIC (== one simulation domain).

    ``scheduler`` names a :mod:`repro.sched` registry entry;
    ``"flowvalve"`` (the default) runs the full calibrated NIC
    pipeline, anything else runs the crossbar's ``ScheduledPort`` DES
    runtime. ``config`` overrides :meth:`ScaledSetup.nic_config`
    fields; ``queue_limit`` bounds a software scheduler's buffering.
    """

    name: str
    policy: Any
    scheduler: str = "flowvalve"
    backend: str = "pifo"
    config: Mapping[str, Any] = field(default_factory=dict)
    queue_limit: Optional[int] = None
    params: Optional[Any] = None


@dataclass(frozen=True)
class HostSpec:
    """A named app container attached to one NIC."""

    name: str
    nic: str


@dataclass(frozen=True)
class WireSpec:
    """A NIC's egress wire terminating at another domain's sink.

    ``propagation_delay`` is in *nominal* seconds and is multiplied by
    the setup's scale at build time (a time constant, DESIGN.md §1);
    the scaled value is the shard planner's lookahead. A NIC with no
    wire spec delivers to its own local sink (the classic testbed).
    """

    src: str
    dst: str
    propagation_delay: float = 5e-5


@dataclass(frozen=True)
class DomainSpec:
    """One resolved domain: NIC + its apps (name-ordered) + egress."""

    name: str
    index: int
    nic: NicSpec
    apps: Tuple[AppSpec, ...]
    wire: Optional[WireSpec]

    @property
    def remote(self) -> bool:
        """True when this domain's egress terminates in another domain."""
        return self.wire is not None and self.wire.dst != self.name


class Topology:
    """Builder for the simulated world.

    >>> topo = Topology()
    >>> topo.nic("n0", policy=policy)
    >>> topo.host("h0", nic="n0")
    >>> topo.app("h0", "KVS", demand=((0.0, 30.0, 9e9),))
    >>> topo.wire("n0", to="n1", propagation_delay=5e-5)   # cross-domain

    Methods return ``self`` for chaining. Domain order (== worker
    assignment order, seed-derivation order, packet-sequence banks) is
    NIC insertion order.
    """

    def __init__(self) -> None:
        self._nics: Dict[str, NicSpec] = {}
        self._hosts: Dict[str, HostSpec] = {}
        self._apps: List[AppSpec] = []
        self._wires: Dict[str, WireSpec] = {}

    # ------------------------------------------------------------------
    def nic(
        self,
        name: str,
        policy: Any,
        *,
        scheduler: str = "flowvalve",
        backend: str = "pifo",
        queue_limit: Optional[int] = None,
        params: Optional[Any] = None,
        **config: Any,
    ) -> "Topology":
        """Declare a NIC. Keyword overrides go to the NIC config."""
        if name in self._nics:
            raise ConfigError(f"duplicate NIC name {name!r}")
        self._nics[name] = NicSpec(
            name=name, policy=policy, scheduler=scheduler, backend=backend,
            config=dict(config), queue_limit=queue_limit, params=params,
        )
        return self

    def host(self, name: str, nic: str) -> "Topology":
        """Declare a host bound to *nic*."""
        if name in self._hosts:
            raise ConfigError(f"duplicate host name {name!r}")
        if nic not in self._nics:
            raise ConfigError(f"host {name!r} names unknown NIC {nic!r}")
        self._hosts[name] = HostSpec(name=name, nic=nic)
        return self

    def app(
        self,
        host: str,
        name: str,
        *,
        demand: DemandLike = None,
        packet_size: Optional[int] = None,
        rate_bps: Optional[float] = None,
        jitter: float = 0.1,
    ) -> "Topology":
        """Declare an app on *host* (see :data:`DemandLike`)."""
        if host not in self._hosts:
            raise ConfigError(f"app {name!r} names unknown host {host!r}")
        self._apps.append(
            AppSpec(
                name=name, host=host, demand=demand,
                packet_size=packet_size, rate_bps=rate_bps, jitter=jitter,
            )
        )
        return self

    def wire(self, src: str, to: str, *, propagation_delay: float = 5e-5) -> "Topology":
        """Point *src* NIC's egress at NIC *to*'s sink.

        *to* may name a NIC declared later (rings); it is validated at
        :meth:`domains` resolution time.
        """
        if src not in self._nics:
            raise ConfigError(f"wire source names unknown NIC {src!r}")
        if src in self._wires:
            raise ConfigError(f"NIC {src!r} already has an egress wire")
        if propagation_delay < 0:
            raise ConfigError(
                f"propagation delay must be >= 0, got {propagation_delay}"
            )
        self._wires[src] = WireSpec(src=src, dst=to, propagation_delay=propagation_delay)
        return self

    # ------------------------------------------------------------------
    def domains(self) -> Tuple[DomainSpec, ...]:
        """Resolve into ordered domains; validates the declaration."""
        if not self._nics:
            raise ConfigError("topology declares no NICs")
        for wire in self._wires.values():
            if wire.dst not in self._nics:
                raise ConfigError(
                    f"wire {wire.src!r} -> {wire.dst!r} names unknown NIC {wire.dst!r}"
                )
        by_nic: Dict[str, List[AppSpec]] = {name: [] for name in self._nics}
        for app in self._apps:
            by_nic[self._hosts[app.host].nic].append(app)
        out: List[DomainSpec] = []
        for index, (name, nic) in enumerate(self._nics.items()):
            apps = sorted(by_nic[name], key=lambda a: a.name)
            seen = set()
            for app in apps:
                if app.name in seen:
                    raise ConfigError(
                        f"duplicate app name {app.name!r} in domain {name!r} "
                        "(apps are accounted per name per sink)"
                    )
                seen.add(app.name)
            out.append(
                DomainSpec(
                    name=name, index=index, nic=nic,
                    apps=tuple(apps), wire=self._wires.get(name),
                )
            )
        return tuple(out)


@dataclass(frozen=True)
class SimulationSpec:
    """A complete, runnable simulation description.

    The spec is what shard workers receive: everything needed to
    rebuild any domain deterministically. ``shards=1`` runs inline
    (bit-identical to the pre-shard engine for single-domain
    topologies); ``shards=N`` fans domains over N worker processes.

    ``window`` overrides the barrier spacing (must be ``<=`` the
    planner's lookahead). ``collect_records`` switches sinks to the
    eventful route and records per-delivery/per-drop streams — the
    determinism suite's byte-comparison tap. ``trace_path``/
    ``metrics_path`` are single-domain-only observability dumps
    (identical semantics to the classic runners). ``timeout`` is the
    multi-process wall-clock budget in seconds.
    """

    topology: Topology
    setup: ScaledSetup = ScaledSetup()
    duration: float = 10.0
    bin_seconds: float = 5.0
    title: str = "simulation"
    packet_size: int = 1500
    params: Optional[Any] = None
    shards: int = 1
    window: Optional[float] = None
    record_delays: bool = False
    collect_records: bool = False
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    trace_limit: int = 0
    metrics_interval: Optional[float] = None
    timeout: Optional[float] = None

    def with_shards(self, shards: int) -> "SimulationSpec":
        """The same run at a different shard count (determinism suite)."""
        return replace(self, shards=shards)

    def plan(self):
        """The :class:`~repro.sim.shard.ShardPlan` this spec executes
        under (zero-lookahead guard included)."""
        from ..sim.shard import BoundaryWire, ShardPlan

        domains = self.topology.domains()
        self._validate(domains)
        wires = [
            BoundaryWire(
                src=d.name,
                dst=d.wire.dst,
                lookahead=d.wire.propagation_delay * self.setup.scale,
            )
            for d in domains
            if d.remote
        ]
        return ShardPlan.build(
            [d.name for d in domains], wires, self.shards, window=self.window
        )

    def run(self):
        """Execute; returns a :class:`~repro.topology.result.SimulationResult`."""
        from ..sim.shard import execute

        return execute(self)

    # ------------------------------------------------------------------
    def _validate(self, domains: Sequence[DomainSpec]) -> None:
        if self.setup.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.setup.scale}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if (self.trace_path or self.metrics_path) and (
            len(domains) > 1 or self.shards > 1
        ):
            raise ConfigError(
                "trace/metrics taps are single-domain, single-shard only "
                "(one tracer per simulator; workers cannot share a file)"
            )
        from ..sched import scheduler_names

        known = set(scheduler_names())
        for domain in domains:
            if domain.nic.scheduler not in known:
                raise ConfigError(
                    f"domain {domain.name!r} names unknown scheduler "
                    f"{domain.nic.scheduler!r}; known: {sorted(known)}"
                )
            if self.collect_records and domain.nic.scheduler != "flowvalve":
                raise ConfigError(
                    "collect_records is implemented for flowvalve domains "
                    f"(domain {domain.name!r} runs {domain.nic.scheduler!r})"
                )
