"""Rank-ordered queue backends: PIFO and the Eiffel bucket queue.

Both structures store ``(rank, packet)`` pairs and always release the
smallest rank first — the priority-queue abstraction every programmable
scheduler in the literature builds on. The two backends trade rank
precision against per-operation cost:

* :class:`PifoQueue` — the push-in-first-out queue of Sivaraman et al.
  (SIGCOMM 2016): an exact binary heap. Arbitrary float ranks,
  O(log n) push/pop, FIFO tie-break on equal rank via a monotone
  sequence number (hardware PIFOs shift equal-rank entries in arrival
  order; the sequence number reproduces that exactly).

* :class:`EiffelBucketQueue` — Eiffel's FFS-indexed circular bucket
  queue (Saeed et al., NSDI 2019): ranks are quantised to a
  ``granularity`` and land in a circular array of FIFO buckets; a
  find-first-set scan over an occupancy bitmap locates the next
  non-empty bucket in O(1) (Python models the word-wise ``ffs``
  instruction with big-int bit tricks). Ranks beyond the wheel's
  horizon overflow into a spill heap that is re-based onto the wheel
  as the head advances. Within one bucket, order is FIFO — so for
  ranks on the granularity lattice inside the horizon the dequeue
  order is *identical* to the PIFO (the conformance suite asserts
  this); finer rank differences inside one bucket are deliberately
  forgotten (the documented approximation that buys O(1) operations).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..errors import SchedulingError
from ..net.packet import Packet

__all__ = ["PifoQueue", "EiffelBucketQueue", "make_queue"]

#: A queue entry as returned by ``pop``/``pop_max``.
Entry = Tuple[float, Packet]


class PifoQueue:
    """Exact rank order: a heap of ``(rank, seq, packet)``.

    The monotone ``seq`` makes ties FIFO *and* keeps packets (which do
    not define ``<``) out of the comparison path.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, rank: float, packet: Packet) -> None:
        heapq.heappush(self._heap, (rank, self._seq, packet))
        self._seq += 1

    def peek_rank(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Optional[Entry]:
        if not self._heap:
            return None
        rank, _, packet = heapq.heappop(self._heap)
        return rank, packet

    def pop_max(self) -> Optional[Entry]:
        """Remove and return the *largest*-rank entry (latest arrival
        among ties) — the admission-control eviction path. O(n); runs
        only when the scheduler is full, never per packet."""
        if not self._heap:
            return None
        index = max(range(len(self._heap)), key=lambda i: self._heap[i][:2])
        rank, _, packet = self._heap[index]
        last = self._heap.pop()
        if index < len(self._heap):
            self._heap[index] = last
            heapq.heapify(self._heap)  # rare path; keep it simple
        return rank, packet

    def clear(self) -> None:
        self._heap.clear()
        self._seq = 0


class EiffelBucketQueue:
    """Circular FFS bucket queue with an overflow spill heap.

    Parameters
    ----------
    granularity: rank width of one bucket (quantisation step).
    n_buckets: wheel size; the in-wheel horizon covers
        ``n_buckets × granularity`` of rank beyond the current base.
    """

    def __init__(self, granularity: float = 1.0, n_buckets: int = 256):
        if granularity <= 0:
            raise SchedulingError(f"granularity must be positive, got {granularity}")
        if n_buckets < 2:
            raise SchedulingError(f"need at least 2 buckets, got {n_buckets}")
        self.granularity = float(granularity)
        self.n_buckets = n_buckets
        self._buckets: List[Deque[Entry]] = [deque() for _ in range(n_buckets)]
        self._bitmap = 0
        self._mask = (1 << n_buckets) - 1
        #: Index of the bucket holding ``base_rank``.
        self._head = 0
        #: Rank at the lower edge of the head bucket.
        self.base_rank = 0.0
        self._count = 0
        #: Beyond-horizon entries: a heap of (rank, seq, packet).
        self._overflow: List[Tuple[float, int, Packet]] = []
        self._seq = 0
        # --- statistics ------------------------------------------------
        #: Pushes that landed in the spill heap.
        self.overflow_pushes = 0
        #: Pushes whose rank was below base_rank (clamped to head).
        self.late_pushes = 0
        #: Times the wheel was re-based onto the overflow heap.
        self.rebases = 0

    def __len__(self) -> int:
        return self._count

    @property
    def horizon(self) -> float:
        """Highest rank the wheel currently covers (exclusive)."""
        return self.base_rank + self.n_buckets * self.granularity

    # ------------------------------------------------------------------
    def push(self, rank: float, packet: Packet) -> None:
        # The wheel's rank floor only advances through pops: if the
        # queue drains and the rank space has moved far ahead (WFQ
        # virtual time, LAS attained bytes), new pushes spill to the
        # overflow heap and the next pop re-bases the wheel onto them.
        offset_rank = rank - self.base_rank
        if offset_rank < 0:
            # A rank below the released floor cannot be served earlier
            # than "next"; clamp into the head bucket (documented
            # approximation — mirrors Eiffel's minimum-index floor).
            self.late_pushes += 1
            offset = 0
        else:
            offset = int(offset_rank / self.granularity)
        if offset >= self.n_buckets:
            heapq.heappush(self._overflow, (rank, self._seq, packet))
            self._seq += 1
            self.overflow_pushes += 1
            self._count += 1
            return
        index = (self._head + offset) % self.n_buckets
        self._buckets[index].append((rank, packet))
        self._bitmap |= 1 << index
        self._count += 1

    # ------------------------------------------------------------------
    def _drain_overflow(self) -> None:
        """Move spilled entries that now fit the wheel into buckets.

        Called whenever the head may have advanced, so an overflow
        entry is always wheel-resident before any in-wheel entry of a
        larger rank can be popped.
        """
        overflow = self._overflow
        while overflow and overflow[0][0] < self.horizon:
            rank, _, packet = heapq.heappop(overflow)
            offset_rank = rank - self.base_rank
            offset = 0 if offset_rank < 0 else int(offset_rank / self.granularity)
            if offset >= self.n_buckets:  # float-edge guard
                heapq.heappush(overflow, (rank, 0, packet))
                break
            index = (self._head + offset) % self.n_buckets
            self._buckets[index].append((rank, packet))
            self._bitmap |= 1 << index

    def _ffs_from_head(self) -> int:
        """Offset (in buckets, from head) of the first occupied bucket.

        Rotate the occupancy bitmap so the head bucket is bit 0, then
        isolate the lowest set bit — the big-int analogue of the
        word-wise ``ffs`` cascade Eiffel runs in O(1).
        """
        rotated = (
            (self._bitmap >> self._head)
            | (self._bitmap << (self.n_buckets - self._head))
        ) & self._mask
        return (rotated & -rotated).bit_length() - 1

    def peek_rank(self) -> Optional[float]:
        if self._count == 0:
            return None
        if self._bitmap == 0:
            return self._overflow[0][0]
        offset = self._ffs_from_head()
        index = (self._head + offset) % self.n_buckets
        return self._buckets[index][0][0]

    def pop(self) -> Optional[Entry]:
        if self._count == 0:
            return None
        if self._bitmap == 0:
            # Everything lives in the spill heap: re-base the wheel at
            # the smallest spilled rank and refill from the heap.
            self.base_rank = self._overflow[0][0]
            self._head = 0
            self.rebases += 1
        self._drain_overflow()
        offset = self._ffs_from_head()
        index = (self._head + offset) % self.n_buckets
        bucket = self._buckets[index]
        rank, packet = bucket.popleft()
        if not bucket:
            self._bitmap &= ~(1 << index)
        if offset:
            # Advance the head to the served bucket; the wheel's rank
            # floor moves with it, extending the horizon.
            self._head = index
            self.base_rank += offset * self.granularity
            self._drain_overflow()
        self._count -= 1
        return rank, packet

    def pop_max(self) -> Optional[Entry]:
        """Remove and return the largest-rank entry (eviction path).

        Spilled entries always outrank wheel entries; inside the wheel
        a find-*last*-set locates the farthest bucket and the bucket's
        max-rank entry is removed (O(bucket) — eviction only)."""
        if self._count == 0:
            return None
        if self._overflow:
            index = max(range(len(self._overflow)), key=lambda i: self._overflow[i][:2])
            rank, _, packet = self._overflow[index]
            last = self._overflow.pop()
            if index < len(self._overflow):
                self._overflow[index] = last
                heapq.heapify(self._overflow)
            self._count -= 1
            return rank, packet
        rotated = (
            (self._bitmap >> self._head)
            | (self._bitmap << (self.n_buckets - self._head))
        ) & self._mask
        offset = rotated.bit_length() - 1  # find-last-set
        index = (self._head + offset) % self.n_buckets
        bucket = self._buckets[index]
        worst = max(range(len(bucket)), key=lambda i: bucket[i][0])
        rank, packet = bucket[worst]
        del bucket[worst]
        if not bucket:
            self._bitmap &= ~(1 << index)
        self._count -= 1
        return rank, packet

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._bitmap = 0
        self._head = 0
        self.base_rank = 0.0
        self._count = 0
        self._overflow.clear()
        self._seq = 0


def make_queue(backend: str, *, granularity: float = 1.0, n_buckets: int = 256):
    """Instantiate a queue backend by name (``"pifo"`` / ``"eiffel"``)."""
    if backend == "pifo":
        return PifoQueue()
    if backend == "eiffel":
        return EiffelBucketQueue(granularity=granularity, n_buckets=n_buckets)
    raise SchedulingError(
        f"unknown queue backend {backend!r}; expected 'pifo' or 'eiffel'"
    )
