"""Adapters porting the existing schedulers behind the crossbar.

Three families of pre-existing scheduler code gain the
:class:`~repro.sched.base.Scheduler` interface here without any change
to their own modules:

* :class:`FlowValveScheduler` — Algorithm 1
  (:mod:`repro.core.scheduling`) run schedule-then-queue: the verdict
  decides *before* buffering, a FORWARD lands in a plain Tx FIFO and a
  DROP never occupies buffer space — exactly the paper's specialized
  tail drop. This is the *software-reference* form used by the
  crossbar runtime and the conformance tests; the calibrated NIC
  pipeline (:mod:`repro.nic.pipeline`) remains the authoritative
  FlowValve execution and is untouched by this adapter.

* :class:`QdiscScheduler` — wraps any classful qdisc (HTB, PRIO, the
  DPDK-QoS shaping tree) whose queue-then-schedule contract already
  matches the base interface; the adapter adds the uniform stats and
  step costs.

Builders that assemble these from a parsed policy live in
:mod:`repro.sched.registry`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..baselines.qdisc_base import Qdisc
from ..core.frontend import FlowValveFrontend
from ..core.scheduling import Verdict
from ..net.packet import DropReason, Packet
from ..nic.config import CycleCosts
from .base import Scheduler, StepCosts

__all__ = ["FlowValveScheduler", "QdiscScheduler"]

#: FlowValve's step budgets in the crossbar cost model, derived from
#: the calibrated NFP budgets (:class:`~repro.nic.config.CycleCosts`):
#: classify = one EMC hit, rank = Algorithm 1's per-class walk on a
#: 2-level path (two class visits + the leaf meter), enqueue/dequeue =
#: Tx FIFO ring ops. Totals 940 cycles — the policy-specific slice of
#: the pipeline's ≈3050-cycle packet budget.
_CAL = CycleCosts()
FLOWVALVE_COSTS = StepCosts(
    classify=float(_CAL.emc_hit),
    rank=float(2 * _CAL.sched_per_class + _CAL.meter),
    enqueue=float(_CAL.ring_op),
    dequeue=float(_CAL.ring_op),
)

#: DPDK QoS measures 1022 cycles/packet total (Fig. 13 calibration);
#: librte_sched folds classification into enqueue, so the budget is
#: split across the two queue operations.
DPDK_QOS_COSTS = StepCosts(classify=0.0, rank=0.0, enqueue=511.0, dequeue=511.0)

#: Kernel-qdisc algorithms driven outside the kernel runtime: charge
#: roughly the kernel's per-packet enqueue+dequeue CPU work expressed
#: at the NFP clock scale (the lock/softirq artifacts stay in
#: :class:`~repro.baselines.kernel.KernelQdiscRuntime`, not here).
KERNEL_ALGO_COSTS = StepCosts(classify=220.0, rank=260.0, enqueue=330.0, dequeue=330.0)


class FlowValveScheduler(Scheduler):
    """Algorithm 1 as a crossbar scheduler (software-reference mode).

    ``enqueue`` labels the packet and runs the full decision; FORWARDs
    enter a bounded Tx FIFO (depth ``tx_depth``; beyond it the packet
    drops as NO_BUFFER — with specialized tail drop the FIFO only ever
    holds the wire's serialisation backlog, so this bound is a safety
    net, not a policy instrument).
    """

    name = "flowvalve"

    def __init__(
        self,
        frontend: FlowValveFrontend,
        tx_depth: int = 1024,
        costs: Optional[StepCosts] = None,
    ):
        super().__init__(costs if costs is not None else FLOWVALVE_COSTS)
        self.frontend = frontend
        self.tx_depth = tx_depth
        self._fifo: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> bool:
        label = self.frontend.labeler.label(packet, now)
        if label is None:
            self.stats.unclassified += 1
            self.stats.dropped += 1
            return False
        if self.frontend.scheduler.decide(packet, now) is Verdict.DROP:
            self.stats.dropped += 1
            return False
        if len(self._fifo) >= self.tx_depth:
            self.stats.dropped += 1
            packet.mark_dropped(DropReason.NO_BUFFER)
            return False
        self._fifo.append(packet)
        self.stats.enqueued += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._fifo:
            return None
        self.stats.dequeued += 1
        return self._fifo.popleft()

    def next_ready_time(self, now: float) -> Optional[float]:
        return now if self._fifo else None

    @property
    def backlog(self) -> int:
        return len(self._fifo)


class QdiscScheduler(Scheduler):
    """Any classful qdisc behind the crossbar interface."""

    def __init__(self, qdisc: Qdisc, name: str, costs: Optional[StepCosts] = None):
        super().__init__(costs if costs is not None else KERNEL_ALGO_COSTS)
        self.qdisc = qdisc
        self.name = name

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.qdisc.enqueue(packet, now):
            self.stats.enqueued += 1
            return True
        self.stats.dropped += 1
        if packet.drop_reason is DropReason.UNCLASSIFIED:
            self.stats.unclassified += 1
        return False

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self.qdisc.dequeue(now)
        if packet is not None:
            self.stats.dequeued += 1
        return packet

    def next_ready_time(self, now: float) -> Optional[float]:
        return self.qdisc.next_ready_time(now)

    @property
    def backlog(self) -> int:
        return self.qdisc.backlog
