"""Rank programs: scheduling policies as functions packet → rank.

The PIFO abstraction's central result is that a large family of
schedulers reduce to "compute a rank at enqueue, always dequeue the
minimum". A :class:`RankProgram` is that computation, kept separate
from the queue backend so any program runs over either the exact PIFO
heap or the approximate Eiffel bucket queue.

Programs here:

* :class:`FifoProgram` — arrival order (rank = arrival counter).
* :class:`SrptProgram` — shortest remaining processing time: rank =
  remaining flow bytes. When flow sizes are unknown (our CBR/TCP
  senders don't announce them), it degrades to LAS (least attained
  service) — rank = bytes already sent by the flow — which is the
  standard information-oblivious stand-in (Eiffel ships the same
  fallback).
* :class:`PFabricProgram` — pFabric's scheduling half: identical rank
  function to SRPT (remaining size). pFabric's other half — tiny
  switch buffers with eviction of the worst-ranked packet — is the
  ``evict_on_full`` admission mode of
  :class:`~repro.sched.rank.RankScheduler`.
* :class:`WfqProgram` — weighted fair queueing via virtual-time finish
  tags: ``F_k = max(V, F_{k-1}) + size/weight``; the virtual clock V
  advances to the rank of each dequeued packet (start-time-fair
  approximations differ only in the V update).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..net.packet import Packet

__all__ = ["RankProgram", "FifoProgram", "SrptProgram", "PFabricProgram", "WfqProgram"]


class RankProgram:
    """One scheduling policy expressed as a rank function.

    ``key`` is the packet's classification key (class/flow id) — the
    scheduler computes it once and passes it to both hooks.
    """

    #: Display name.
    name: str = "rank"
    #: A rank step below which the program never distinguishes packets
    #: — the natural Eiffel bucket granularity for this rank space.
    natural_granularity: float = 1.0

    def rank(self, packet: Packet, key: str, now: float) -> float:
        raise NotImplementedError

    def on_dequeue(self, packet: Packet, rank: float, now: float) -> None:
        """Called when a packet leaves the queue (default: nothing)."""


class FifoProgram(RankProgram):
    """Arrival order — the identity scheduler (useful as a baseline
    and to sanity-check backends: any backend must serve FIFO ranks in
    FIFO order)."""

    name = "fifo"
    natural_granularity = 64.0  # ranks are integers; 64 arrivals/bucket

    def __init__(self) -> None:
        self._counter = 0

    def rank(self, packet: Packet, key: str, now: float) -> float:
        self._counter += 1
        return float(self._counter)


class SrptProgram(RankProgram):
    """Shortest remaining processing time, LAS when sizes are unknown.

    ``flow_sizes`` maps classification keys to total flow bytes; keys
    absent from the map use the LAS fallback.
    """

    name = "srpt"
    #: Ranks are bytes; one bucket ≈ 43 MTU-sized frames.
    natural_granularity = 65536.0

    def __init__(self, flow_sizes: Optional[Mapping[str, float]] = None):
        self.flow_sizes = dict(flow_sizes) if flow_sizes else {}
        #: Bytes offered so far per key (drives both modes).
        self.attained: Dict[str, float] = {}

    def rank(self, packet: Packet, key: str, now: float) -> float:
        attained = self.attained.get(key, 0.0)
        total = self.flow_sizes.get(key)
        if total is not None:
            rank = max(0.0, total - attained)  # remaining size (SRPT)
        else:
            rank = attained  # least attained service (LAS)
        self.attained[key] = attained + packet.size
        return rank


class PFabricProgram(SrptProgram):
    """pFabric's rank function — remaining flow size, like SRPT.

    Use with ``evict_on_full=True`` on the scheduler for the full
    pFabric behaviour (small buffers, worst-packet eviction).
    """

    name = "pfabric"


class WfqProgram(RankProgram):
    """Weighted fair queueing by virtual-time finish tags.

    ``weights`` maps classification keys to relative weights (missing
    keys get ``default_weight``). Ranks are in "virtual bits": a
    packet's tag advances its flow's finish time by ``8·size/weight``.
    """

    name = "wfq"
    #: One MTU frame of virtual bits at weight 1.
    natural_granularity = 12144.0

    def __init__(self, weights: Optional[Mapping[str, float]] = None, default_weight: float = 1.0):
        self.weights = dict(weights) if weights else {}
        self.default_weight = default_weight
        self._finish: Dict[str, float] = {}
        #: The virtual clock (monotone; advanced on dequeue).
        self.vtime = 0.0

    def weight_of(self, key: str) -> float:
        return self.weights.get(key, self.default_weight)

    def rank(self, packet: Packet, key: str, now: float) -> float:
        start = max(self.vtime, self._finish.get(key, 0.0))
        finish = start + packet.size * 8.0 / self.weight_of(key)
        self._finish[key] = finish
        return finish

    def on_dequeue(self, packet: Packet, rank: float, now: float) -> None:
        if rank > self.vtime:
            self.vtime = rank
