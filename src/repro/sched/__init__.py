"""The pluggable scheduler framework (ROADMAP item 3).

A crossbar where any scheduling policy runs on any workload over the
same NIC model:

* :mod:`.base` — the :class:`Scheduler` interface (classify → rank/
  admit → enqueue → dequeue) with per-step cycle costs;
* :mod:`.queues` — the two queue backends: an exact PIFO heap and an
  Eiffel-style FFS circular bucket queue;
* :mod:`.programs` — policies as rank functions (FIFO, pFabric/SRPT,
  WFQ);
* :mod:`.rank` — the generic rank scheduler over either backend;
* :mod:`.adapters` — FlowValve's Algorithm 1 and the kernel/DPDK
  baselines behind the same interface;
* :mod:`.registry` — name → builder resolution for the campaign axis
  and ``fv simulate --scheduler``;
* :mod:`.runtime` — :class:`ScheduledPort`, the DES drain loop that
  charges step costs and paces the wire.
"""

from .base import Scheduler, SchedulerStats, StepCosts
from .queues import EiffelBucketQueue, PifoQueue, make_queue
from .programs import FifoProgram, PFabricProgram, RankProgram, SrptProgram, WfqProgram
from .rank import RankScheduler
from .adapters import FlowValveScheduler, QdiscScheduler
from .registry import build_scheduler, scheduler_names
from .runtime import ScheduledPort

__all__ = [
    "Scheduler",
    "SchedulerStats",
    "StepCosts",
    "PifoQueue",
    "EiffelBucketQueue",
    "make_queue",
    "RankProgram",
    "FifoProgram",
    "SrptProgram",
    "PFabricProgram",
    "WfqProgram",
    "RankScheduler",
    "FlowValveScheduler",
    "QdiscScheduler",
    "build_scheduler",
    "scheduler_names",
    "ScheduledPort",
]
