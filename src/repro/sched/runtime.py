"""The crossbar runtime: drive any Scheduler on the NIC worker model.

:class:`ScheduledPort` is the DES loop that charges a scheduler's
:class:`~repro.sched.base.StepCosts` against a worker clock and paces
transmissions onto a :class:`~repro.net.link.Link` — the
offloaded-scheduler analogue of the kernel's softirq drain
(:class:`~repro.baselines.kernel.KernelQdiscRuntime`) with none of the
kernel's artifacts: no global lock, no refill inflation, no watchdog
timer grid. Enqueue-side steps (classify + rank + enqueue) and
dequeue-side steps are charged together at dequeue time, matching how
the DPDK model folds its budget into per-packet service time.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SchedulingError
from ..net.link import Link
from ..net.packet import Packet
from .base import Scheduler

__all__ = ["ScheduledPort"]


class ScheduledPort:
    """One egress port driven by a crossbar scheduler.

    Parameters
    ----------
    sim: the shared simulator.
    scheduler: any :class:`~repro.sched.base.Scheduler`.
    link: the egress wire.
    freq_hz: worker clock the scheduler's cycle costs are charged at
        (pre-scaled for rate-scaled experiments, like every other time
        constant).
    on_drop: optional hook invoked with each refused/evicted packet.
    """

    def __init__(
        self,
        sim,
        scheduler: Scheduler,
        link: Link,
        freq_hz: float = 1.2e9,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ):
        if freq_hz <= 0:
            raise SchedulingError(f"freq_hz must be positive, got {freq_hz}")
        self.sim = sim
        self.scheduler = scheduler
        self.link = link
        self.freq_hz = freq_hz
        self.on_drop = on_drop
        #: Per-packet compute service time from the scheduler's costs.
        self.service_time = scheduler.costs.seconds(freq_hz)
        self._work_signal = None
        # --- statistics ------------------------------------------------
        self.submitted = 0
        self.transmitted = 0
        self.dropped = 0
        self._loop = sim.process(self._drain())

    # ------------------------------------------------------------------
    def submit(self, packet: Packet) -> bool:
        """Sender-side handoff: classify + rank + enqueue, synchronously
        (the cycle cost of these steps is folded into the per-packet
        service time charged in the drain loop)."""
        self.submitted += 1
        if self.scheduler.enqueue(packet, self.sim.now):
            self._kick()
            return True
        self.dropped += 1
        if self.on_drop is not None:
            self.on_drop(packet)
        return False

    def _kick(self) -> None:
        signal = self._work_signal
        if signal is not None and not signal.triggered:
            self._work_signal = None
            signal.succeed()

    # ------------------------------------------------------------------
    def _drain(self):
        scheduler = self.scheduler
        link = self.link
        while True:
            while True:
                packet = scheduler.dequeue(self.sim.now)
                if packet is None:
                    break
                finish = link.send(packet)
                self.transmitted += 1
                # Pace at the slower of the wire and the scheduler's
                # compute budget — a scheduler costing more cycles than
                # a serialisation time is compute-bound, exactly the
                # regime Fig. 13 measures for DPDK QoS at 64 B.
                yield max(finish - self.sim.now, self.service_time)
            ready = scheduler.next_ready_time(self.sim.now)
            if ready is None:
                self._work_signal = self.sim.event()
                yield self._work_signal
            elif ready > self.sim.now:
                yield ready - self.sim.now
            else:
                yield 0.0

    # ------------------------------------------------------------------
    def stats_summary(self) -> str:
        """One-line status for reports."""
        return (
            f"port[{self.scheduler.name}]: in={self.submitted} "
            f"tx={self.transmitted} drop={self.dropped} "
            f"backlog={self.scheduler.backlog}"
        )
