"""Scheduler registry: build any crossbar scheduler from a policy.

Every scheduler the crossbar knows is a named builder
``(policy, link_bps, options) -> Scheduler``; the campaign's
``scheduler`` axis and ``fv simulate --scheduler`` resolve names here.

Name map
--------
``flowvalve``
    Algorithm 1 (software-reference adapter; the NIC pipeline remains
    the calibrated execution and is what the figure experiments run).
``htb``
    Kernel HTB's class tree + DRR built from the policy
    (:meth:`~repro.baselines.htb.HtbQdisc.from_policy`), *without* the
    kernel runtime's lock/inflation artifacts.
``prio``
    Strict-priority bands: the policy's filtered leaves are ordered by
    their class ``prio`` (then classid) and mapped onto bands.
``dpdk_qos``
    The DPDK QoS shaping math (the same HTB tree, artifact-free) with
    librte_sched's measured 1022-cycle per-packet budget.
``fifo`` / ``pfabric`` / ``srpt`` / ``wfq``
    Rank programs over a PIFO or Eiffel backend
    (:mod:`repro.sched.programs`); ``wfq`` derives per-class weights
    from the policy, the size-based programs run in LAS-fallback mode
    (CBR senders announce no flow sizes). ``pfabric`` enables
    evict-on-full admission (small buffers, worst-packet eviction).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..baselines.htb import HtbQdisc
from ..baselines.prio import PrioQdisc
from ..core.frontend import FlowValveFrontend
from ..core.sched_tree import SchedulingParams
from ..errors import SchedulingError
from ..tc.ast import FilterSpec, PolicyConfig
from ..tc.classifier import Classifier
from .adapters import DPDK_QOS_COSTS, FlowValveScheduler, QdiscScheduler
from .base import Scheduler
from .programs import FifoProgram, PFabricProgram, SrptProgram, WfqProgram
from .rank import RankScheduler

__all__ = ["SCHEDULER_NAMES", "build_scheduler", "scheduler_names"]

#: name -> builder(policy, link_bps, **options) -> Scheduler
_BUILDERS: Dict[str, Callable[..., Scheduler]] = {}


def _register(name: str):
    def deco(fn: Callable[..., Scheduler]):
        _BUILDERS[name] = fn
        return fn

    return deco


def scheduler_names() -> List[str]:
    """Registered scheduler names, sorted."""
    return sorted(_BUILDERS)


def build_scheduler(
    name: str,
    policy: PolicyConfig,
    link_bps: float,
    *,
    backend: str = "pifo",
    queue_limit: int = 1024,
    params: Optional[SchedulingParams] = None,
) -> Scheduler:
    """Build the named scheduler configured by *policy* at *link_bps*.

    ``backend`` selects the queue structure for rank-program
    schedulers (ignored by the adapters, which bring their own
    queues); ``params`` feeds FlowValve's scheduling parameters (e.g.
    rate-scaled update intervals).
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise SchedulingError(
            f"unknown scheduler {name!r}; registered: {', '.join(scheduler_names())}"
        )
    return builder(
        policy, link_bps, backend=backend, queue_limit=queue_limit, params=params
    )


# ----------------------------------------------------------------------
# adapters over existing schedulers
# ----------------------------------------------------------------------
@_register("flowvalve")
def _build_flowvalve(policy, link_bps, *, queue_limit, params, **_):
    frontend = FlowValveFrontend(policy, link_rate_bps=link_bps, params=params)
    return FlowValveScheduler(frontend, tx_depth=queue_limit)


@_register("htb")
def _build_htb(policy, link_bps, *, queue_limit, **_):
    return QdiscScheduler(HtbQdisc.from_policy(policy, queue_limit=queue_limit), "htb")


@_register("dpdk_qos")
def _build_dpdk_qos(policy, link_bps, *, queue_limit, **_):
    qdisc = HtbQdisc.from_policy(policy, queue_limit=queue_limit)
    return QdiscScheduler(qdisc, "dpdk_qos", costs=DPDK_QOS_COSTS)


@_register("prio")
def _build_prio(policy, link_bps, *, queue_limit, **_):
    # Band order: the policy's filtered leaves sorted by class prio
    # (unprioritised classes last), then classid for determinism.
    class_map = {c.classid: c for c in policy.classes}
    flowids: List[str] = []
    for spec in policy.filters:
        if spec.flowid not in flowids:
            flowids.append(spec.flowid)
    ordered = sorted(
        flowids,
        key=lambda fid: (
            class_map[fid].prio if class_map.get(fid) and class_map[fid].prio is not None else 1 << 16,
            fid,
        ),
    )
    band_of = {fid: band for band, fid in enumerate(ordered)}
    # tc convention: flowid "major:band+1" selects the band; remap the
    # policy's filters onto band class ids.
    filters = [
        FilterSpec(
            flowid=f"1:{band_of[spec.flowid] + 1:x}",
            match=dict(spec.match),
            prio=spec.prio,
        )
        for spec in policy.filters
    ]
    bands = max(1, len(ordered))
    return QdiscScheduler(
        PrioQdisc(bands=bands, classifier=Classifier(filters), queue_limit=queue_limit),
        "prio",
    )


# ----------------------------------------------------------------------
# rank programs over PIFO / Eiffel backends
# ----------------------------------------------------------------------
def _policy_classifier(policy: PolicyConfig) -> Optional[Classifier]:
    return Classifier(policy.filters) if policy.filters else None


@_register("fifo")
def _build_fifo(policy, link_bps, *, backend, queue_limit, **_):
    return RankScheduler(
        FifoProgram(),
        backend=backend,
        classifier=_policy_classifier(policy),
        limit_packets=queue_limit,
    )


@_register("srpt")
def _build_srpt(policy, link_bps, *, backend, queue_limit, **_):
    return RankScheduler(
        SrptProgram(),
        backend=backend,
        classifier=_policy_classifier(policy),
        limit_packets=queue_limit,
    )


@_register("pfabric")
def _build_pfabric(policy, link_bps, *, backend, queue_limit, **_):
    return RankScheduler(
        PFabricProgram(),
        backend=backend,
        classifier=_policy_classifier(policy),
        limit_packets=queue_limit,
        evict_on_full=True,
    )


@_register("wfq")
def _build_wfq(policy, link_bps, *, backend, queue_limit, **_):
    # Per-leaf weights from the policy; rank keys are filter flowids
    # when filters exist, app tags otherwise.
    class_map = {c.classid: c for c in policy.classes}
    weights: Dict[str, float] = {}
    for leaf in policy.leaves():
        weights[leaf.classid] = leaf.weight
    classifier = _policy_classifier(policy)
    if classifier is None:
        weights = {}
    return RankScheduler(
        WfqProgram(weights),
        backend=backend,
        classifier=classifier,
        limit_packets=queue_limit,
    )


#: Public list of registered names (stable import point for docs/CLI).
SCHEDULER_NAMES = scheduler_names()
