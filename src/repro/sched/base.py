"""The pluggable scheduler interface.

ROADMAP item 3: any scheduling policy should run on any workload over
the same NIC model. A :class:`Scheduler` is the unit of that crossbar —
it extends the classful qdisc contract (``enqueue``/``dequeue``/
``next_ready_time``/``backlog``) the kernel and DPDK runtimes already
drive, and adds two things those runtimes never needed:

* **step costs** — a :class:`StepCosts` budget (micro-engine cycles per
  classify / rank / enqueue / dequeue step) so the worker model can
  charge the pipeline stages of *any* scheduler the way the calibrated
  FlowValve pipeline charges Algorithm 1's steps;
* **uniform statistics** — a :class:`SchedulerStats` ledger every
  implementation fills the same way, so crossbar reports compare
  schedulers without per-scheduler accessors.

Implementations: :class:`~repro.sched.rank.RankScheduler` (rank
programs over a PIFO/Eiffel backend) and the adapters in
:mod:`repro.sched.adapters` (FlowValve's Algorithm 1, kernel qdiscs,
DPDK QoS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.qdisc_base import Qdisc
from ..errors import SchedulingError
from ..net.packet import Packet

__all__ = ["StepCosts", "SchedulerStats", "Scheduler"]


@dataclass(frozen=True)
class StepCosts:
    """Per-step cycle budgets of one scheduler, in worker-core cycles.

    The four steps mirror the pipeline every scheduler decomposes into:
    *classify* (match the packet to a class/flow key), *rank* (compute
    its service order / admission verdict), *enqueue* (insert into the
    queue structure) and *dequeue* (extract the next packet and write
    its Tx descriptor). Defaults are modest estimates anchored to the
    calibrated :class:`~repro.nic.config.CycleCosts` scale (an EMC hit
    is 180 cycles there); adapters override them with their own
    calibration — e.g. DPDK QoS carries its measured 1022 cycles/packet
    split across enqueue/dequeue.
    """

    classify: float = 180.0
    rank: float = 120.0
    enqueue: float = 150.0
    dequeue: float = 200.0

    def __post_init__(self) -> None:
        for name in ("classify", "rank", "enqueue", "dequeue"):
            if getattr(self, name) < 0:
                raise SchedulingError(f"step cost {name} must be >= 0")

    @property
    def per_packet(self) -> float:
        """Total cycles one forwarded packet pays across all steps."""
        return self.classify + self.rank + self.enqueue + self.dequeue

    def seconds(self, freq_hz: float) -> float:
        """Per-packet budget as seconds at a *freq_hz* worker clock."""
        return self.per_packet / freq_hz


@dataclass
class SchedulerStats:
    """Lifetime counters every :class:`Scheduler` maintains."""

    enqueued: int = 0
    dequeued: int = 0
    #: Packets refused at enqueue (admission, queue-full, red verdict).
    dropped: int = 0
    #: Subset of ``dropped``: queued packets displaced by a better one.
    evicted: int = 0
    #: Subset of ``dropped``: no classification matched.
    unclassified: int = 0


class Scheduler(Qdisc):
    """A packet scheduler behind the crossbar interface.

    The conceptual per-packet pipeline is classify → rank/admit →
    enqueue, then dequeue on the egress side; concrete subclasses may
    fuse steps (FlowValve's Algorithm 1 *is* the rank/admit step) but
    must keep the :class:`Qdisc` contract: ``enqueue`` returns False
    (with the packet drop-marked) on refusal, ``dequeue`` returns
    ``None`` when empty or throttled, ``next_ready_time`` bounds the
    runtime's sleep.
    """

    #: Registry/display name; subclasses override.
    name: str = "scheduler"

    def __init__(self, costs: Optional[StepCosts] = None):
        self.costs = costs if costs is not None else StepCosts()
        self.stats = SchedulerStats()

    # Qdisc.enqueue/dequeue/next_ready_time/backlog stay abstract.

    def describe(self) -> str:
        """One status line for reports."""
        s = self.stats
        return (
            f"{self.name}: enq={s.enqueued} deq={s.dequeued} "
            f"drop={s.dropped} (evicted={s.evicted}, "
            f"unclassified={s.unclassified}) backlog={self.backlog}"
        )

    # Convenience used by tests and small harnesses -------------------
    def drain(self, now: float, limit: Optional[int] = None) -> list:
        """Dequeue until empty/throttled (or *limit* packets)."""
        out = []
        while limit is None or len(out) < limit:
            packet = self.dequeue(now)
            if packet is None:
                break
            out.append(packet)
        return out
