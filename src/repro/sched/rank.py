"""The rank scheduler: classify → rank → admit → queue backend.

:class:`RankScheduler` is the generic half of the crossbar: any
:class:`~repro.sched.programs.RankProgram` over any queue backend
(:mod:`repro.sched.queues`). Classification reuses the same filter
machinery as FlowValve and the kernel qdiscs (a
:class:`~repro.tc.classifier.Classifier` whose flowids become rank
keys); without filters the packet's ``app`` tag is the key — the
testbed convention everywhere else in the repo.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import DropReason, Packet
from ..tc.classifier import Classifier
from .base import Scheduler, StepCosts
from .programs import RankProgram
from .queues import make_queue

__all__ = ["RankScheduler"]


class RankScheduler(Scheduler):
    """A rank program over a PIFO/Eiffel backend with bounded buffering.

    Parameters
    ----------
    program: the rank function (and its dequeue hook).
    backend: ``"pifo"`` (exact) or ``"eiffel"`` (bucketed).
    classifier: optional filter rules; matched flowids become rank
        keys. Unmatched packets fall back to ``default_key`` (or are
        dropped as unclassified when that is ``None``).
    limit_packets: total buffered packets across all keys.
    evict_on_full: when full, displace the currently-queued packet
        with the *largest* rank if the newcomer ranks strictly better
        (pFabric's small-buffer behaviour); otherwise tail-drop the
        newcomer. Re-inserting an evicted survivor is never needed —
        eviction removes exactly one entry, making room for exactly
        one.
    granularity / n_buckets: Eiffel wheel geometry; granularity
        defaults to the program's ``natural_granularity``.
    """

    def __init__(
        self,
        program: RankProgram,
        backend: str = "pifo",
        classifier: Optional[Classifier] = None,
        default_key: Optional[str] = None,
        limit_packets: int = 4096,
        evict_on_full: bool = False,
        granularity: Optional[float] = None,
        n_buckets: int = 256,
        costs: Optional[StepCosts] = None,
    ):
        super().__init__(costs)
        self.program = program
        self.backend = backend
        self.classifier = classifier
        self.default_key = default_key
        self.limit = limit_packets
        self.evict_on_full = evict_on_full
        if granularity is None:
            granularity = program.natural_granularity
        self.queue = make_queue(backend, granularity=granularity, n_buckets=n_buckets)
        self.name = f"{program.name}[{backend}]"

    # ------------------------------------------------------------------
    def key_for(self, packet: Packet) -> Optional[str]:
        """The packet's rank key: filter flowid, else app tag/default."""
        if self.classifier is not None and len(self.classifier):
            flowid = self.classifier.classify(packet)
            if flowid is not None:
                return flowid
            return self.default_key
        if packet.app:
            return packet.app
        return self.default_key

    def enqueue(self, packet: Packet, now: float) -> bool:
        key = self.key_for(packet)
        if key is None:
            self.stats.unclassified += 1
            self.stats.dropped += 1
            packet.mark_dropped(DropReason.UNCLASSIFIED)
            return False
        rank = self.program.rank(packet, key, now)
        if len(self.queue) >= self.limit:
            if not self.evict_on_full:
                self.stats.dropped += 1
                packet.mark_dropped(DropReason.CLASS_QUEUE_FULL)
                return False
            worst = self.queue.pop_max()
            if worst is not None and worst[0] <= rank:
                # Newcomer is no better than the worst resident: the
                # resident keeps its slot, the newcomer drops.
                self.queue.push(worst[0], worst[1])
                self.stats.dropped += 1
                packet.mark_dropped(DropReason.CLASS_QUEUE_FULL)
                return False
            if worst is not None:
                self.stats.evicted += 1
                self.stats.dropped += 1
                worst[1].mark_dropped(DropReason.CLASS_QUEUE_FULL)
        self.queue.push(rank, packet)
        self.stats.enqueued += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        entry = self.queue.pop()
        if entry is None:
            return None
        rank, packet = entry
        self.program.on_dequeue(packet, rank, now)
        self.stats.dequeued += 1
        return packet

    def next_ready_time(self, now: float) -> Optional[float]:
        # Rank schedulers are work-conserving: ready iff non-empty
        # (pacing/shaping is the runtime's job, not the rank order's).
        return now if len(self.queue) else None

    @property
    def backlog(self) -> int:
        return len(self.queue)
