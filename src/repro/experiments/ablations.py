"""Ablations of FlowValve's design decisions (DESIGN.md §5).

* A-LOCK — Fig. 7: what the update-locking discipline costs. The same
  pipeline runs with FlowValve's per-class *try-lock* (losers skip),
  blocking per-class locks (Fig. 7c), one global tree lock, and a
  fully serialised scheduling function (Fig. 7b). Throughput at 64 B
  shows why "simply running a scheduling function on each core is not
  enough".
* A-DELAY — Fig. 10: token-rate propagation delay down a priority
  chain. A step change in the top class's rate takes one update epoch
  per tree level to reach the bottom class.
* A-INTERVAL — rate conformance vs the update interval ΔT.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..core import FlowValve, FlowValveFrontend
from ..core.scheduling import Verdict
from ..core.sched_tree import SchedulingParams
from ..net import FiveTuple, PacketFactory, PacketSink
from ..nic import NicConfig, NicPipeline
from ..host import FixedRateSender
from ..sim import Simulator
from ..stats.report import Table
from ..tc.parser import parse_script
from .base import ScaledSetup, warn_deprecated
from .policies import fair_policy

__all__ = [
    "LockModeResult",
    "LockAblationResult",
    "lock_modes",
    "run_lock_mode_ablation",
    "lock_ablation_table",
    "PropagationResult",
    "PropagationDelayResult",
    "propagation",
    "run_propagation_delay",
    "IntervalSensitivityResult",
    "interval_sensitivity",
    "run_update_interval_sensitivity",
]


# ----------------------------------------------------------------------
# A-LOCK
# ----------------------------------------------------------------------
@dataclass
class LockModeResult:
    """Throughput of one locking discipline at 64 B saturation."""

    lock_mode: str
    mpps: float
    lock_wait_seconds: float


@dataclass
class LockAblationResult:
    """The measured A-LOCK ablation (unified-API wrapper)."""

    results: List[LockModeResult]

    def to_table(self) -> Table:
        return lock_ablation_table(self.results)


def lock_modes(
    setup: Optional[ScaledSetup] = None,
    *,
    modes: Optional[List[str]] = None,
    window: float = 0.002,
    packet_size: int = 64,
) -> LockAblationResult:
    """Measure 64 B forwarding capacity per locking discipline.

    Capacity runs execute at full modelled rates; only ``setup.seed``
    is consumed.
    """
    seed = setup.seed if setup is not None else 23
    modes = modes if modes is not None else [
        "trylock", "per_class_block", "global_block", "sequential",
    ]
    results: List[LockModeResult] = []
    for mode in modes:
        sim = Simulator(seed=seed)
        params = SchedulingParams(update_interval=0.0005, expire_after=0.005)
        frontend = FlowValveFrontend(
            fair_policy(40e9, 4), link_rate_bps=40e9, params=params
        )
        cfg = replace(NicConfig(), lock_mode=mode)
        sink = PacketSink(sim, rate_window=window, record_delays=False)
        nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
        factory = PacketFactory()
        per_app = 10e6 * packet_size * 8  # 40 Mpps aggregate offered
        for i in range(4):
            FixedRateSender(
                sim, f"App{i}", factory, nic.submit, rate_bps=per_app,
                packet_size=packet_size, vf_index=i, jitter=0.05,
                rng=sim.random.stream(f"App{i}"),
            )
        warmup = 0.2 * window
        counts = {}
        sim.schedule_at(warmup, lambda: counts.update(at_warmup=sink.total_packets))
        sim.run(until=warmup + window)
        mpps = (sink.total_packets - counts["at_warmup"]) / window / 1e6
        results.append(LockModeResult(mode, round(mpps, 2), round(nic.app.lock_contention, 6)))
    return LockAblationResult(results=results)


def run_lock_mode_ablation(
    modes: Optional[List[str]] = None,
    window: float = 0.002,
    packet_size: int = 64,
    seed: int = 23,
) -> List[LockModeResult]:
    """Deprecated alias for :func:`lock_modes`; returns the bare list."""
    warn_deprecated("run_lock_mode_ablation", "repro.experiments.ablations.lock_modes")
    setup = ScaledSetup(nominal_link_bps=40e9, scale=1.0, wire_bps=40e9, seed=seed)
    return lock_modes(setup, modes=modes, window=window, packet_size=packet_size).results


def lock_ablation_table(results: List[LockModeResult]) -> Table:
    table = Table(
        "A-LOCK — 64 B forwarding capacity per update-locking discipline (Fig. 7)",
        ["lock mode", "Mpps", "lock wait (s)"],
    )
    for r in results:
        table.add_row(r.lock_mode, r.mpps, f"{r.lock_wait_seconds:.4f}")
    return table


# ----------------------------------------------------------------------
# A-DELAY
# ----------------------------------------------------------------------
@dataclass
class PropagationResult:
    """Convergence time of one class after the step change."""

    classid: str
    depth: int
    settle_seconds: float
    settle_epochs: float


@dataclass
class PropagationDelayResult:
    """The measured A-DELAY propagation chain (unified-API wrapper)."""

    results: List[PropagationResult]
    update_interval: float = 0.01

    def to_table(self) -> Table:
        table = Table(
            "A-DELAY — token-rate propagation down a priority chain (Fig. 10)",
            ["classid", "depth", "settle (s)", "settle (epochs)"],
        )
        for r in self.results:
            table.add_row(r.classid, r.depth, f"{r.settle_seconds:.4f}", r.settle_epochs)
        return table


def propagation(
    setup: Optional[ScaledSetup] = None,
    *,
    update_interval: float = 0.01,
    levels: int = 3,
) -> PropagationDelayResult:
    """Fig. 10's analysis, measured.

    Build a priority chain A0 ≻ A1 ≻ A2 (each level one deeper in the
    tree), run A0 at a high rate, then step A0 down at T and record
    when each lower class's θ settles within 5% of its new value.
    Software mode (no NIC costs) — this isolates the algorithm's
    propagation dynamics; the deterministic drive loop consumes no
    randomness, so ``setup`` is accepted only for API uniformity.
    """
    del setup  # software-mode and seedless; kept for the unified signature
    link = 10e6
    script_lines = [
        "fv qdisc add dev eth0 root handle 1: fv default 0",
        f"fv class add dev eth0 parent 1: classid 1:1 fv rate {link:.0f} ceil {link:.0f}",
    ]
    parent = "1:1"
    leaf_ids: List[str] = []
    for level in range(levels):
        leaf = f"1:{0x10 + level:x}"
        leaf_ids.append(leaf)
        script_lines.append(
            f"fv class add dev eth0 parent {parent} classid {leaf} fv prio 0 rate {link:.0f}"
        )
        if level < levels - 1:
            interior = f"1:{0x2 + level:x}"
            script_lines.append(
                f"fv class add dev eth0 parent {parent} classid {interior} fv prio 1 rate {link:.0f}"
            )
            parent = interior
    for level, leaf in enumerate(leaf_ids):
        script_lines.append(
            f"fv filter add dev eth0 parent 1: match app=A{level} flowid {leaf}"
        )
    params = SchedulingParams(
        update_interval=update_interval,
        expire_after=20 * update_interval,
    )
    valve = FlowValve(parse_script("\n".join(script_lines)), link_rate_bps=link, params=params)

    factory = PacketFactory()
    flows = {f"A{i}": FiveTuple(f"10.0.0.{i}", "10.0.1.1", 1, 80) for i in range(levels)}
    size = 1250
    bits = (size + 20) * 8
    step_at = 2.0
    high, low = 0.8 * link, 0.1 * link

    def offered(app: str, t: float) -> float:
        if app == "A0":
            return high if t < step_at else low
        if app == f"A{levels - 1}":
            return 2 * link  # the bottom class is always hungry
        return 0.3 * link  # middle classes have fixed moderate demand

    # Event-driven drive loop.
    import heapq

    heap = [(0.0, app) for app in flows]
    heapq.heapify(heap)
    horizon = step_at + 100 * update_interval
    theta_trace: Dict[str, List] = {leaf: [] for leaf in leaf_ids}
    while heap:
        t, app = heapq.heappop(heap)
        if t >= horizon:
            break
        rate = offered(app, t)
        packet = factory.make(size, flows[app], t, app=app)
        valve.process(packet, t)
        for leaf in leaf_ids:
            theta_trace[leaf].append((t, valve.tree.node(leaf).theta))
        heapq.heappush(heap, (t + bits / rate, app))

    results: List[PropagationResult] = []
    for level, leaf in enumerate(leaf_ids):
        if level == 0:
            continue  # the stepped class itself
        final_theta = theta_trace[leaf][-1][1]
        settle = horizon
        # Last time θ was outside 5% of its final value.
        for t, theta in reversed(theta_trace[leaf]):
            if t < step_at:
                break
            if abs(theta - final_theta) > 0.10 * max(final_theta, 1.0):
                settle = t
                break
        else:
            settle = step_at
        settle_delay = max(0.0, settle - step_at)
        node = valve.tree.node(leaf)
        results.append(PropagationResult(
            classid=leaf,
            depth=node.depth,
            settle_seconds=round(settle_delay, 4),
            settle_epochs=round(settle_delay / update_interval, 2),
        ))
    return PropagationDelayResult(results=results, update_interval=update_interval)


def run_propagation_delay(
    update_interval: float = 0.01,
    levels: int = 3,
) -> List[PropagationResult]:
    """Deprecated alias for :func:`propagation`; returns the bare list."""
    warn_deprecated("run_propagation_delay", "repro.experiments.ablations.propagation")
    return propagation(update_interval=update_interval, levels=levels).results


# ----------------------------------------------------------------------
# A-INTERVAL
# ----------------------------------------------------------------------
@dataclass
class IntervalSensitivityResult:
    """The measured A-INTERVAL sweep (unified-API wrapper).

    ``overshoot`` maps ΔT → ``{"epoch": o, "continuous": o}`` where o
    is the worst-0.5s-window overshoot relative to the target rate.
    """

    overshoot: Dict[float, Dict[str, float]]

    def to_table(self) -> Table:
        table = Table(
            "A-INTERVAL — worst-window overshoot vs update interval ΔT",
            ["ΔT (s)", "epoch refill", "continuous refill"],
        )
        for interval in sorted(self.overshoot):
            row = self.overshoot[interval]
            table.add_row(interval, f"{row['epoch']:+.1%}", f"{row['continuous']:+.1%}")
        return table


def interval_sensitivity(
    setup: Optional[ScaledSetup] = None,
    *,
    intervals: Optional[List[float]] = None,
    target_bps: float = 4e6,
    duration: float = 30.0,
) -> IntervalSensitivityResult:
    """Short-window rate conformance vs the update interval ΔT.

    Long-run conformance is exact in both refill modes; what ΔT
    controls is *burstiness*: with the paper's literal epoch-granted
    refill (Fig. 8's "supplement token number = ΔT × θ"), a whole
    epoch's tokens land at once, so the worst 0.5 s window can carry
    far more than the configured rate. The hardware-meter model
    (continuous refill) is flat in ΔT.

    Returns ``{ΔT: {"epoch": overshoot, "continuous": overshoot}}``
    where overshoot = (worst-window rate − target)/target under 2×
    constant overload. Software-mode and deterministic, so ``setup``
    is accepted only for API uniformity.
    """
    del setup  # software-mode and seedless; kept for the unified signature
    intervals = intervals if intervals is not None else [0.01, 0.05, 0.1, 0.5, 1.0]
    script = f"""
    fv qdisc add dev eth0 root handle 1: fv default 0
    fv class add dev eth0 parent 1: classid 1:1 fv rate 10000000 ceil 10000000
    fv class add dev eth0 parent 1:1 classid 1:10 fv rate {target_bps:.0f} ceil {target_bps:.0f}
    fv filter add dev eth0 parent 1: match app=A flowid 1:10
    """
    size = 1250
    bits = (size + 20) * 8
    window = 0.5
    results: Dict[float, Dict[str, float]] = {}
    for interval in intervals:
        row: Dict[str, float] = {}
        for mode, continuous in (("continuous", True), ("epoch", False)):
            params = SchedulingParams(
                update_interval=interval,
                expire_after=20 * interval,
                continuous_refill=continuous,
            )
            valve = FlowValve(parse_script(script), link_rate_bps=10e6, params=params)
            factory = PacketFactory()
            flow = FiveTuple("10.0.0.1", "10.0.1.1", 1, 80)
            bins: Dict[int, float] = {}
            t = 0.0
            gap = bits / (2 * target_bps)
            while t < duration:
                packet = factory.make(size, flow, t, app="A")
                if valve.process(packet, t) is Verdict.FORWARD:
                    index = int(t / window)
                    bins[index] = bins.get(index, 0.0) + bits
                t += gap
            worst = max(bins.values()) / window if bins else 0.0
            row[mode] = round(max(0.0, worst - target_bps) / target_bps, 4)
        results[interval] = row
    return IntervalSensitivityResult(overshoot=results)


def run_update_interval_sensitivity(
    intervals: Optional[List[float]] = None,
    target_bps: float = 4e6,
    duration: float = 30.0,
) -> Dict[float, Dict[str, float]]:
    """Deprecated alias for :func:`interval_sensitivity`; returns the
    bare ΔT → overshoot mapping."""
    warn_deprecated(
        "run_update_interval_sensitivity",
        "repro.experiments.ablations.interval_sensitivity",
    )
    return interval_sensitivity(
        intervals=intervals, target_bps=target_bps, duration=duration
    ).overshoot
