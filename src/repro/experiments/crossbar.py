"""The scheduler crossbar: any scheduler × any workload, one spec.

ROADMAP item 3. ``run(setup, scheduler=..., workload=...)`` drives a
named crossbar scheduler (:mod:`repro.sched.registry`) against a named
workload (policy + demand timeline) on the shared NIC model and
returns the usual :class:`~repro.experiments.base.TimelineResult`.

The default FlowValve scheduler routes through the *unchanged*
calibrated NIC pipeline (:func:`repro.topology.timeline`) — selecting
it reproduces the Fig. 11 numbers byte-identically. Every other scheduler runs on the
:class:`~repro.sched.runtime.ScheduledPort` worker-model runtime,
which charges the scheduler's step costs and paces the same wire.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CampaignError
from ..net import Link, PacketFactory, PacketSink
from ..nic.config import NicConfig
from ..host import FixedRateSender
from ..sim import Simulator
from ..sched import ScheduledPort, build_scheduler
from ..topology import timeline
from .base import ScaledSetup, TimelineResult, _collect_timeline, _scale_demand
from .policies import fair_policy, motivation_policy
from .workloads import fair_queueing_demands, motivation_demands

__all__ = ["WORKLOADS", "run"]

#: Workload name -> (policy builder, demand builder, default setup).
WORKLOADS = {
    "motivation": (
        motivation_policy,
        lambda link_bps: motivation_demands(link_bps),
        lambda seed: ScaledSetup(seed=seed),  # 10 Gbit policy, 40 Gbit wire
    ),
    "fair": (
        fair_policy,
        lambda link_bps: fair_queueing_demands(),
        lambda seed: ScaledSetup.for_link(40e9, seed=seed),
    ),
}

#: The NFP worker clock the crossbar charges step costs at (nominal) —
#: the same micro-engine clock the calibrated pipeline runs on.
WORKER_FREQ_HZ = NicConfig().freq_hz


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    scheduler: str = "flowvalve",
    workload: str = "motivation",
    backend: str = "pifo",
    duration: float = 20.0,
    bin_seconds: float = 5.0,
    queue_limit: int = 512,
) -> TimelineResult:
    """Run one scheduler×workload cell of the crossbar.

    Parameters
    ----------
    scheduler: registry name (``fv campaign`` axis / ``--scheduler``).
    workload: ``"motivation"`` (Fig. 11a policy + timeline) or
        ``"fair"`` (Fig. 11b fair queueing).
    backend: queue backend for rank-program schedulers
        (``"pifo"``/``"eiffel"``; adapters ignore it).
    queue_limit: per-scheduler buffering in packets.
    """
    if workload not in WORKLOADS:
        raise CampaignError(
            f"unknown crossbar workload {workload!r}; known: {sorted(WORKLOADS)}"
        )
    policy_of, demands_of, default_setup = WORKLOADS[workload]
    if setup is None:
        setup = default_setup(7)
    # Same convention as fig11: the policy is built at the *scaled*
    # link rate (its class rates live in sim units), demands at the
    # nominal rate (scaled per-sender below / by run_flowvalve_timeline).
    policy = policy_of(setup.link_bps)
    demands = demands_of(setup.nominal_link_bps)
    title = f"crossbar — {scheduler} on {workload}"
    if scheduler == "flowvalve":
        # The reference path: identical assembly (and event stream) to
        # the Fig. 11 reproductions — the crossbar must not perturb it.
        return timeline(
            policy, demands, setup,
            duration=duration, bin_seconds=bin_seconds, title=title,
        )

    sim = Simulator(seed=setup.seed)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    sched = build_scheduler(
        scheduler, policy, setup.link_bps,
        backend=backend, queue_limit=queue_limit,
        params=setup.sched_params(),
    )
    port = ScheduledPort(
        sim, sched, link, freq_hz=WORKER_FREQ_HZ / setup.scale,
    )
    factory = PacketFactory()
    for index, (app, demand) in enumerate(sorted(demands.items())):
        FixedRateSender(
            sim, app, factory, port.submit,
            rate_bps=setup.sender_rate(),
            packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index,
            jitter=0.1,
            rng=sim.random.stream(app),
        )
    sim.run(until=duration)
    notes = (
        f"scale=1/{setup.scale:.0f}, scheduler={sched.name}, "
        f"drops={port.dropped}/{port.submitted}"
    )
    return _collect_timeline(
        sink, sorted(demands), duration, bin_seconds, setup.scale, title,
        notes=notes,
    )
