"""E-CPU — §V-B's core-saving claim.

"FlowValve can accurately enforce QoS policies while driving TCP
traffic at 40Gbps, which contributes to freeing two CPU cores. It can
further save more CPU resources as the packet rate increases."

The comparison: at a matched offered load, how many host CPU cores
does each scheduler's *scheduling work* consume?

* FlowValve — zero: classification and scheduling run on the NIC; the
  host pays only the application send path.
* kernel HTB — the softirq dequeue core plus the per-packet qdisc
  enqueue work charged to every sending app's core.
* DPDK QoS — its dedicated poll-mode cores, busy at 100% by
  construction, plus (like FlowValve) the app send path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines import DpdkQosParams, DpdkQosScheduler, KernelQdiscRuntime
from ..core import FlowValveFrontend
from ..net import Link, PacketFactory, PacketSink
from ..nic import NicPipeline
from ..host import FixedRateSender, HostCpu
from ..sim import Simulator
from ..stats.report import Table
from ..units import line_rate_pps
from .base import ScaledSetup, warn_deprecated
from .fig13 import DPDK_CORES_BY_SIZE, _fair_htb_tree
from .policies import fair_policy

__all__ = ["CpuRow", "CpuResult", "run", "run_cpu_comparison", "cpu_table"]


@dataclass
class CpuRow:
    """Scheduling-cost cores for one scheduler at one load point."""

    scheduler: str
    line_rate_bps: float
    packet_size: int
    throughput_mpps: float
    sched_cores: float
    total_cores: float


def _senders(sim, factory, submit, setup: ScaledSetup, packet_size: int, cpu: HostCpu,
             send_cost: float):
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, submit,
            rate_bps=0.3 * setup.link_bps, packet_size=packet_size, vf_index=i,
            jitter=0.1, rng=sim.random.stream(f"App{i}"),
            cpu=cpu.core(i), send_cost_seconds=send_cost,
        )


@dataclass
class CpuResult:
    """The measured §V-B core comparison (unified-API wrapper)."""

    rows: List[CpuRow]

    def to_table(self) -> Table:
        return cpu_table(self.rows)


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    packet_size: int = 1518,
    duration: float = 20.0,
) -> CpuResult:
    """Measure scheduling-cost core-equivalents for all three systems
    at ~120% offered load of ``setup.nominal_link_bps``."""
    setup = setup if setup is not None else ScaledSetup(
        nominal_link_bps=40e9, scale=400.0, wire_bps=40e9, seed=17)
    line_rate_bps = setup.nominal_link_bps
    scale = setup.scale
    seed = setup.seed
    rows: List[CpuRow] = []
    # DPDK-style app send cost (~300 cycles at 2.3 GHz), scaled.
    send_cost = 300 / 2.3e9 * scale

    # ---------------- FlowValve ---------------------------------------
    sim = Simulator(seed=seed)
    cpu = HostCpu(sim, n_cores=8)
    frontend = FlowValveFrontend(fair_policy(setup.link_bps, 4),
                                 link_rate_bps=setup.link_bps,
                                 params=setup.sched_params())
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive)
    factory = PacketFactory()
    _senders(sim, factory, nic.submit, setup, packet_size, cpu, send_cost)
    sim.run(until=duration)
    tput = sink.total_packets / duration * setup.scale / 1e6
    rows.append(CpuRow(
        "FlowValve", line_rate_bps, packet_size, round(tput, 2),
        sched_cores=round(cpu.report.core_equivalents(duration, "sched"), 2),
        total_cores=round(cpu.report.core_equivalents(duration, ""), 2),
    ))

    # ---------------- kernel HTB --------------------------------------
    sim = Simulator(seed=seed)
    cpu = HostCpu(sim, n_cores=8)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    qdisc = _fair_htb_tree(setup.link_bps, 4)
    runtime = KernelQdiscRuntime(sim, qdisc, link, params=setup.kernel_params(),
                                 softirq_core=cpu.core(7))
    for i in range(4):
        runtime.register_app_core(f"App{i}", cpu.core(i))
    factory = PacketFactory()
    _senders(sim, factory, runtime.enqueue, setup, packet_size, cpu, send_cost)
    sim.run(until=duration)
    tput = sink.total_packets / duration * setup.scale / 1e6
    rows.append(CpuRow(
        "Linux HTB", line_rate_bps, packet_size, round(tput, 2),
        sched_cores=round(cpu.report.core_equivalents(duration, "sched"), 2),
        total_cores=round(cpu.report.core_equivalents(duration, ""), 2),
    ))

    # ---------------- DPDK QoS ----------------------------------------
    n_cores = DPDK_CORES_BY_SIZE.get(packet_size, 4)
    # A core can't schedule more than the demand needs:
    needed = line_rate_pps(line_rate_bps, packet_size)
    params = DpdkQosParams()
    while n_cores > 1 and params.capacity_pps(n_cores - 1) > 1.2 * needed:
        n_cores -= 1
    sim = Simulator(seed=seed)
    cpu = HostCpu(sim, n_cores=8)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    qdisc = _fair_htb_tree(setup.link_bps, 4)
    sched = DpdkQosScheduler(
        sim, qdisc, link, n_cores=n_cores, params=params.scaled(setup.scale),
        cores=[cpu.core(4 + i) for i in range(min(4, n_cores))],
    )
    factory = PacketFactory()
    _senders(sim, factory, sched.submit, setup, packet_size, cpu, send_cost)
    sim.run(until=duration)
    tput = sink.total_packets / duration * setup.scale / 1e6
    rows.append(CpuRow(
        "DPDK QoS", line_rate_bps, packet_size, round(tput, 2),
        sched_cores=round(cpu.report.core_equivalents(duration, "sched"), 2),
        total_cores=round(cpu.report.core_equivalents(duration, ""), 2),
    ))
    return CpuResult(rows=rows)


def run_cpu_comparison(
    line_rate_bps: float = 40e9,
    packet_size: int = 1518,
    duration: float = 20.0,
    scale: float = 400.0,
    seed: int = 17,
) -> List[CpuRow]:
    """Deprecated alias for :func:`run`; returns the bare row list."""
    warn_deprecated("run_cpu_comparison", "repro.experiments.cpu_cores.run")
    setup = ScaledSetup(nominal_link_bps=line_rate_bps, scale=scale,
                        wire_bps=line_rate_bps, seed=seed)
    return run(setup, packet_size=packet_size, duration=duration).rows


def cpu_table(rows: List[CpuRow]) -> Table:
    """Render the CPU comparison."""
    table = Table(
        "§V-B — CPU cores consumed by scheduling at matched load",
        ["scheduler", "rate", "size(B)", "throughput(Mpps)", "sched cores", "total host cores"],
    )
    for row in rows:
        table.add_row(
            row.scheduler, f"{row.line_rate_bps / 1e9:.0f}G", row.packet_size,
            row.throughput_mpps, row.sched_cores, row.total_cores,
        )
    return table
