"""E-F13 — Figure 13: maximum throughput vs packet size.

The paper injects fixed-length packets at full speed under the fair
queueing policy and reports the maximum packets-per-second each
scheduler sustains, plus the CPU cores the DPDK QoS Scheduler burns to
get there. FlowValve is line-rate-bound for ≥512 B frames and NP-
processing-bound at 64 B (19.69 Mpps ≈ 50 MEs × 1.2 GHz / ~3 k cycles);
DPDK is scheduler-core-bound at ~2.25 Mpps per 2.3 GHz core.

These runs execute at *full* modelled rates (no rate scaling) over
short windows — throughput capacity needs cycle-level contention, not
long timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines import DpdkQosParams, DpdkQosScheduler, HtbClass, HtbQdisc
from ..core import FlowValveFrontend
from ..core.sched_tree import SchedulingParams
from ..net import Link, PacketFactory, PacketSink
from ..nic import NicConfig, NicPipeline
from ..host import FixedRateSender
from ..sim import Simulator
from ..stats.report import Table
from ..tc.ast import FilterSpec
from ..tc.classifier import Classifier
from ..units import line_rate_pps
from .base import ScaledSetup, warn_deprecated
from .policies import fair_policy

__all__ = ["Fig13Row", "Fig13Result", "run", "run_fig13", "PAPER_FIG13"]

#: Published numbers (Mpps) for the sizes quoted in the paper's text;
#: ``None`` marks sizes shown only graphically.
PAPER_FIG13: Dict[int, Dict[str, Optional[float]]] = {
    1518: {"flowvalve": 3.23, "dpdk": 2.25, "dpdk_cores": 1},
    1024: {"flowvalve": 4.75, "dpdk": 4.49, "dpdk_cores": 2},
    512: {"flowvalve": None, "dpdk": None, "dpdk_cores": 4},
    256: {"flowvalve": None, "dpdk": None, "dpdk_cores": 4},
    128: {"flowvalve": None, "dpdk": None, "dpdk_cores": 4},
    64: {"flowvalve": 19.69, "dpdk": 9.06, "dpdk_cores": 4},
}

#: Scheduler cores the paper's DPDK deployment assigned per size (the
#: published rows; intermediate sizes follow the same 4-core setup).
DPDK_CORES_BY_SIZE = {1518: 1, 1024: 2, 512: 4, 256: 4, 128: 4, 64: 4}


@dataclass
class Fig13Row:
    """One packet-size row of the Fig. 13 table."""

    size: int
    flowvalve_mpps: float
    dpdk_mpps: float
    dpdk_cores: int
    line_rate_mpps: float
    paper_flowvalve: Optional[float]
    paper_dpdk: Optional[float]


def _measure_flowvalve(size: int, window: float, seed: int) -> float:
    """Forwarded Mpps of the FlowValve NIC at full 40 Gbit blast."""
    sim = Simulator(seed=seed)
    params = SchedulingParams(update_interval=0.0005, expire_after=0.005)
    frontend = FlowValveFrontend(fair_policy(40e9, 4), link_rate_bps=40e9, params=params)
    sink = PacketSink(sim, rate_window=window, record_delays=False, delay_start=window)
    nic = NicPipeline.with_flowvalve(sim, NicConfig(), frontend, receiver=sink.receive)
    factory = PacketFactory()
    # Offer 1.6× the smaller of line rate and NP capacity per app so
    # the bottleneck, whichever it is, is saturated.
    capacity_pps = min(line_rate_pps(40e9, size), NicConfig().worker_capacity_pps(3100))
    per_app_rate = 1.6 * capacity_pps / 4 * (size * 8)
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, nic.submit, rate_bps=per_app_rate,
            packet_size=size, vf_index=i, jitter=0.05, rng=sim.random.stream(f"App{i}"),
        )
    warmup = 0.2 * window
    counts = {}
    sim.schedule_at(warmup, lambda: counts.update(at_warmup=sink.total_packets))
    sim.run(until=warmup + window)
    delivered_pps = (sink.total_packets - counts["at_warmup"]) / window
    return delivered_pps / 1e6


def _fair_htb_tree(link_bps: float, n: int = 4) -> HtbQdisc:
    root = HtbClass("1:1", rate_bps=link_bps, ceil_bps=link_bps)
    filters: List[FilterSpec] = []
    for i in range(n):
        classid = f"1:{0x10 + i:x}"
        HtbClass(classid, rate_bps=link_bps / n, ceil_bps=link_bps, parent=root)
        filters.append(FilterSpec(flowid=classid, match={"app": f"App{i}"}))
    return HtbQdisc(root, Classifier(filters), queue_limit=128)


def _measure_dpdk(size: int, n_cores: int, window: float, seed: int) -> float:
    """Transmitted Mpps of the DPDK QoS model with *n_cores*."""
    sim = Simulator(seed=seed)
    params = DpdkQosParams()
    sink = PacketSink(sim, rate_window=window, record_delays=False)
    link = Link(sim, 40e9, receiver=sink.receive)
    qdisc = _fair_htb_tree(40e9, 4)
    sched = DpdkQosScheduler(sim, qdisc, link, n_cores=n_cores, params=params)
    factory = PacketFactory()
    capacity_pps = min(line_rate_pps(40e9, size), params.capacity_pps(n_cores))
    per_app_rate = 1.5 * capacity_pps / 4 * (size * 8)
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, sched.submit, rate_bps=per_app_rate,
            packet_size=size, vf_index=i, jitter=0.05, rng=sim.random.stream(f"App{i}"),
        )
    warmup = 0.2 * window
    counts = {}
    sim.schedule_at(warmup, lambda: counts.update(at_warmup=sink.total_packets))
    sim.run(until=warmup + window)
    delivered_pps = (sink.total_packets - counts["at_warmup"]) / window
    return delivered_pps / 1e6


@dataclass
class Fig13Result:
    """The measured Fig. 13 table (unified-API result wrapper)."""

    rows: List[Fig13Row]

    def to_table(self) -> Table:
        return fig13_table(self.rows)


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    sizes: Optional[List[int]] = None,
    window: float = 0.002,
) -> Fig13Result:
    """Measure the Fig. 13 table. ``window`` is the full-rate
    measurement window in (simulated) seconds per cell.

    Throughput-capacity runs execute at *full* modelled rates, so only
    ``setup.seed`` is consumed; the rate-scale fields are ignored.
    """
    seed = setup.seed if setup is not None else 11
    sizes = sizes if sizes is not None else [64, 128, 256, 512, 1024, 1518]
    rows: List[Fig13Row] = []
    for size in sorted(sizes, reverse=True):
        cores = DPDK_CORES_BY_SIZE.get(size, 4)
        fv = _measure_flowvalve(size, window, seed)
        dpdk = _measure_dpdk(size, cores, window, seed)
        paper = PAPER_FIG13.get(size, {})
        rows.append(
            Fig13Row(
                size=size,
                flowvalve_mpps=round(fv, 2),
                dpdk_mpps=round(dpdk, 2),
                dpdk_cores=cores,
                line_rate_mpps=round(line_rate_pps(40e9, size) / 1e6, 2),
                paper_flowvalve=paper.get("flowvalve"),
                paper_dpdk=paper.get("dpdk"),
            )
        )
    return Fig13Result(rows=rows)


def run_fig13(
    sizes: Optional[List[int]] = None,
    window: float = 0.002,
    seed: int = 11,
) -> List[Fig13Row]:
    """Deprecated alias for :func:`run`; returns the bare row list."""
    warn_deprecated("run_fig13", "repro.experiments.fig13.run")
    setup = ScaledSetup(nominal_link_bps=40e9, scale=1.0, wire_bps=40e9, seed=seed)
    return run(setup, sizes=sizes, window=window).rows


def fig13_table(rows: List[Fig13Row]) -> Table:
    """Render the rows next to the published values."""
    table = Table(
        "Fig. 13 — maximum throughput (Mpps), fair queueing at 40 Gbit",
        ["size(B)", "line-rate", "FlowValve", "paper", "DPDK QoS", "paper", "DPDK cores"],
    )
    for row in rows:
        table.add_row(
            row.size,
            row.line_rate_mpps,
            row.flowvalve_mpps,
            row.paper_flowvalve if row.paper_flowvalve is not None else "-",
            row.dpdk_mpps,
            row.paper_dpdk if row.paper_dpdk is not None else "-",
            row.dpdk_cores,
        )
    return table


__all__.append("fig13_table")
