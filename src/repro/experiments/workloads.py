"""Workload timelines for the figure reproductions.

The paper describes the *policies* precisely but only sketches the
traffic timelines (staggered app starts/stops readable off the x-axes
of Figs. 3 and 11). The reconstructions below are chosen so that every
published claim about each figure has a phase that exercises it; the
mapping is documented per function and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..host.traffic import windows

__all__ = ["motivation_demands", "fair_queueing_demands", "weighted_demands"]

Demand = Callable[[float], float]

#: A stand-in for "unbounded demand" — senders are capped to 2× link
#: by the runner anyway.
BACKLOGGED = 1e12


def motivation_demands(link_bps: float) -> Dict[str, Demand]:
    """The Fig. 3 / Fig. 11(a) timeline (60 s):

    * 0-15 s — NC alone, saturating ("FlowValve better prioritizes NC
      before time 15 s by giving it all the available bandwidth");
    * 15 s — NC drops to steady management traffic (``link/5``);
      KVS, ML and WS all start, saturating ("accurately distributes
      bandwidth among active traffic classes according to their weight
      and priority settings from 15 s to 30 s" — and where kernel HTB
      shows KVS ≈ ML and the >ceiling total);
    * 30 s — ML stops (its guarantee frees up; KVS takes the whole S2
      share);
    * 45 s — NC and KVS stop (WS reclaims everything via borrowing).
    """
    b = link_bps
    return {
        "NC": windows((0, 15, BACKLOGGED), (15, 45, b / 5)),
        "KVS": windows((15, 45, BACKLOGGED)),
        "ML": windows((15, 30, BACKLOGGED)),
        "WS": windows((15, 60, BACKLOGGED)),
    }


def fair_queueing_demands(n_apps: int = 4, join_every: float = 10.0, duration: float = 60.0) -> Dict[str, Demand]:
    """The Fig. 11(b) timeline: apps join one by one every
    *join_every* seconds and all run to the end, so each join shows
    the fair re-division of the line rate (40 → 20 → 13.3 → 10 Gbit
    per app on a 40 Gbit wire)."""
    return {
        f"App{i}": windows((i * join_every, duration, BACKLOGGED))
        for i in range(n_apps)
    }


def weighted_demands(duration: float = 60.0) -> Dict[str, Demand]:
    """The Fig. 11(c) timeline:

    * App0 and App1 active from the start, App3 from the start too;
    * App2 joins at 20 s — "the appearance of App2's traffic at time
      20 s does not affect the traffic of App0" (weights isolate the
      App0 : S1 split);
    * App0 stops at 30 s — "the other three classes equally share link
      bandwidth because we do not enforce weighted borrowing".
    """
    return {
        "App0": windows((0, 30, BACKLOGGED)),
        "App1": windows((0, duration, BACKLOGGED)),
        "App2": windows((20, duration, BACKLOGGED)),
        "App3": windows((0, duration, BACKLOGGED)),
    }
