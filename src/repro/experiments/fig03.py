"""E-F3 — Figure 3: kernel traffic control mis-enforcing the
motivation policy.

Reproduces the three published artifacts on the same workload the
FlowValve run (Fig. 11a) uses:

1. kernel HTB cannot give NC the full link even when NC is alone
   (global-lock capacity; the kernel path tops out below line rate);
2. total consumption between 15 s and 45 s exceeds the 10 Gbit root
   ceiling by ~20% (lock-contention token inflation, [23]);
3. the KVS > ML priority is ignored — the two split S2's share
   equally (quantum-capped DRR borrowing).
"""

from __future__ import annotations

from .base import ScaledSetup, TimelineResult, run_kernel_htb_timeline
from .policies import motivation_htb_tree
from .workloads import motivation_demands

__all__ = ["run_fig03"]


def run_fig03(
    setup: ScaledSetup = ScaledSetup(nominal_link_bps=10e9, scale=100.0, wire_bps=40e9),
    duration: float = 60.0,
) -> TimelineResult:
    """Run the kernel-HTB motivation timeline; returns nominal-rate
    bins per app."""
    qdisc = motivation_htb_tree(setup.link_bps, setup.scaled_wire_bps)
    demands = motivation_demands(setup.nominal_link_bps)
    result = run_kernel_htb_timeline(
        qdisc,
        demands,
        setup,
        duration=duration,
        title="Fig. 3 — kernel HTB, motivation policy (10 Gbit ceiling, 40 Gbit wire)",
    )
    return result
