"""E-F3 — Figure 3: kernel traffic control mis-enforcing the
motivation policy.

Reproduces the three published artifacts on the same workload the
FlowValve run (Fig. 11a) uses:

1. kernel HTB cannot give NC the full link even when NC is alone
   (global-lock capacity; the kernel path tops out below line rate);
2. total consumption between 15 s and 45 s exceeds the 10 Gbit root
   ceiling by ~20% (lock-contention token inflation, [23]);
3. the KVS > ML priority is ignored — the two split S2's share
   equally (quantum-capped DRR borrowing).
"""

from __future__ import annotations

from typing import Optional

from .base import ScaledSetup, TimelineResult, run_kernel_htb_timeline, warn_deprecated
from .policies import motivation_htb_tree
from .workloads import motivation_demands

__all__ = ["run", "run_fig03"]

#: The published testbed: a 10 Gbit policy ceiling on a 40 Gbit wire —
#: the gap is where the HTB overshoot artifact lives.
DEFAULT_SETUP = ScaledSetup(nominal_link_bps=10e9, scale=100.0, wire_bps=40e9)


def run(setup: Optional[ScaledSetup] = None, *, duration: float = 60.0) -> TimelineResult:
    """Run the kernel-HTB motivation timeline; returns nominal-rate
    bins per app."""
    setup = setup if setup is not None else DEFAULT_SETUP
    qdisc = motivation_htb_tree(setup.link_bps, setup.scaled_wire_bps)
    demands = motivation_demands(setup.nominal_link_bps)
    result = run_kernel_htb_timeline(
        qdisc,
        demands,
        setup,
        duration=duration,
        title="Fig. 3 — kernel HTB, motivation policy (10 Gbit ceiling, 40 Gbit wire)",
    )
    return result


def run_fig03(
    setup: ScaledSetup = DEFAULT_SETUP,
    duration: float = 60.0,
) -> TimelineResult:
    """Deprecated alias for :func:`run`."""
    warn_deprecated("run_fig03", "repro.experiments.fig03.run")
    return run(setup, duration=duration)
