"""E-PERF — the hot-path microbenchmark workload, as an experiment.

One canonical builder for the Fig. 11(a) motivation workload used to
measure DES-kernel throughput, shared by
``benchmarks/test_bench_hotpath.py`` (which adds the deterministic
event/packet-count guards and persists ``BENCH_hotpath.json``) and the
campaign registry (``fv campaign run hotpath``), so the BENCH json
emission and the campaign manifest both measure the *same* assembly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import FlowValveFrontend
from ..host import FixedRateSender
from ..net import PacketFactory, PacketSink
from ..nic import NicPipeline
from ..sim import Simulator
from ..stats.perf import HotpathResult, measure_run
from .base import ScaledSetup, _scale_demand
from .policies import motivation_policy
from .workloads import motivation_demands

__all__ = [
    "DEFAULT_SETUP",
    "DEFAULT_DURATION",
    "SEED_EVENTS",
    "SEED_PACKETS",
    "SEED_PKT_PER_SEC",
    "build",
    "run",
]

#: The reference configuration every recorded hotpath number uses.
DEFAULT_SETUP = ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9)

#: Simulated horizon of the canonical benchmark run.
DEFAULT_DURATION = 20.0

#: v0 seed-code reference on this workload (commit c37e241, measured
#: interleaved with the optimized build on the same host): the seed
#: executed 2,887,785 kernel events for the same 179,154 packets
#: (16.1 ev/pkt) in ~9.4-11.8 s wall (~17.5k pkt/s). Shared by the
#: bench suite and ``fv bench`` so every artifact reports the same
#: vs-seed ratios.
SEED_EVENTS = 2_887_785
SEED_PACKETS = 179_154
SEED_PKT_PER_SEC = 17_500.0


def build(
    setup: Optional[ScaledSetup] = None, *, fluid: Optional[bool] = None
) -> Tuple[Simulator, NicPipeline]:
    """Assemble the Fig. 11(a) motivation workload on the DES pipeline.

    Construction order (senders sorted by app name, one rng stream per
    app) is part of the measured contract: the bench asserts exact
    event counts for the default seed. *fluid* overrides the NIC
    config's fluid-lane flag (None keeps the config default) — the
    equivalence suite and the CI smoke run both lanes on this builder.
    """
    setup = setup if setup is not None else DEFAULT_SETUP
    policy = motivation_policy(setup.link_bps)
    demands = motivation_demands(setup.nominal_link_bps)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        policy, link_rate_bps=setup.link_bps, params=setup.sched_params()
    )
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    overrides = {} if fluid is None else {"fluid": fluid}
    nic = NicPipeline.with_flowvalve(
        sim, setup.nic_config(**overrides), frontend, receiver=sink.receive
    )
    factory = PacketFactory()
    for index, (app, demand) in enumerate(sorted(demands.items())):
        FixedRateSender(
            sim,
            app,
            factory,
            nic.submit,
            rate_bps=setup.sender_rate(),
            packet_size=1500,
            demand=_scale_demand(demand, setup.scale),
            vf_index=index,
            jitter=0.1,
            rng=sim.random.stream(app),
        )
    return sim, nic


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    duration: float = 20.0,
    fluid: Optional[bool] = None,
) -> HotpathResult:
    """Measure events/sec and packets/sec of the reference workload."""
    setup = setup if setup is not None else DEFAULT_SETUP
    sim, nic = build(setup, fluid=fluid)
    return measure_run(
        sim,
        lambda: sim.run(until=duration),
        lambda: nic.submitted,
        label=f"fig11a-scale{setup.scale:g}-{duration:g}s",
    )
