"""E-MEGAFLOW — the million-flow trace engine benchmark (DESIGN.md §12).

Drives the motivation policy with the batched heavy-tailed trace
workloads (:class:`~repro.host.workload_gen.TraceWorkload`,
``mode="batched"``) instead of backlogged constant-rate senders: a
Poisson mix of KVS mice, web transfers and ML elephants whose *flow
count* — not packet count — is the stressor. Every flow's first packet
misses the exact-match cache, so the run exercises the three scaling
mechanisms this experiment exists to measure together:

* the windowed trace generator (one train per horizon window, no
  per-flow simulation state),
* the fluid lane's classification replay (``fluid_classify=True`` —
  an EMC miss absorbs analytically instead of suspending the lane),
* constant-memory streaming stats (sketch-mode sink, ledger-folded
  workload tallies, bounded LRU cache churn).

Honest framing: this is a *single-core DES throughput* experiment —
the headline metric is kernel events per packet over a million-flow
trace, not a claim about the NFP hardware. Results are deterministic
for a fixed seed; ``benchmarks/test_bench_megaflow.py`` pins them and
persists ``BENCH_megaflow.json``.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Tuple

from ..core import FlowValveFrontend
from ..host import TraceWorkload, WORKLOAD_PRESETS
from ..net import PacketFactory, PacketSink
from ..nic import NicPipeline
from ..sim import Simulator
from ..stats.latency import LatencySummary
from ..stats.perf import HotpathResult, measure_run
from .base import ScaledSetup
from .policies import motivation_policy

__all__ = [
    "DEFAULT_SETUP",
    "DEFAULT_DURATION",
    "DEFAULT_MIX",
    "MegaflowResult",
    "build",
    "run",
    "run_megaflow",
]

#: The reference configuration every recorded megaflow number uses —
#: the hotpath setup (10 Gbit policy link at rate-scale 200).
DEFAULT_SETUP = ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9)

#: Nominal seconds of flow arrivals in the canonical run — sized so
#: the default mix crosses 10⁶ distinct flows with margin.
DEFAULT_DURATION = 2.0

#: (app, preset, offered fraction of the nominal link). Apps match the
#: motivation policy's filter table; the offered shares keep the link
#: at ~75% load so enforcement (not tail drops) shapes the run. KVS
#: mice carry the flow count, ML elephants the byte volume.
DEFAULT_MIX: Tuple[Tuple[str, str, float], ...] = (
    ("KVS", "kvs", 0.40),
    ("ML", "ml", 0.15),
    ("WS", "web", 0.20),
)


@dataclass
class MegaflowResult:
    """One measured megaflow run (exact counts deterministic per seed)."""

    perf: HotpathResult
    #: Distinct flows generated (five-tuples are collision-free far
    #: beyond this scale — see the workload's flow-mint scheme).
    flows: int
    flows_completed: int
    delivered: int
    dropped: int
    #: Horizon windows the batched engines generated, total.
    windows: int
    #: Fluid-lane absorption tallies (0 when the lane is off).
    absorbed: int
    miss_absorbed: int
    #: Exact-match cache churn counters.
    emc_hits: int
    emc_misses: int
    emc_evictions: int
    emc_expirations: int
    emc_hit_ratio: float
    #: One-way delay summary in *nominal* seconds (sketch accuracy).
    delay: LatencySummary
    #: Occupied sketch buckets — the sink's whole variable footprint.
    sketch_bins: int
    #: ``ru_maxrss`` after the run (KiB on Linux): the process-lifetime
    #: peak, which the bench bounds to catch accidental per-packet or
    #: per-flow state growth.
    peak_rss_kib: int

    def to_table(self):
        from ..stats.report import Table

        table = Table(f"megaflow — {self.perf.label}", ["metric", "value"])
        table.add_row("wall seconds", f"{self.perf.wall_seconds:.2f}")
        table.add_row("kernel events", self.perf.events)
        table.add_row("packets", self.perf.packets)
        table.add_row("events/packet", f"{self.perf.events_per_packet:.3f}")
        table.add_row("packets/sec", f"{self.perf.packets_per_sec:,.0f}")
        table.add_row("distinct flows", self.flows)
        table.add_row("flows completed", self.flows_completed)
        table.add_row("delivered", self.delivered)
        table.add_row("dropped", self.dropped)
        table.add_row("generator windows", self.windows)
        table.add_row("fluid absorbed", self.absorbed)
        table.add_row("fluid miss-absorbed", self.miss_absorbed)
        table.add_row("emc hits", self.emc_hits)
        table.add_row("emc misses", self.emc_misses)
        table.add_row("emc evictions", self.emc_evictions)
        table.add_row("emc expirations", self.emc_expirations)
        table.add_row("emc hit ratio", f"{self.emc_hit_ratio:.3f}")
        table.add_row("delay p50 (nominal µs)", f"{self.delay.p50 * 1e6:.1f}")
        table.add_row("delay p99 (nominal µs)", f"{self.delay.p99 * 1e6:.1f}")
        table.add_row("sketch bins", self.sketch_bins)
        table.add_row("peak RSS (MiB)", f"{self.peak_rss_kib / 1024:.0f}")
        return table

    def extra(self) -> Dict[str, object]:
        """The non-perf fields as a flat dict (BENCH json payload)."""
        return {
            "flows": self.flows,
            "flows_completed": self.flows_completed,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "windows": self.windows,
            "absorbed": self.absorbed,
            "miss_absorbed": self.miss_absorbed,
            "emc_hits": self.emc_hits,
            "emc_misses": self.emc_misses,
            "emc_evictions": self.emc_evictions,
            "emc_expirations": self.emc_expirations,
            "emc_hit_ratio": round(self.emc_hit_ratio, 6),
            "delay_p50_nominal": self.delay.p50,
            "delay_p99_nominal": self.delay.p99,
            "sketch_bins": self.sketch_bins,
            "peak_rss_kib": self.peak_rss_kib,
        }


def build(
    setup: Optional[ScaledSetup] = None,
    *,
    duration: float = DEFAULT_DURATION,
    mode: str = "batched",
    fluid: Optional[bool] = None,
    fluid_classify: bool = True,
    stats_mode: str = "sketch",
    mix: Tuple[Tuple[str, str, float], ...] = DEFAULT_MIX,
) -> Tuple[Simulator, NicPipeline, PacketSink, List[TraceWorkload]]:
    """Assemble the megaflow trace workload on the DES pipeline.

    *duration* is in nominal seconds (flow arrivals stop there; the
    run horizon adds a small drain margin). *mode*, *fluid*,
    *fluid_classify* and *stats_mode* exist so the equivalence tests
    can pin every engine combination to identical outcomes.
    """
    setup = setup if setup is not None else DEFAULT_SETUP
    policy = motivation_policy(setup.link_bps)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        policy, link_rate_bps=setup.link_bps, params=setup.sched_params()
    )
    sink = PacketSink(
        sim,
        rate_window=1.0,
        record_delays=True,
        stats_mode=stats_mode,
        # One fold per scaled second keeps the lazy-delivery buffer (and
        # with it peak RSS) constant in the packet count — see the
        # PacketSink docstring.
        fold_interval=1.0,
    )
    overrides: Dict[str, object] = {"fluid_classify": fluid_classify}
    if fluid is not None:
        overrides["fluid"] = fluid
    nic = NicPipeline.with_flowvalve(
        sim, setup.nic_config(**overrides), frontend, receiver=sink.receive
    )
    factory = PacketFactory()
    workloads: List[TraceWorkload] = []
    for index, (app, preset, fraction) in enumerate(sorted(mix)):
        base = WORKLOAD_PRESETS[preset]
        profile = _dc_replace(
            base, flow_rate_limit_bps=base.flow_rate_limit_bps / setup.scale
        )
        workloads.append(
            TraceWorkload(
                sim,
                app,
                profile,
                fraction * setup.nominal_link_bps / setup.scale,
                nic.submit,
                factory,
                vf_index=index,
                duration=duration * setup.scale,
                mode=mode,
            )
        )
    return sim, nic, sink, workloads


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    duration: float = DEFAULT_DURATION,
    mode: str = "batched",
    fluid: Optional[bool] = None,
    fluid_classify: bool = True,
    stats_mode: str = "sketch",
) -> MegaflowResult:
    """Measure the megaflow trace run end to end."""
    setup = setup if setup is not None else DEFAULT_SETUP
    sim, nic, sink, workloads = build(
        setup,
        duration=duration,
        mode=mode,
        fluid=fluid,
        fluid_classify=fluid_classify,
        stats_mode=stats_mode,
    )
    horizon = duration * setup.scale * 1.02
    perf = measure_run(
        sim,
        lambda: sim.run(until=horizon),
        lambda: nic.submitted,
        label=f"megaflow-scale{setup.scale:g}-{duration:g}s-{mode}",
    )
    emc = nic.app.labeler.cache
    fluid_lane = nic._fluid
    delay = sink.latency_summary().scaled(1.0 / setup.scale)
    sketch_bins = sink.delay_sketch().bin_count if stats_mode == "sketch" else 0
    return MegaflowResult(
        perf=perf,
        flows=sum(w.flows_started for w in workloads),
        flows_completed=sum(w.flows_completed for w in workloads),
        delivered=sink.total_packets,
        dropped=nic.dropped,
        windows=sum(w.windows_generated for w in workloads),
        absorbed=getattr(fluid_lane, "absorbed", 0) if fluid_lane else 0,
        miss_absorbed=getattr(fluid_lane, "miss_absorbed", 0) if fluid_lane else 0,
        emc_hits=emc.hits,
        emc_misses=emc.misses,
        emc_evictions=emc.evictions,
        emc_expirations=emc.expirations,
        emc_hit_ratio=emc.hit_ratio,
        delay=delay,
        sketch_bins=sketch_bins,
        peak_rss_kib=int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    )


#: Unified-API alias matching the package's ``run_*`` naming.
run_megaflow = run
