"""Campaign manifests: one JSONL record per finished task.

The manifest is the campaign's flight recorder — statuses, durations,
attempts, worker pids, and cache keys stream to disk as each task
lands, so a crashed or interrupted campaign still leaves an auditable
trail and ``fv campaign status`` works on live files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ...errors import CampaignError

__all__ = ["STATUSES", "TaskRecord", "ManifestWriter", "read_manifest"]

#: Terminal task states a manifest line may carry.
STATUSES = ("ok", "cached", "timeout", "failed")


@dataclass
class TaskRecord:
    """One finished campaign task."""

    task_id: str
    spec: str
    params: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    attempts: int = 1
    duration: float = 0.0
    worker: Optional[int] = None
    cache_key: str = ""
    error: Optional[str] = None
    started: float = 0.0
    finished: float = 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, default=repr)

    @classmethod
    def from_json(cls, line: str) -> "TaskRecord":
        payload = json.loads(line)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401 — py39 compat
        return cls(**{k: v for k, v in payload.items() if k in known})


class ManifestWriter:
    """Append-as-you-go JSONL writer (line-buffered, crash-tolerant)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        self.count = 0

    def write(self, record: TaskRecord) -> None:
        if record.status not in STATUSES:
            raise CampaignError(
                f"manifest record for {record.task_id!r} has invalid "
                f"status {record.status!r}; expected one of {STATUSES}"
            )
        self._fh.write(record.to_json() + "\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_manifest(path: str) -> List[TaskRecord]:
    """Parse a manifest back into records (round-trip of
    :meth:`TaskRecord.to_json`)."""
    records: List[TaskRecord] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TaskRecord.from_json(line))
            except (json.JSONDecodeError, TypeError) as exc:
                raise CampaignError(
                    f"{path}:{lineno}: malformed manifest line: {exc}"
                ) from None
    return records
