"""Content-addressed on-disk result cache for campaign tasks.

A task's cache key digests ``(spec name, resolved params, source
digest)`` where the source digest hashes every git-tracked file under
``src/`` — so an incremental re-run is a cache hit exactly when the
same code would compute the same result, and any source edit
invalidates the whole cache at once (coarse but sound: the simulator
is deterministic per seed, and per-module dependency tracking is not
worth being wrong about).

Entries are stored as ``<key[:2]>/<key>.pkl`` (pickled Result) plus a
``.json`` sidecar with the human-readable key material, so a cache
directory can be audited with nothing but ``ls`` and ``cat``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["source_digest", "task_key", "ResultCache"]

_digest_cache: Dict[str, str] = {}


def _package_root() -> Path:
    """The ``src`` directory containing the ``repro`` package."""
    return Path(__file__).resolve().parents[3]


def source_digest(root: Optional[str] = None) -> str:
    """Digest of the git-tracked source tree under *root* (default: the
    installed ``src`` tree). Falls back to hashing every ``*.py`` file
    when git is unavailable (e.g. an sdist install)."""
    base = Path(root) if root is not None else _package_root()
    cache_token = str(base)
    if cache_token in _digest_cache:
        return _digest_cache[cache_token]
    files = _tracked_files(base)
    digest = hashlib.sha256()
    for path in files:
        digest.update(str(path.relative_to(base)).encode())
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    value = digest.hexdigest()
    _digest_cache[cache_token] = value
    return value


def _tracked_files(base: Path) -> "list[Path]":
    try:
        listing = subprocess.run(
            ["git", "ls-files", "-z", "--", "."],
            cwd=base,
            capture_output=True,
            check=True,
            timeout=10,
        )
        names = [n for n in listing.stdout.decode().split("\0") if n]
        files = [base / name for name in names if (base / name).is_file()]
        if files:
            return sorted(files)
    except (OSError, subprocess.SubprocessError):
        pass
    return sorted(p for p in base.rglob("*.py") if p.is_file())


def task_key(spec_name: str, params: Mapping[str, Any], digest: str) -> str:
    """The content address of one campaign task."""
    material = json.dumps(
        {"spec": spec_name, "params": dict(params), "source": digest},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Pickle-per-key result store rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _paths(self, key: str) -> Tuple[Path, Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry reads as a miss."""
        payload, _ = self._paths(key)
        if not payload.is_file():
            self.misses += 1
            return False, None
        try:
            with payload.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any, meta: Optional[Mapping[str, Any]] = None) -> None:
        """Store *value* under *key*; writes are atomic (tmp + rename)
        so a killed worker never leaves a truncated entry."""
        payload, sidecar = self._paths(key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        tmp = payload.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, payload)
        if meta is not None:
            sidecar.write_text(
                json.dumps(dict(meta), sort_keys=True, default=repr, indent=2) + "\n"
            )

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
