"""Built-in campaign specs: one per paper figure/table, plus smokes.

Importing this module (or the campaign package) populates the global
:data:`~repro.experiments.campaign.spec.REGISTRY`. Worker processes
import it too, so a task is fully described by ``(spec name, params)``
regardless of the multiprocessing start method.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ...errors import TransientError
from ...stats.report import Table
from .. import ablations, cpu_cores, crossbar, fabric, fig03, fig11, fig13, fig14, hotpath, megaflow, tcp_realism
from ..base import ScaledSetup
from .spec import REGISTRY, register

__all__ = ["SmokeResult", "smoke_sleep", "smoke_fault"]


# ----------------------------------------------------------------------
# smoke specs (tiny, deterministic; used by tests and the CI smoke job)
# ----------------------------------------------------------------------
@dataclass
class SmokeResult:
    """Minimal unified-API result for harness smokes."""

    label: str
    value: float

    def to_table(self) -> Table:
        table = Table("campaign smoke", ["label", "value"])
        table.add_row(self.label, self.value)
        return table


def smoke_sleep(
    setup: Optional[ScaledSetup] = None,
    *,
    seconds: float = 0.2,
    label: str = "sleep",
) -> SmokeResult:
    """Sleep for *seconds* — exercises worker concurrency and timeouts
    without burning CPU (sleeping tasks overlap even on one core)."""
    del setup
    time.sleep(seconds)
    return SmokeResult(label=label, value=seconds)


def smoke_fault(
    setup: Optional[ScaledSetup] = None,
    *,
    marker: str = "",
    fail_times: int = 1,
) -> SmokeResult:
    """Fail transiently until *marker* has accumulated *fail_times*
    attempts — exercises the runner's retry-with-backoff path. The
    attempt count lives in a file because each attempt runs in a fresh
    process."""
    del setup
    attempts = 0
    if marker:
        if os.path.exists(marker):
            with open(marker) as fh:
                attempts = len(fh.readlines())
        if attempts < fail_times:
            with open(marker, "a") as fh:
                fh.write(f"attempt {attempts + 1}\n")
            raise TransientError(
                f"injected transient fault ({attempts + 1}/{fail_times})"
            )
    return SmokeResult(label="fault", value=float(attempts))


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def _register_builtins() -> None:
    if "fig03" in REGISTRY:  # idempotent under re-import
        return
    register(
        "fig03", fig03.run,
        description="Fig. 3 — kernel HTB mis-enforcing the motivation policy",
        schema={"series": dict},
    )
    for variant, blurb in (
        ("a", "motivation policy at 10 Gbit"),
        ("b", "fair queueing at 40 Gbit"),
        ("c", "weighted fair queueing at 40 Gbit"),
    ):
        register(
            f"fig11{variant}", fig11.run,
            description=f"Fig. 11({variant}) — FlowValve, {blurb}",
            defaults={"variant": variant},
            schema={"series": dict},
        )
    register(
        "fig13", fig13.run,
        description="Fig. 13 — maximum throughput (Mpps) vs packet size",
        schema={"rows": list},
    )
    register(
        "fig14", fig14.run,
        description="Fig. 14 — one-way delay under fair queueing",
        schema={"rows": list},
    )
    register(
        "cpu_cores", cpu_cores.run,
        description="§V-B — CPU cores consumed by scheduling at matched load",
        schema={"rows": list},
    )
    register(
        "lock_ablation", ablations.lock_modes,
        description="A-LOCK — 64 B capacity per update-locking discipline (Fig. 7)",
        schema={"results": list},
    )
    register(
        "propagation", ablations.propagation,
        description="A-DELAY — token-rate propagation down a priority chain (Fig. 10)",
        schema={"results": list},
    )
    register(
        "interval_sensitivity", ablations.interval_sensitivity,
        description="A-INTERVAL — worst-window overshoot vs update interval ΔT",
        schema={"overshoot": dict},
    )
    register(
        "tcp_realism", tcp_realism.run,
        description="TCP realism — policy targets vs TCP-achieved shares",
        defaults={"regime": "shared"},
        schema={"targets": dict, "achieved": dict},
    )
    register(
        "hotpath", hotpath.run,
        description="E-PERF — DES kernel events/sec + packets/sec microbenchmark",
        schema={"events": int, "packets": int},
    )
    register(
        "sched_crossbar", crossbar.run,
        description="Crossbar — any registered scheduler × workload on the NIC model",
        grid={"scheduler": ["flowvalve", "wfq"], "workload": ["motivation"]},
        defaults={"duration": 20.0, "backend": "pifo"},
        schema={"series": dict},
    )
    register(
        "megaflow", megaflow.run,
        description="E-MEGAFLOW — million-flow batched trace engine on the fluid lane",
        defaults={"duration": megaflow.DEFAULT_DURATION},
        schema={"flows": int, "perf": None},
    )
    register(
        "fabric_sweep", fabric.run,
        description="E-FABRIC — 64-host ring fabric over the sharded engine",
        grid={"shards": [1, 2, 4]},
        defaults={"hosts": 64, "duration": 2.0},
        schema={"pkt_per_sec": float, "total_packets": int},
    )
    register(
        "smoke_sleep", smoke_sleep,
        description="harness smoke: sleep a configurable number of seconds",
        schema={"value": float},
    )
    register(
        "smoke_fault", smoke_fault,
        description="harness smoke: transient fault injection for retry testing",
        schema={"value": float},
    )


_register_builtins()
