"""The parallel campaign runner.

Fans ``(spec, params)`` tasks out over a pool of worker *processes*
(one process per task, at most ``workers`` alive at once) so that:

* a hung task can be killed at its wall-clock deadline — terminating a
  process is reliable where cancelling a thread is not;
* the GIL never serialises two simulations;
* a crashed task (segfault, OOM-kill) degrades to one ``failed``
  record instead of taking the campaign down.

Transient failures (:class:`~repro.errors.TransientError`) are retried
with exponential backoff up to the runner's ``retries`` budget; results
are cached content-addressed (see :mod:`.cache`) so re-running a
campaign recomputes only what changed; every terminal task streams one
JSONL record to the manifest (see :mod:`.manifest`).

``workers=0`` runs tasks inline in the calling process — no isolation
or timeouts, but convenient under a debugger.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import CampaignError, TransientError
from ...stats.report import Table
from .cache import ResultCache, source_digest, task_key
from .manifest import ManifestWriter, TaskRecord
from .spec import REGISTRY, SpecRegistry

__all__ = ["CampaignTask", "CampaignReport", "CampaignRunner"]


@dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work: a spec name plus resolved params."""

    spec: str
    params: Mapping[str, Any] = field(default_factory=dict)
    task_id: str = ""

    def with_id(self, index: int) -> "CampaignTask":
        if self.task_id:
            return self
        label = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        suffix = f"[{label}]" if label else f"#{index}"
        return CampaignTask(self.spec, self.params, f"{self.spec}{suffix}")


@dataclass
class CampaignReport:
    """Everything a finished campaign produced."""

    records: List[TaskRecord] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    manifest_path: Optional[str] = None

    @property
    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self.records:
            tally[record.status] = tally.get(record.status, 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        return all(r.status in ("ok", "cached") for r in self.records)

    @property
    def cache_hit_rate(self) -> float:
        if not self.records:
            return 0.0
        cached = sum(1 for r in self.records if r.status == "cached")
        return cached / len(self.records)

    def summary_table(self) -> Table:
        table = Table(
            f"campaign — {len(self.records)} tasks in {self.wall_seconds:.1f}s wall",
            ["task", "status", "attempts", "duration(s)", "worker"],
        )
        for record in self.records:
            table.add_row(
                record.task_id,
                record.status,
                record.attempts,
                f"{record.duration:.2f}",
                record.worker if record.worker is not None else "-",
            )
        return table


def _task_entry(conn, spec_name: str, params: Dict[str, Any]) -> None:
    """Worker-process body: resolve the spec, run it, ship the result.

    Runs in a fresh process; the registry is re-populated by importing
    the campaign package (a no-op under the default ``fork`` start
    method, where the parent's registrations are inherited).
    """
    try:
        from . import builtin  # noqa: F401 — ensures builtins under spawn
        registry = REGISTRY
        spec = registry.get(spec_name)
        start = time.perf_counter()
        result = spec.execute(params)
        spec.validate(result)
        conn.send(("ok", result, time.perf_counter() - start))
    except TransientError as exc:
        conn.send(("transient", f"{type(exc).__name__}: {exc}", 0.0))
    except BaseException as exc:  # noqa: BLE001 — one task, one record
        conn.send(("failed", f"{type(exc).__name__}: {exc}", 0.0))
    finally:
        conn.close()


@dataclass
class _Attempt:
    """A live worker process and the task it is executing."""

    task: CampaignTask
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: Optional[float]


class CampaignRunner:
    """Run campaign tasks over a bounded worker-process pool."""

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        cache_dir: Optional[str] = None,
        manifest_path: Optional[str] = None,
        registry: Optional[SpecRegistry] = None,
        mp_context: Optional[str] = None,
        poll_interval: float = 0.02,
    ) -> None:
        if workers < 0:
            raise CampaignError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise CampaignError(f"retries must be >= 0, got {retries}")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.registry = registry if registry is not None else REGISTRY
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.manifest_path = manifest_path
        self.poll_interval = poll_interval
        start_method = mp_context or ("fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn")
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    # task construction
    # ------------------------------------------------------------------
    def tasks_for(
        self,
        spec_names: Sequence[str],
        overrides: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> List[CampaignTask]:
        """Expand registered specs (+ grid axis overrides) into tasks.

        An override key of the form ``spec.axis`` applies only to that
        spec — the way to give per-spec parameters when one campaign
        fans out multiple specs; bare keys apply to every spec.
        """
        shared: Dict[str, Sequence[Any]] = {}
        scoped: Dict[str, Dict[str, Sequence[Any]]] = {}
        for key, values in (overrides or {}).items():
            if "." in key:
                spec_part, axis = key.split(".", 1)
                scoped.setdefault(spec_part, {})[axis] = values
            else:
                shared[key] = values
        unknown = set(scoped) - set(spec_names)
        if unknown:
            raise CampaignError(
                f"scoped override(s) for spec(s) not in this campaign: "
                f"{', '.join(sorted(unknown))}"
            )
        tasks: List[CampaignTask] = []
        for name in spec_names:
            spec = self.registry.get(name)
            merged = {**shared, **scoped.get(name, {})}
            for index, params in enumerate(spec.param_sets(merged)):
                tasks.append(CampaignTask(spec.name, params).with_id(index))
        return tasks

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        """Execute *tasks*; returns the report after the last one lands."""
        tasks = [t.with_id(i) for i, t in enumerate(tasks)]
        seen: set = set()
        for task in tasks:
            if task.task_id in seen:
                raise CampaignError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
        digest = source_digest() if self.cache is not None else ""
        report = CampaignReport(manifest_path=self.manifest_path)
        manifest = ManifestWriter(self.manifest_path) if self.manifest_path else None
        wall_start = time.perf_counter()
        try:
            if self.workers == 0:
                self._run_inline(tasks, digest, report, manifest)
            else:
                self._run_pool(tasks, digest, report, manifest)
        finally:
            if manifest is not None:
                manifest.close()
        report.wall_seconds = time.perf_counter() - wall_start
        # Manifest order follows completion; report order follows input.
        order = {t.task_id: i for i, t in enumerate(tasks)}
        report.records.sort(key=lambda r: order.get(r.task_id, len(order)))
        return report

    # -- shared bookkeeping --------------------------------------------
    def _key_for(self, task: CampaignTask, digest: str) -> str:
        return task_key(task.spec, task.params, digest) if self.cache is not None else ""

    def _finish(
        self,
        report: CampaignReport,
        manifest: Optional[ManifestWriter],
        record: TaskRecord,
        result: Any = None,
    ) -> None:
        report.records.append(record)
        if result is not None:
            report.results[record.task_id] = result
        if manifest is not None:
            manifest.write(record)

    def _try_cache(
        self,
        task: CampaignTask,
        key: str,
        report: CampaignReport,
        manifest: Optional[ManifestWriter],
    ) -> bool:
        if self.cache is None:
            return False
        hit, value = self.cache.get(key)
        if not hit:
            return False
        now = time.time()
        self._finish(report, manifest, TaskRecord(
            task_id=task.task_id, spec=task.spec, params=dict(task.params),
            status="cached", attempts=0, duration=0.0, worker=None,
            cache_key=key, started=now, finished=now,
        ), value)
        return True

    def _store(self, task: CampaignTask, key: str, value: Any, duration: float) -> None:
        if self.cache is None:
            return
        self.cache.put(key, value, meta={
            "spec": task.spec,
            "params": dict(task.params),
            "duration": duration,
            "result_type": type(value).__name__,
        })

    # -- inline mode ----------------------------------------------------
    def _run_inline(
        self,
        tasks: Sequence[CampaignTask],
        digest: str,
        report: CampaignReport,
        manifest: Optional[ManifestWriter],
    ) -> None:
        for task in tasks:
            key = self._key_for(task, digest)
            if self._try_cache(task, key, report, manifest):
                continue
            spec = self.registry.get(task.spec)
            attempts = 0
            started = time.time()
            while True:
                attempts += 1
                begin = time.perf_counter()
                try:
                    result = spec.execute(task.params)
                    spec.validate(result)
                except TransientError as exc:
                    if attempts <= self.retries:
                        time.sleep(self.backoff * (2 ** (attempts - 1)))
                        continue
                    self._finish(report, manifest, TaskRecord(
                        task_id=task.task_id, spec=task.spec,
                        params=dict(task.params), status="failed",
                        attempts=attempts, duration=time.perf_counter() - begin,
                        cache_key=key, error=f"{type(exc).__name__}: {exc}",
                        started=started, finished=time.time(),
                    ))
                    break
                except Exception as exc:  # noqa: BLE001
                    self._finish(report, manifest, TaskRecord(
                        task_id=task.task_id, spec=task.spec,
                        params=dict(task.params), status="failed",
                        attempts=attempts, duration=time.perf_counter() - begin,
                        cache_key=key, error=f"{type(exc).__name__}: {exc}",
                        started=started, finished=time.time(),
                    ))
                    break
                else:
                    duration = time.perf_counter() - begin
                    self._store(task, key, result, duration)
                    self._finish(report, manifest, TaskRecord(
                        task_id=task.task_id, spec=task.spec,
                        params=dict(task.params), status="ok",
                        attempts=attempts, duration=duration, cache_key=key,
                        started=started, finished=time.time(),
                    ), result)
                    break

    # -- pool mode ------------------------------------------------------
    def _spawn(self, task: CampaignTask, attempt: int) -> _Attempt:
        spec = self.registry.get(task.spec)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_task_entry,
            args=(child_conn, task.spec, dict(task.params)),
            daemon=True,
            name=f"fv-campaign-{task.task_id}",
        )
        process.start()
        child_conn.close()
        budget = self.timeout if self.timeout is not None else spec.timeout
        now = time.monotonic()
        return _Attempt(
            task=task,
            attempt=attempt,
            process=process,
            conn=parent_conn,
            started=now,
            deadline=(now + budget) if budget is not None else None,
        )

    def _run_pool(
        self,
        tasks: Sequence[CampaignTask],
        digest: str,
        report: CampaignReport,
        manifest: Optional[ManifestWriter],
    ) -> None:
        keys: Dict[str, str] = {}
        pending: List[Tuple[float, CampaignTask, int]] = []  # (ready_at, task, attempt)
        for task in tasks:
            key = self._key_for(task, digest)
            keys[task.task_id] = key
            if not self._try_cache(task, key, report, manifest):
                pending.append((0.0, task, 1))
        running: List[_Attempt] = []
        start_times: Dict[str, float] = {}
        try:
            while pending or running:
                now = time.monotonic()
                # Launch whatever is ready while worker slots are free.
                ready = [p for p in pending if p[0] <= now]
                while ready and len(running) < self.workers:
                    entry = ready.pop(0)
                    pending.remove(entry)
                    _, task, attempt = entry
                    start_times.setdefault(task.task_id, time.time())
                    running.append(self._spawn(task, attempt))
                progressed = self._reap(running, pending, keys, start_times, report, manifest)
                if not progressed:
                    time.sleep(self.poll_interval)
        finally:
            for attempt in running:  # interrupted: leave no orphans
                attempt.process.terminate()
                attempt.process.join()

    def _reap(
        self,
        running: List[_Attempt],
        pending: List[Tuple[float, CampaignTask, int]],
        keys: Dict[str, str],
        start_times: Dict[str, float],
        report: CampaignReport,
        manifest: Optional[ManifestWriter],
    ) -> bool:
        """Collect finished/expired attempts; returns True on progress."""
        progressed = False
        for attempt in list(running):
            task = attempt.task
            key = keys[task.task_id]
            outcome: Optional[Tuple[str, Any, float]] = None
            if attempt.conn.poll():
                try:
                    outcome = attempt.conn.recv()
                except (EOFError, OSError):
                    outcome = ("failed", "worker died before reporting a result", 0.0)
            elif not attempt.process.is_alive():
                outcome = ("failed", f"worker exited with code {attempt.process.exitcode}", 0.0)
            elif attempt.deadline is not None and time.monotonic() > attempt.deadline:
                attempt.process.terminate()
                attempt.process.join()
                self._finish(report, manifest, TaskRecord(
                    task_id=task.task_id, spec=task.spec, params=dict(task.params),
                    status="timeout", attempts=attempt.attempt,
                    duration=time.monotonic() - attempt.started,
                    worker=attempt.process.pid, cache_key=key,
                    error=f"wall-clock deadline exceeded after {time.monotonic() - attempt.started:.2f}s",
                    started=start_times[task.task_id], finished=time.time(),
                ))
                attempt.conn.close()
                running.remove(attempt)
                progressed = True
                continue
            if outcome is None:
                continue
            status, payload, worker_duration = outcome
            attempt.process.join()
            attempt.conn.close()
            running.remove(attempt)
            progressed = True
            duration = time.monotonic() - attempt.started
            if status == "ok":
                self._store(task, key, payload, worker_duration or duration)
                self._finish(report, manifest, TaskRecord(
                    task_id=task.task_id, spec=task.spec, params=dict(task.params),
                    status="ok", attempts=attempt.attempt, duration=duration,
                    worker=attempt.process.pid, cache_key=key,
                    started=start_times[task.task_id], finished=time.time(),
                ), payload)
            elif status == "transient" and attempt.attempt <= self.retries:
                delay = self.backoff * (2 ** (attempt.attempt - 1))
                pending.append((time.monotonic() + delay, task, attempt.attempt + 1))
            else:
                self._finish(report, manifest, TaskRecord(
                    task_id=task.task_id, spec=task.spec, params=dict(task.params),
                    status="failed", attempts=attempt.attempt, duration=duration,
                    worker=attempt.process.pid, cache_key=key, error=str(payload),
                    started=start_times[task.task_id], finished=time.time(),
                ))
        return progressed
