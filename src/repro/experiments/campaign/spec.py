"""Declarative experiment specs and the global spec registry.

An :class:`ExperimentSpec` names one experiment entry point with the
unified ``run(setup, **params) -> Result`` signature (DESIGN.md §9),
its default parameter grid, and the schema its result must satisfy.
The registry maps spec names to specs so campaign tasks can be
described as plain ``(spec_name, params)`` pairs — picklable, cache-
keyable, and resolvable inside worker processes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ...errors import CampaignError
from ..base import ScaledSetup

__all__ = ["SETUP_KEYS", "ExperimentSpec", "SpecRegistry", "REGISTRY", "register"]

#: Parameter names routed into :class:`ScaledSetup` rather than passed
#: as keyword arguments to the entry point.
SETUP_KEYS = ("nominal_link_bps", "scale", "wire_bps", "seed")


@dataclass
class ExperimentSpec:
    """One registered experiment: entry point + grid + result schema.

    Attributes
    ----------
    name: registry key (also the CLI name: ``fv campaign run <name>``).
    entry: the unified entry point, called as ``entry(setup, **params)``
        where ``setup`` is a :class:`ScaledSetup` assembled from any
        grid keys in :data:`SETUP_KEYS` (or ``None`` when a task names
        none of them, letting the experiment use its published default).
    description: one line for ``fv campaign list``.
    grid: default parameter grid — each key maps to the sequence of
        values to sweep; the campaign expands the cartesian product.
    defaults: scalar parameters merged under every task's params (grid
        values and per-task overrides win).
    schema: required result attributes mapped to their expected types
        (``None`` skips the type check for that attribute). Every
        result must additionally expose ``to_table()``.
    timeout: default per-task wall-clock budget in seconds (``None``
        means unlimited unless the runner sets one).
    """

    name: str
    entry: Callable[..., Any]
    description: str = ""
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    defaults: Mapping[str, Any] = field(default_factory=dict)
    schema: Mapping[str, Optional[type]] = field(default_factory=dict)
    timeout: Optional[float] = None

    def param_sets(
        self, overrides: Optional[Mapping[str, Sequence[Any]]] = None
    ) -> List[Dict[str, Any]]:
        """Expand the grid (with *overrides* replacing whole axes) into
        the list of per-task parameter dicts, in deterministic order."""
        grid: Dict[str, Sequence[Any]] = dict(self.grid)
        for key, values in (overrides or {}).items():
            grid[key] = values
        if not grid:
            return [{}]
        keys = sorted(grid)
        for key in keys:
            if not isinstance(grid[key], (list, tuple)) or not grid[key]:
                raise CampaignError(
                    f"grid axis {key!r} of spec {self.name!r} must be a "
                    f"non-empty list, got {grid[key]!r}"
                )
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(grid[key] for key in keys))
        ]

    def resolve(self, params: Mapping[str, Any]) -> Tuple[Optional[ScaledSetup], Dict[str, Any]]:
        """Split merged (defaults + task) params into the setup and the
        entry-point keyword arguments."""
        merged: Dict[str, Any] = {**self.defaults, **params}
        setup_kwargs = {key: merged.pop(key) for key in SETUP_KEYS if key in merged}
        setup = ScaledSetup(**setup_kwargs) if setup_kwargs else None
        return setup, merged

    def execute(self, params: Mapping[str, Any]) -> Any:
        """Run the entry point for one resolved task."""
        setup, kwargs = self.resolve(params)
        return self.entry(setup, **kwargs)

    def validate(self, result: Any) -> None:
        """Check *result* against the spec's schema and the unified
        result contract (``to_table``)."""
        if not hasattr(result, "to_table"):
            raise CampaignError(
                f"spec {self.name!r} returned {type(result).__name__}, "
                "which does not expose to_table() — every unified-API "
                "Result must"
            )
        for attr, expected in self.schema.items():
            if not hasattr(result, attr):
                raise CampaignError(
                    f"spec {self.name!r} result is missing required "
                    f"attribute {attr!r}"
                )
            if expected is not None and not isinstance(getattr(result, attr), expected):
                raise CampaignError(
                    f"spec {self.name!r} result attribute {attr!r} is "
                    f"{type(getattr(result, attr)).__name__}, expected "
                    f"{expected.__name__}"
                )


class SpecRegistry:
    """Name → :class:`ExperimentSpec` mapping with duplicate detection."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
        if not replace and spec.name in self._specs:
            raise CampaignError(f"spec {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "<none>"
            raise CampaignError(
                f"unknown experiment spec {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self._specs[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-global registry the CLI and the worker processes use.
REGISTRY = SpecRegistry()


def register(
    name: str,
    entry: Callable[..., Any],
    *,
    registry: Optional[SpecRegistry] = None,
    replace: bool = False,
    **kwargs: Any,
) -> ExperimentSpec:
    """Create and register an :class:`ExperimentSpec` in one call."""
    spec = ExperimentSpec(name=name, entry=entry, **kwargs)
    return (registry if registry is not None else REGISTRY).register(spec, replace=replace)
