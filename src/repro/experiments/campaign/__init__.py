"""Parallel campaign orchestration over the experiment harness.

The paper's evaluation is a *grid* of runs — schedulers × scales ×
seeds × packet sizes. This package turns each figure module's unified
``run(setup, **params) -> Result`` entry point into a declarative
:class:`ExperimentSpec`, expands parameter grids into tasks, and
executes them on a worker-process pool with per-task timeouts, retry
with backoff, a content-addressed result cache, and a JSONL manifest.
See DESIGN.md §9 and the ``fv campaign`` CLI.

Importing this package registers the built-in specs (one per figure,
plus harness smokes) in :data:`REGISTRY`.
"""

from .cache import ResultCache, source_digest, task_key
from .manifest import STATUSES, ManifestWriter, TaskRecord, read_manifest
from .runner import CampaignReport, CampaignRunner, CampaignTask
from .spec import REGISTRY, SETUP_KEYS, ExperimentSpec, SpecRegistry, register
from . import builtin  # noqa: F401 — populates REGISTRY as a side effect
from .builtin import SmokeResult

__all__ = [
    "REGISTRY",
    "SETUP_KEYS",
    "STATUSES",
    "CampaignReport",
    "CampaignRunner",
    "CampaignTask",
    "ExperimentSpec",
    "ManifestWriter",
    "ResultCache",
    "SmokeResult",
    "SpecRegistry",
    "TaskRecord",
    "read_manifest",
    "register",
    "source_digest",
    "task_key",
]
