"""E-F14 — Figure 14: one-way delay under fair queueing.

The paper saturates the link under the fair-queueing policy and
measures one-way packet delay per scheduler:

* FlowValve is lowest at 10 Gbit and ~4× higher at 40 Gbit — but the
  40 Gbit floor (161 µs) exists even with FlowValve disabled, i.e. it
  is the SmartNIC's own pipeline, not the scheduler. FlowValve's
  delay *variation* is near zero either way.
* kernel HTB (10 Gbit only) shows millisecond-scale delay with large
  jitter — its class queues run full under TCP and the softirq batches
  modulate the drain;
* DPDK QoS sits in between (bounded queues, polled drain).

Delay runs are rate-scaled like the timelines; measured delays divide
by the scale factor. The SmartNIC's load-dependent internal latency —
which the paper explicitly could not attribute ("some other necessary
processings on the SmartNIC... we could not change") — is injected as
a calibrated per-line-rate constant (see EXPERIMENTS.md); everything
else (queueing, serialisation, scheduling, jitter) is emergent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..baselines import DpdkQosParams, DpdkQosScheduler, KernelQdiscRuntime
from ..core import FlowValveFrontend
from ..net import Link, PacketFactory, PacketSink
from ..nic import NicPipeline
from ..host import FixedRateSender, TcpApp, TcpParams, TcpRegistry
from ..sim import Simulator
from ..stats.latency import LatencySummary, summarize_latencies
from ..stats.report import Table
from .base import ScaledSetup, warn_deprecated
from .fig13 import _fair_htb_tree
from .policies import fair_policy

__all__ = [
    "Fig14Row",
    "Fig14Result",
    "run",
    "run_fig14",
    "fig14_table",
    "PAPER_FIG14",
    "NIC_PIPELINE_LATENCY",
]

#: The paper's measured one-way delays (µs); jitter described as
#: "almost no variations" for FlowValve, large for HTB.
PAPER_FIG14: Dict[str, Dict[float, float]] = {
    "flowvalve": {10e9: 40.0, 40e9: 161.0},
    "htb": {10e9: 1100.0},
    "dpdk": {10e9: 70.0, 40e9: 120.0},
}

#: Calibrated SmartNIC internal latency (seconds, unscaled) per line
#: rate — the paper's unattributed pipeline floor: 161.01 µs measured
#: at 40 Gbit with FlowValve *disabled*; proportionally lower at
#: 10 Gbit where the DMA/aggregation stages run far below capacity.
NIC_PIPELINE_LATENCY: Dict[float, float] = {
    10e9: 25e-6,
    20e9: 55e-6,
    30e9: 100e-6,
    40e9: 149e-6,
}


@dataclass
class Fig14Row:
    """One (scheduler, line-rate) cell of the delay comparison."""

    scheduler: str
    line_rate_bps: float
    summary: LatencySummary
    paper_mean_us: Optional[float]


def _flowvalve_delay(setup: ScaledSetup, duration: float) -> LatencySummary:
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        fair_policy(setup.link_bps, 4), link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    extra = NIC_PIPELINE_LATENCY.get(setup.nominal_link_bps, 20e-6) * setup.scale
    cfg = replace(setup.nic_config(), tx_fixed_latency=extra)
    sink = PacketSink(sim, rate_window=1.0, record_delays=True, delay_start=duration / 3)
    nic = NicPipeline.with_flowvalve(sim, cfg, frontend, receiver=sink.receive)
    factory = PacketFactory()
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, nic.submit,
            rate_bps=0.3 * setup.link_bps,  # 4 × 0.3 = 120% offered
            packet_size=1500, vf_index=i, jitter=0.1,
            rng=sim.random.stream(f"App{i}"),
        )
    sim.run(until=duration)
    return summarize_latencies(sink.delays).scaled(1.0 / setup.scale)


def _htb_delay(setup: ScaledSetup, duration: float) -> LatencySummary:
    sim = Simulator(seed=setup.seed)
    registry = TcpRegistry(sim)
    sink = PacketSink(
        sim, rate_window=1.0, record_delays=True, delay_start=duration / 3,
        on_delivery=registry.handle_delivery,
    )
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    # Kernel-default 1000-packet class queues: HTB's delay *is* its
    # bufferbloat.
    qdisc = _fair_htb_tree(setup.link_bps, 4)
    for leaf in qdisc._leaves:
        leaf.queue.limit = 1000
    runtime = KernelQdiscRuntime(
        sim, qdisc, link, params=setup.kernel_params(), on_drop=registry.handle_drop,
    )
    factory = PacketFactory()
    for i in range(4):
        TcpApp(
            sim, f"App{i}", registry, factory, runtime.enqueue, n_connections=1,
            tcp_params=TcpParams(base_rtt=100e-6 * setup.scale), vf_index=i,
        )
    sim.run(until=duration)
    return summarize_latencies(sink.delays).scaled(1.0 / setup.scale)


def _dpdk_delay(setup: ScaledSetup, duration: float, n_cores: int = 2) -> LatencySummary:
    sim = Simulator(seed=setup.seed)
    sink = PacketSink(sim, rate_window=1.0, record_delays=True, delay_start=duration / 3)
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    # librte_sched's per-TC queues sit near-full under persistent
    # overload, so the configured qsize IS the DPDK delay; deployments
    # size it with the line rate (16 at 10 Gbit, 64 at 40 Gbit).
    qdisc = _fair_htb_tree(setup.link_bps, 4)
    qsize = 16 if setup.nominal_link_bps <= 10e9 else 64
    for leaf in qdisc._leaves:
        leaf.queue.limit = qsize
    sched = DpdkQosScheduler(
        sim, qdisc, link, n_cores=n_cores,
        params=DpdkQosParams().scaled(setup.scale),
    )
    factory = PacketFactory()
    for i in range(4):
        FixedRateSender(
            sim, f"App{i}", factory, sched.submit,
            rate_bps=0.3 * setup.link_bps, packet_size=1500, vf_index=i,
            jitter=0.1, rng=sim.random.stream(f"App{i}"),
        )
    sim.run(until=duration)
    return summarize_latencies(sink.delays).scaled(1.0 / setup.scale)


@dataclass
class Fig14Result:
    """The measured Fig. 14 delay comparison (unified-API wrapper)."""

    rows: List[Fig14Row]

    def to_table(self) -> Table:
        return fig14_table(self.rows)


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    duration: float = 30.0,
) -> Fig14Result:
    """Measure one-way delay for every (scheduler, rate) the paper
    reports: FlowValve and DPDK at 10 and 40 Gbit; HTB at 10 only
    ("HTB cannot enforce network policies correctly on these high
    speed links").

    ``setup`` supplies the 10 Gbit base scale and the seed; the sweep
    builds its own per-rate setups from them (the 40 Gbit points scale
    proportionally deeper).
    """
    scale = setup.scale if setup is not None else 100.0
    seed = setup.seed if setup is not None else 13
    rows: List[Fig14Row] = []
    for rate in (10e9, 40e9):
        setup = ScaledSetup(nominal_link_bps=rate, scale=scale * rate / 10e9,
                            wire_bps=rate, seed=seed)
        rows.append(Fig14Row(
            "FlowValve", rate, _flowvalve_delay(setup, duration),
            PAPER_FIG14["flowvalve"].get(rate),
        ))
        if rate <= 10e9:
            rows.append(Fig14Row(
                "Linux HTB", rate, _htb_delay(setup, duration),
                PAPER_FIG14["htb"].get(rate),
            ))
        rows.append(Fig14Row(
            "DPDK QoS", rate, _dpdk_delay(setup, duration),
            PAPER_FIG14["dpdk"].get(rate),
        ))
    return Fig14Result(rows=rows)


def run_fig14(
    duration: float = 30.0,
    scale: float = 100.0,
    seed: int = 13,
) -> List[Fig14Row]:
    """Deprecated alias for :func:`run`; returns the bare row list."""
    warn_deprecated("run_fig14", "repro.experiments.fig14.run")
    base = ScaledSetup(nominal_link_bps=10e9, scale=scale, wire_bps=10e9, seed=seed)
    return run(base, duration=duration).rows


def fig14_table(rows: List[Fig14Row]) -> Table:
    """Render mean/p99/jitter next to the published means."""
    table = Table(
        "Fig. 14 — one-way delay under fair queueing",
        ["scheduler", "rate", "mean(us)", "p99(us)", "jitter(us)", "paper mean(us)"],
    )
    for row in rows:
        s = row.summary
        table.add_row(
            row.scheduler,
            f"{row.line_rate_bps / 1e9:.0f}G",
            f"{s.mean * 1e6:.1f}",
            f"{s.p99 * 1e6:.1f}",
            f"{s.jitter * 1e6:.1f}",
            f"{row.paper_mean_us:.1f}" if row.paper_mean_us is not None else "-",
        )
    return table
