"""Shared experiment plumbing: scaled setups, runners, result types.

**Rate scaling.** The paper's timelines run 45-60 s at 10-40 Gbit —
hundreds of millions of packets, beyond a per-packet Python DES. Every
timeline experiment therefore runs *rate-scaled* (DESIGN.md §1): all
bandwidths divide by ``scale`` and all latency/time constants multiply
by it, preserving every dimensionless ratio (packets per update epoch,
RTT/ΔT, queue time/epoch, burst/BDP). Results are reported in nominal
units by multiplying rates back up; measured delays divide by
``scale``.

Workload note: the headline enforcement figures drive *backlogged
constant-rate* senders (the paper's own Fig. 13/14 methodology, and
equivalent to its permanently-backlogged iperf/mTCP flows for
throughput purposes). The AIMD TCP host model is exercised by the
dedicated TCP-realism experiment and the test suite.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines import HtbQdisc, KernelQdiscRuntime
from ..core.sched_tree import SchedulingParams
from ..net import Link, PacketFactory, PacketSink
from ..host import FixedRateSender, propagate_next_change
from ..sim import Simulator
from ..stats.report import Table
from ..tc.ast import PolicyConfig
from ..topology.setup import ScaledSetup

__all__ = [
    "ScaledSetup",
    "TimelineResult",
    "run_flowvalve_timeline",
    "run_kernel_htb_timeline",
    "warn_deprecated",
]

#: Demand schedule type (re-exported for signatures).
Demand = Callable[[float], float]


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard warning for a legacy ``run_*`` shim.

    Every figure module keeps its historical entry point as a thin
    wrapper over the unified ``run(setup, **params) -> Result`` API
    (DESIGN.md §9); the wrapper calls this once per invocation.
    """
    warnings.warn(
        f"{old}() is deprecated; use {new} — the unified "
        "run(setup, **params) -> Result experiment API",
        DeprecationWarning,
        stacklevel=3,
    )


# :class:`ScaledSetup` moved to :mod:`repro.topology.setup` when the
# topology package became the public construction API; the name is
# re-exported here (unchanged) for every historical import site.


@dataclass
class TimelineResult:
    """Per-app throughput over time, in nominal units.

    ``series`` maps app name → list of ``(bin_end_seconds, bps)``.
    """

    title: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    bin_seconds: float = 5.0
    notes: str = ""

    def mean_rate(self, app: str, start: float, end: float) -> float:
        """Average nominal rate of *app* over [start, end)."""
        samples = [v for t, v in self.series.get(app, []) if start < t <= end]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def total_rate(self, start: float, end: float) -> float:
        """Aggregate nominal rate over [start, end)."""
        return sum(self.mean_rate(app, start, end) for app in self.series)

    def to_table(self) -> Table:
        """Render as one row per time bin, one column per app."""
        apps = sorted(self.series)
        table = Table(self.title, ["time"] + apps + ["total"])
        if not apps:
            return table
        for index, (t, _) in enumerate(self.series[apps[0]]):
            row = [f"{t - self.bin_seconds:.0f}-{t:.0f}s"]
            total = 0.0
            for app in apps:
                value = self.series[app][index][1]
                total += value
                row.append(f"{value / 1e9:.2f}G")
            row.append(f"{total / 1e9:.2f}G")
            table.rows.append(row)
        return table


def _collect_timeline(
    sink: PacketSink,
    apps: List[str],
    duration: float,
    bin_seconds: float,
    scale: float,
    title: str,
    notes: str = "",
) -> TimelineResult:
    result = TimelineResult(title=title, bin_seconds=bin_seconds, notes=notes)
    for app in apps:
        series = sink.rates.get(app)
        points: List[Tuple[float, float]] = []
        t = bin_seconds
        while t <= duration + 1e-9:
            rate = series.mean_rate(t - bin_seconds, t) if series else 0.0
            points.append((t, rate * scale))
            t += bin_seconds
        result.series[app] = points
    return result


def run_flowvalve_timeline(
    policy: PolicyConfig,
    demands: Dict[str, Demand],
    setup: ScaledSetup,
    duration: float = 60.0,
    bin_seconds: float = 5.0,
    title: str = "FlowValve timeline",
    packet_size: int = 1500,
    params: Optional[SchedulingParams] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    trace_limit: int = 0,
) -> TimelineResult:
    """Run FlowValve on the simulated NIC against backlogged senders.

    ``demands`` give each app's *offered* load in nominal bit/s over
    time (0 = idle); senders blast at the scaled equivalent and the
    scheduler enforces the policy.

    ``trace_path``/``metrics_path`` dump the raw observability streams
    the figure was computed from: the full structured event trace
    (drops, verdicts, rate updates, queue depths) and one metrics
    snapshot per reporting bin, both as JSONL. When omitted (the
    default) the run uses the no-op sinks and pays zero overhead.

    .. deprecated::
        Thin shim over :func:`repro.topology.timeline` (the
        ``Topology``/``SimulationSpec`` construction API) — same
        world, same event stream, same result shape.
    """
    from ..topology import timeline

    warn_deprecated("run_flowvalve_timeline", "repro.topology.timeline")
    return timeline(
        policy,
        demands,
        setup,
        duration=duration,
        bin_seconds=bin_seconds,
        title=title,
        packet_size=packet_size,
        params=params,
        trace_path=trace_path,
        metrics_path=metrics_path,
        trace_limit=trace_limit,
    )


def run_kernel_htb_timeline(
    qdisc: HtbQdisc,
    demands: Dict[str, Demand],
    setup: ScaledSetup,
    duration: float = 60.0,
    bin_seconds: float = 5.0,
    title: str = "Kernel HTB timeline",
    packet_size: int = 1500,
    use_tcp: bool = True,
) -> TimelineResult:
    """Run a kernel qdisc runtime against the same workload.

    Kernel runs default to AIMD TCP senders (the paper used iperf3;
    a queueing scheduler needs backpressure-aware sources — blasting
    CBR through a 1000-packet FIFO measures the FIFO, not HTB).
    """
    from ..host import TcpApp, TcpParams, TcpRegistry

    sim = Simulator(seed=setup.seed)
    registry = TcpRegistry(sim)
    sink = PacketSink(
        sim, rate_window=1.0, record_delays=False,
        on_delivery=registry.handle_delivery if use_tcp else None,
    )
    # The physical wire is the NIC's rate; the policy ceiling lives in
    # the qdisc — that gap is where the overshoot artifact shows.
    link = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    runtime = KernelQdiscRuntime(
        sim, qdisc, link, params=setup.kernel_params(),
        on_drop=registry.handle_drop if use_tcp else None,
    )
    factory = PacketFactory()
    for index, (app, demand) in enumerate(sorted(demands.items())):
        scaled_demand = _scale_demand(demand, setup.scale)
        if use_tcp:
            TcpApp(
                sim, app, registry, factory, runtime.enqueue,
                n_connections=1,
                demand=scaled_demand,
                tcp_params=TcpParams(base_rtt=100e-6 * setup.scale),
                vf_index=index,
            )
        else:
            FixedRateSender(
                sim, app, factory, runtime.enqueue,
                rate_bps=setup.sender_rate(), packet_size=packet_size,
                demand=scaled_demand, vf_index=index,
                jitter=0.1, rng=sim.random.stream(app),
            )
    sim.run(until=duration)
    return _collect_timeline(
        sink, sorted(demands), duration, bin_seconds, setup.scale, title,
        notes=f"scale=1/{setup.scale:.0f}, lock_util={runtime.lock_utilization:.2f}",
    )


def _scale_demand(demand: Demand, scale: float) -> Demand:
    # Pointwise rescale: boundaries (and the piecewise-constant
    # contract behind next_change) carry over unchanged.
    return propagate_next_change(lambda t: demand(t) / scale, demand)
