"""The evaluation harness: one module per paper figure/table.

Each experiment builds a self-contained simulated testbed (host apps,
scheduler under test, wire, receiver), runs it, and returns a typed
result that the benchmark suite renders as the same rows/series the
paper reports. See DESIGN.md §3 for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.

Every figure module exposes the unified entry-point shape
``run(setup: ScaledSetup, **spec_params) -> Result`` where the result
exposes ``to_table()`` (DESIGN.md §9); the historical ``run_*`` names
remain as thin deprecation shims returning their original shapes. The
:mod:`.campaign` subpackage (imported explicitly) registers every
entry point as an :class:`ExperimentSpec` and runs parameter grids in
parallel.
"""

from .base import (
    ScaledSetup,
    TimelineResult,
    run_flowvalve_timeline,
    run_kernel_htb_timeline,
)
from .policies import (
    fair_policy,
    motivation_policy,
    motivation_htb_tree,
    weighted_policy,
)
from .workloads import (
    fair_queueing_demands,
    motivation_demands,
    weighted_demands,
)
from .fabric import FabricResult, run_fabric_sweep
from .megaflow import MegaflowResult, run_megaflow
from .fig03 import run_fig03
from .fig11 import run_fig11a, run_fig11b, run_fig11c
from .fig13 import Fig13Result, Fig13Row, run_fig13
from .fig14 import Fig14Result, Fig14Row, run_fig14
from .cpu_cores import CpuResult, CpuRow, run_cpu_comparison
from .ablations import (
    IntervalSensitivityResult,
    LockAblationResult,
    PropagationDelayResult,
    run_lock_mode_ablation,
    run_propagation_delay,
    run_update_interval_sensitivity,
)
from .tcp_realism import (
    TcpRealismResult,
    run_tcp_realism_shared,
    tcp_realism_table,
)

__all__ = [
    "ScaledSetup",
    "TimelineResult",
    "run_flowvalve_timeline",
    "run_kernel_htb_timeline",
    "fair_policy",
    "motivation_policy",
    "motivation_htb_tree",
    "weighted_policy",
    "fair_queueing_demands",
    "motivation_demands",
    "weighted_demands",
    "FabricResult",
    "run_fabric_sweep",
    "MegaflowResult",
    "run_megaflow",
    "run_fig03",
    "run_fig11a",
    "run_fig11b",
    "run_fig11c",
    "Fig13Result",
    "Fig13Row",
    "run_fig13",
    "Fig14Result",
    "Fig14Row",
    "run_fig14",
    "CpuResult",
    "CpuRow",
    "run_cpu_comparison",
    "IntervalSensitivityResult",
    "LockAblationResult",
    "PropagationDelayResult",
    "run_lock_mode_ablation",
    "run_propagation_delay",
    "run_update_interval_sensitivity",
    "TcpRealismResult",
    "run_tcp_realism_shared",
    "tcp_realism_table",
]
