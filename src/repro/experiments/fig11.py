"""E-F11 — Figure 11: FlowValve enforcing QoS policies.

(a) the motivation policy on a 10 Gbit link (same workload as Fig. 3);
(b) fair queueing across four apps at 40 Gbit with staggered joins;
(c) the Fig. 12 weighted hierarchy at 40 Gbit.
"""

from __future__ import annotations

from typing import Optional

from ..topology import timeline
from .base import ScaledSetup, TimelineResult, warn_deprecated
from .policies import fair_policy, motivation_policy, weighted_policy
from .workloads import fair_queueing_demands, motivation_demands, weighted_demands

__all__ = ["run", "run_fig11a", "run_fig11b", "run_fig11c"]

#: Published testbed per sub-figure (the 40 Gbit panels need a deeper
#: rate scale to stay within a per-packet Python DES).
DEFAULT_SETUPS = {
    "a": ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9),
    "b": ScaledSetup(nominal_link_bps=40e9, scale=800.0, wire_bps=40e9),
    "c": ScaledSetup(nominal_link_bps=40e9, scale=800.0, wire_bps=40e9),
}


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    variant: str = "a",
    duration: float = 60.0,
) -> TimelineResult:
    """FlowValve enforcing one of the Fig. 11 panels.

    ``variant`` selects the panel: ``"a"`` motivation policy at
    10 Gbit, ``"b"`` fair queueing at 40 Gbit with staggered joins,
    ``"c"`` the Fig. 12 weighted hierarchy at 40 Gbit.
    """
    if variant not in DEFAULT_SETUPS:
        raise ValueError(f"fig11 variant must be one of 'a'/'b'/'c', got {variant!r}")
    setup = setup if setup is not None else DEFAULT_SETUPS[variant]
    if variant == "a":
        policy = motivation_policy(setup.link_bps)
        demands = motivation_demands(setup.nominal_link_bps)
        title = "Fig. 11(a) — FlowValve, motivation policy at 10 Gbit"
    elif variant == "b":
        policy = fair_policy(setup.link_bps, n_apps=4)
        demands = fair_queueing_demands(n_apps=4, join_every=10.0, duration=duration)
        title = "Fig. 11(b) — FlowValve fair queueing at 40 Gbit"
    else:
        policy = weighted_policy(setup.link_bps)
        demands = weighted_demands(duration=duration)
        title = "Fig. 11(c) — FlowValve weighted fair queueing at 40 Gbit"
    return timeline(policy, demands, setup, duration=duration, title=title)


def run_fig11a(
    setup: ScaledSetup = DEFAULT_SETUPS["a"],
    duration: float = 60.0,
) -> TimelineResult:
    """Deprecated alias for :func:`run` with ``variant="a"``."""
    warn_deprecated("run_fig11a", "repro.experiments.fig11.run(variant='a')")
    return run(setup, variant="a", duration=duration)


def run_fig11b(
    setup: ScaledSetup = DEFAULT_SETUPS["b"],
    duration: float = 60.0,
) -> TimelineResult:
    """Deprecated alias for :func:`run` with ``variant="b"``."""
    warn_deprecated("run_fig11b", "repro.experiments.fig11.run(variant='b')")
    return run(setup, variant="b", duration=duration)


def run_fig11c(
    setup: ScaledSetup = DEFAULT_SETUPS["c"],
    duration: float = 60.0,
) -> TimelineResult:
    """Deprecated alias for :func:`run` with ``variant="c"``."""
    warn_deprecated("run_fig11c", "repro.experiments.fig11.run(variant='c')")
    return run(setup, variant="c", duration=duration)
