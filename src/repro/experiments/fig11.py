"""E-F11 — Figure 11: FlowValve enforcing QoS policies.

(a) the motivation policy on a 10 Gbit link (same workload as Fig. 3);
(b) fair queueing across four apps at 40 Gbit with staggered joins;
(c) the Fig. 12 weighted hierarchy at 40 Gbit.
"""

from __future__ import annotations

from .base import ScaledSetup, TimelineResult, run_flowvalve_timeline
from .policies import fair_policy, motivation_policy, weighted_policy
from .workloads import fair_queueing_demands, motivation_demands, weighted_demands

__all__ = ["run_fig11a", "run_fig11b", "run_fig11c"]


def run_fig11a(
    setup: ScaledSetup = ScaledSetup(nominal_link_bps=10e9, scale=200.0, wire_bps=10e9),
    duration: float = 60.0,
) -> TimelineResult:
    """FlowValve on the motivation policy (paper Fig. 11a)."""
    policy = motivation_policy(setup.link_bps)
    demands = motivation_demands(setup.nominal_link_bps)
    return run_flowvalve_timeline(
        policy, demands, setup, duration=duration,
        title="Fig. 11(a) — FlowValve, motivation policy at 10 Gbit",
    )


def run_fig11b(
    setup: ScaledSetup = ScaledSetup(nominal_link_bps=40e9, scale=800.0, wire_bps=40e9),
    duration: float = 60.0,
) -> TimelineResult:
    """FlowValve fair queueing at 40 Gbit (paper Fig. 11b)."""
    policy = fair_policy(setup.link_bps, n_apps=4)
    demands = fair_queueing_demands(n_apps=4, join_every=10.0, duration=duration)
    return run_flowvalve_timeline(
        policy, demands, setup, duration=duration,
        title="Fig. 11(b) — FlowValve fair queueing at 40 Gbit",
    )


def run_fig11c(
    setup: ScaledSetup = ScaledSetup(nominal_link_bps=40e9, scale=800.0, wire_bps=40e9),
    duration: float = 60.0,
) -> TimelineResult:
    """FlowValve weighted fair queueing at 40 Gbit (paper Fig. 11c,
    policies of Fig. 12)."""
    policy = weighted_policy(setup.link_bps)
    demands = weighted_demands(duration=duration)
    return run_flowvalve_timeline(
        policy, demands, setup, duration=duration,
        title="Fig. 11(c) — FlowValve weighted fair queueing at 40 Gbit",
    )
