"""TCP-realism check: enforcement under closed-loop TCP senders.

The headline figures drive backlogged constant-rate senders (the
paper's Fig. 13/14 methodology). Real tenants run TCP, whose ack
clock, slow start, and loss response interact with the policer. This
experiment re-runs the guarantee scenario (WS weighted against the
KVS ≻ ML subtree) with ack-clocked AIMD connections and reports how
far the achieved shares drift from the policy targets.

Two findings worth knowing before trusting any policer in production
— both reproduce here and both are discussed in EXPERIMENTS.md:

* TCP fills a *policed* (unbuffered) rate to ~95-100% only when the
  policer's burst comfortably exceeds the connection's BDP; and
* a class's TCP underfill is not lost — FlowValve's shadow buckets
  lend it out, so the *total* stays on the link rate even when the
  per-class split drifts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core import FlowValveFrontend
from ..host import TcpApp, TcpParams, TcpRegistry
from ..host.traffic import windows
from ..net import PacketFactory, PacketSink
from ..nic import NicPipeline
from ..sim import Simulator
from ..stats.report import Table
from .base import ScaledSetup, warn_deprecated
from .policies import motivation_policy

__all__ = ["TcpRealismResult", "run", "run_tcp_realism", "tcp_realism_table"]

#: The published testbed for both TCP-realism regimes.
DEFAULT_SETUP = ScaledSetup(nominal_link_bps=10e9, scale=100.0, wire_bps=10e9, seed=21)


@dataclass
class TcpRealismResult:
    """Per-app targets vs TCP-achieved rates (nominal bit/s)."""

    targets: Dict[str, float]
    achieved: Dict[str, float]
    total_target: float
    total_achieved: float
    title: str = "TCP realism — policy targets vs TCP-achieved shares"

    def drift(self, app: str) -> float:
        """Relative deviation of *app* from its policy target."""
        target = self.targets[app]
        if target == 0:
            return 0.0
        return (self.achieved[app] - target) / target

    def to_table(self) -> Table:
        return tcp_realism_table(self, self.title)


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    regime: str = "shared",
    duration: float = 40.0,
    connections_per_app: int = 1,
) -> TcpRealismResult:
    """Run one TCP-realism regime (unified API).

    ``regime="shared"`` holds NC at its 2 Gbit management demand so the
    weighted split among WS/KVS/ML is observable; ``"backlogged"``
    backlogs all four apps, letting NC's strict priority take the link.
    """
    setup = setup if setup is not None else DEFAULT_SETUP
    if regime == "shared":
        return _run_shared(setup, duration)
    if regime == "backlogged":
        return _run_backlogged(setup, duration, connections_per_app)
    raise ValueError(
        f"tcp_realism regime must be 'shared' or 'backlogged', got {regime!r}"
    )


def _run_backlogged(
    setup: ScaledSetup,
    duration: float,
    connections_per_app: int,
) -> TcpRealismResult:
    """All four motivation-example apps backlogged via TCP for the
    whole run; steady-state shares measured over the second half."""
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    registry = TcpRegistry(sim)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False,
                      on_delivery=registry.handle_delivery)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive,
                                     on_drop=registry.handle_drop)
    factory = PacketFactory()
    apps = ("NC", "WS", "KVS", "ML")
    for index, app in enumerate(apps):
        TcpApp(
            sim, app, registry, factory, nic.submit,
            n_connections=connections_per_app,
            demand=windows((0, duration, 100 * setup.link_bps)),
            tcp_params=TcpParams(base_rtt=100e-6 * setup.scale),
            vf_index=index,
        )
    sim.run(until=duration)

    # Policy targets with everyone backlogged (×0.97 root headroom):
    # NC priority → everything; but NC *is* TCP-backlogged here, so the
    # policy gives NC the link and starves the rest. That makes a dull
    # experiment — instead NC's steady target is what its strict
    # priority grants it against its own demand; with all four hungry
    # the enforced split is NC-dominated. We therefore report targets
    # for the *observable* regime: NC full, others ≈ 0.
    b = setup.nominal_link_bps * 0.97
    targets = {"NC": b, "WS": 0.0, "KVS": 0.0, "ML": 0.0}
    achieved = {
        app: (sink.rates[app].mean_rate(duration / 2, duration) if app in sink.rates else 0.0)
        * setup.scale
        for app in apps
    }
    return TcpRealismResult(
        targets=targets,
        achieved=achieved,
        total_target=b,
        total_achieved=sum(achieved.values()),
        title="TCP realism (backlogged regime) — targets vs achieved",
    )


def _run_shared(setup: ScaledSetup, duration: float) -> TcpRealismResult:
    """The sharing regime: NC held at its 2 Gbit management demand so
    the weighted/guaranteed split among WS/KVS/ML is observable under
    TCP."""
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        motivation_policy(setup.link_bps),
        link_rate_bps=setup.link_bps,
        params=setup.sched_params(),
    )
    registry = TcpRegistry(sim)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False,
                      on_delivery=registry.handle_delivery)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend,
                                     receiver=sink.receive,
                                     on_drop=registry.handle_drop)
    factory = PacketFactory()
    demands = {
        "NC": windows((0, duration, 2e9 / setup.scale * 1.0)),
        "WS": windows((0, duration, 1e12)),
        "KVS": windows((0, duration, 1e12)),
        "ML": windows((0, duration, 1e12)),
    }
    for index, (app, demand) in enumerate(demands.items()):
        TcpApp(sim, app, registry, factory, nic.submit, n_connections=1,
               demand=demand, tcp_params=TcpParams(base_rtt=100e-6 * setup.scale),
               vf_index=index)
    sim.run(until=duration)

    b = setup.nominal_link_bps
    rest = 0.97 * b - 2e9
    targets = {
        "NC": 2e9,
        "WS": rest / 3,
        "KVS": 2 * rest / 3 - 2e9,
        "ML": 2e9,
    }
    achieved = {
        app: (sink.rates[app].mean_rate(duration / 2, duration) if app in sink.rates else 0.0)
        * setup.scale
        for app in demands
    }
    return TcpRealismResult(
        targets=targets,
        achieved=achieved,
        total_target=0.97 * b,
        total_achieved=sum(achieved.values()),
        title="TCP realism (shared regime) — targets vs achieved",
    )


def run_tcp_realism(
    setup: ScaledSetup = DEFAULT_SETUP,
    duration: float = 40.0,
    connections_per_app: int = 1,
) -> TcpRealismResult:
    """Deprecated alias for :func:`run` with ``regime="backlogged"``."""
    warn_deprecated("run_tcp_realism", "repro.experiments.tcp_realism.run(regime='backlogged')")
    return run(setup, regime="backlogged", duration=duration,
               connections_per_app=connections_per_app)


def run_tcp_realism_shared(
    setup: ScaledSetup = DEFAULT_SETUP,
    duration: float = 40.0,
) -> TcpRealismResult:
    """Deprecated alias for :func:`run` with ``regime="shared"``."""
    warn_deprecated("run_tcp_realism_shared", "repro.experiments.tcp_realism.run(regime='shared')")
    return run(setup, regime="shared", duration=duration)


def tcp_realism_table(result: TcpRealismResult, title: str) -> Table:
    """Render targets vs achieved with per-app drift."""
    table = Table(title, ["app", "target", "TCP achieved", "drift"])
    for app in sorted(result.targets):
        table.add_row(
            app,
            f"{result.targets[app] / 1e9:.2f}G",
            f"{result.achieved[app] / 1e9:.2f}G",
            f"{result.drift(app):+.1%}" if result.targets[app] else "-",
        )
    table.add_row("total", f"{result.total_target / 1e9:.2f}G",
                  f"{result.total_achieved / 1e9:.2f}G", "")
    return table


__all__.append("run_tcp_realism_shared")
