"""E-FABRIC — multi-host fabric sweep over the sharded engine.

ROADMAP item 1 (scale-out). Builds a *ring fabric*: ``hosts``
identical domains, each a full calibrated NIC running the motivation
policy against the motivation demand timeline, every NIC's egress
wire pointing at the next domain's sink. The ring makes every domain
both a producer and a consumer of cross-shard traffic, so the
conservative-window barrier protocol (:mod:`repro.sim.shard`) is
exercised on every boundary every window.

``run(shards=N)`` partitions the ring over N worker processes. The
per-domain event streams are shard-layout-invariant by construction
(per-domain seeds/sequence banks), so the sweep measures *wall-clock*
scaling of a fixed deterministic workload — the honest speedup number
EXPERIMENTS.md reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim import shard
from ..stats.report import Table
from ..topology import ScaledSetup, SimulationSpec, Topology
from .policies import motivation_policy
from .workloads import motivation_demands

__all__ = [
    "FabricResult",
    "build_fabric",
    "run",
    "run_fabric_sweep",
    "DEFAULT_PROP",
    "DEFAULT_SETUP",
]

#: Nominal inter-NIC propagation delay (seconds). 50 us is a
#: few-rack-hops datacenter RTT/2; scaled by the setup it becomes the
#: shard planner's lookahead.
DEFAULT_PROP = 5e-5

#: Fabric sweeps run deeper-scaled than the single-NIC figures: the
#: point is engine scaling, not per-figure fidelity, and 64 domains
#: at figure scale would be hours per run.
DEFAULT_SETUP = ScaledSetup(scale=2000.0)


@dataclass
class FabricResult:
    """Aggregate scaling numbers for one fabric run."""

    hosts: int
    shards: int
    workers: int
    windows: int
    duration: float
    wall_seconds: float
    total_packets: int
    total_events: int
    total_submitted: int
    total_dropped: int
    #: App name -> aggregate nominal achieved bit/s (all domains).
    app_rates: Dict[str, float] = field(default_factory=dict)
    degraded: bool = False
    #: Fluid fast-forward lane tallies summed over all domains
    #: (0 everywhere when the lane is off).
    fluid_absorbed: int = 0
    fluid_spills: int = 0
    fluid_suspends: int = 0
    #: Domain name -> kernel events executed by that domain's
    #: simulator, so a regression can be localized per domain.
    domain_events: Dict[str, int] = field(default_factory=dict)

    @property
    def pkt_per_sec(self) -> float:
        """Delivered packets per wall-clock second (the scaling metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_packets / self.wall_seconds

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds

    @property
    def events_per_packet(self) -> float:
        """Kernel events per delivered packet — deterministic for a
        fixed spec, the fabric counterpart of the single-NIC hot-path
        ratio the bench regression gate pins."""
        if self.total_packets <= 0:
            return 0.0
        return self.total_events / self.total_packets

    def to_table(self) -> Table:
        table = Table(
            f"fabric — {self.hosts} hosts, {self.shards} shards",
            ["metric", "value"],
        )
        table.add_row("workers", self.workers)
        table.add_row("windows", self.windows)
        table.add_row("sim duration", f"{self.duration:.1f}s")
        table.add_row("wall clock", f"{self.wall_seconds:.2f}s")
        table.add_row("packets delivered", self.total_packets)
        table.add_row("events executed", self.total_events)
        table.add_row("events/packet", f"{self.events_per_packet:.4f}")
        table.add_row(
            "fluid absorbed/spilled/suspended",
            f"{self.fluid_absorbed}/{self.fluid_spills}/{self.fluid_suspends}",
        )
        table.add_row("drops", f"{self.total_dropped}/{self.total_submitted}")
        table.add_row("pkt/s (wall)", f"{self.pkt_per_sec:,.0f}")
        table.add_row("events/s (wall)", f"{self.events_per_sec:,.0f}")
        for app in sorted(self.app_rates):
            table.add_row(f"{app} aggregate", f"{self.app_rates[app] / 1e9:.2f}G")
        return table


def build_fabric(
    setup: ScaledSetup,
    *,
    hosts: int = 64,
    prop: float = DEFAULT_PROP,
) -> Topology:
    """A ring of *hosts* motivation-policy domains.

    Domain ``i``'s egress wire terminates at domain ``(i+1) % hosts``;
    a single-host "ring" gets no wire (classic local delivery).
    """
    demands = sorted(motivation_demands(setup.nominal_link_bps).items())
    topo = Topology()
    for i in range(hosts):
        nic = f"nic{i}"
        host = f"host{i}"
        topo.nic(nic, motivation_policy(setup.link_bps))
        topo.host(host, nic=nic)
        for app, demand in demands:
            topo.app(host, app, demand=demand)
        if hosts > 1:
            topo.wire(nic, to=f"nic{(i + 1) % hosts}", propagation_delay=prop)
    return topo


def run(
    setup: Optional[ScaledSetup] = None,
    *,
    hosts: int = 64,
    shards: int = 1,
    duration: float = 2.0,
    window: Optional[float] = None,
    prop: float = DEFAULT_PROP,
    timeout: Optional[float] = None,
) -> FabricResult:
    """Run the ring fabric and report aggregate scaling numbers.

    The workload (and therefore every per-domain tally) is identical
    for every ``shards`` value; only ``wall_seconds`` varies.
    """
    if hosts < 1:
        raise ValueError(f"hosts must be >= 1, got {hosts}")
    setup = setup if setup is not None else DEFAULT_SETUP
    topo = build_fabric(setup, hosts=hosts, prop=prop)
    spec = SimulationSpec(
        topology=topo,
        setup=setup,
        duration=duration,
        title=f"fabric — {hosts} hosts",
        shards=shards,
        window=window,
        timeout=timeout,
    )
    result = spec.run()
    app_rates: Dict[str, float] = {}
    for app in result.app_names():
        app_rates[app] = result.throughput_bps(app)
    # Effective worker processes: degraded plans collapse to one shard,
    # and a daemonic parent (campaign task worker) runs inline.
    workers = min(shards, hosts) if shard.can_spawn_workers() else 1
    if result.degraded:
        workers = 1
    return FabricResult(
        hosts=hosts,
        shards=shards,
        workers=workers,
        windows=result.windows,
        duration=duration,
        wall_seconds=result.wall_seconds,
        total_packets=result.total_packets,
        total_events=result.total_events,
        total_submitted=result.total_submitted,
        total_dropped=result.total_dropped,
        app_rates=app_rates,
        degraded=result.degraded,
        fluid_absorbed=result.total_fluid_absorbed,
        fluid_spills=result.total_fluid_spills,
        fluid_suspends=result.total_fluid_suspends,
        domain_events={name: d.events for name, d in result.domains.items()},
    )


#: Package-level alias matching the ``run_*`` naming of sibling modules.
run_fabric_sweep = run
