"""Policy definitions used across the experiments.

All policies are expressed as ``fv`` scripts (parameterised by the
link rate) so the experiments exercise the real front-end path:
parse → validate → scheduling tree.
"""

from __future__ import annotations

from ..baselines import HtbClass, HtbQdisc
from ..tc.ast import PolicyConfig
from ..tc.classifier import Classifier
from ..tc.parser import parse_script
from ..units import format_rate

__all__ = [
    "motivation_policy",
    "motivation_htb_tree",
    "fair_policy",
    "weighted_policy",
]


def _rate(bps: float) -> str:
    """Render a rate for an fv script (integer bit/s is always valid)."""
    return f"{bps:.0f}"


def motivation_policy(link_bps: float) -> PolicyConfig:
    """The §II motivation example, scaled to *link_bps*.

    * NC has strict priority (it is a management channel);
    * the rest (S1) splits WS : vm1 = 1 : 2 by weight;
    * inside vm1 (S2), KVS has priority over ML, but ML is guaranteed
      ``link/5`` (2 Gbit on a 10 Gbit link) whenever S2's share
      exceeds ``2·link/5`` (4 Gbit), weighted 1:1 below that;
    * WS may reclaim vm1's idle share; KVS/ML may reclaim WS's.
    """
    b = link_bps
    script = f"""
    fv qdisc add dev eth0 root handle 1: fv default 0
    fv class add dev eth0 parent 1: classid 1:1 fv rate {_rate(b)} ceil {_rate(b)}
    fv class add dev eth0 parent 1:1 classid 1:10 fv prio 0 rate {_rate(b)}
    fv class add dev eth0 parent 1:1 classid 1:2 fv prio 1 rate {_rate(0.8 * b)}
    fv class add dev eth0 parent 1:2 classid 1:20 fv weight 1 borrow 1:3
    fv class add dev eth0 parent 1:2 classid 1:3 fv weight 2
    fv class add dev eth0 parent 1:3 classid 1:30 fv prio 0 rate {_rate(0.4 * b)} borrow 1:20
    fv class add dev eth0 parent 1:3 classid 1:31 fv prio 1 rate {_rate(0.2 * b)} \
        guarantee {_rate(0.2 * b)} threshold {_rate(0.4 * b)} borrow 1:20
    fv filter add dev eth0 parent 1: match app=NC flowid 1:10
    fv filter add dev eth0 parent 1: match app=WS flowid 1:20
    fv filter add dev eth0 parent 1: match app=KVS flowid 1:30
    fv filter add dev eth0 parent 1: match app=ML flowid 1:31
    """
    return parse_script(script)


def motivation_htb_tree(link_bps: float, wire_bps: float, queue_limit: int = 100) -> HtbQdisc:
    """The same policy expressed the way an administrator configures
    kernel HTB (Fig. 3's setup): assured rates per class, ceilings at
    the policy root, priority expressed via ``prio`` (which, per the
    paper's observation, kernel HTB's borrowing does not honour)."""
    from ..tc.ast import FilterSpec

    b = link_bps
    root = HtbClass("1:1", rate_bps=b, ceil_bps=b)
    HtbClass("1:10", rate_bps=0.5 * b, ceil_bps=b, parent=root)           # NC
    s1 = HtbClass("1:2", rate_bps=0.5 * b, ceil_bps=b, parent=root)
    HtbClass("1:20", rate_bps=0.5 * b / 3, ceil_bps=b, parent=s1)          # WS
    s2 = HtbClass("1:3", rate_bps=b / 3, ceil_bps=b, parent=s1)
    HtbClass("1:30", rate_bps=b / 6, ceil_bps=b, parent=s2)                # KVS
    HtbClass("1:31", rate_bps=b / 6, ceil_bps=b, parent=s2)                # ML
    classifier = Classifier([
        FilterSpec(flowid="1:10", match={"app": "NC"}),
        FilterSpec(flowid="1:20", match={"app": "WS"}),
        FilterSpec(flowid="1:30", match={"app": "KVS"}),
        FilterSpec(flowid="1:31", match={"app": "ML"}),
    ])
    return HtbQdisc(root, classifier, queue_limit=queue_limit)


def fair_policy(link_bps: float, n_apps: int = 4) -> PolicyConfig:
    """Fair queueing across *n_apps* (the §V-A 40 Gbit experiment):
    equal weights, every leaf may borrow every other leaf's idle
    share."""
    lines = [
        "fv qdisc add dev eth0 root handle 1: fv default 0",
        f"fv class add dev eth0 parent 1: classid 1:1 fv rate {_rate(link_bps)} ceil {_rate(link_bps)}",
    ]
    leaf_ids = [f"1:{0x10 + i:x}" for i in range(n_apps)]
    for i, leaf in enumerate(leaf_ids):
        others = ",".join(l for l in leaf_ids if l != leaf)
        lines.append(
            f"fv class add dev eth0 parent 1:1 classid {leaf} fv weight 1 borrow {others}"
        )
        lines.append(f"fv filter add dev eth0 parent 1: match app=App{i} flowid {leaf}")
    return parse_script("\n".join(lines))


def weighted_policy(link_bps: float) -> PolicyConfig:
    """The Fig. 12 weighted hierarchy: App0:S1 = 1:1, App1:S2 = 1:1,
    App2:App3 = 1:1 (so the nominal shares are 1/2, 1/4, 1/8, 1/8),
    with unweighted borrowing across all leaves ("we do not enforce
    weighted borrowing")."""
    b = link_bps
    leaves = {"App0": "1:10", "App1": "1:20", "App2": "1:30", "App3": "1:40"}

    def borrows(mine: str) -> str:
        return ",".join(v for v in leaves.values() if v != mine)

    script = f"""
    fv qdisc add dev eth0 root handle 1: fv default 0
    fv class add dev eth0 parent 1: classid 1:1 fv rate {_rate(b)} ceil {_rate(b)}
    fv class add dev eth0 parent 1:1 classid 1:10 fv weight 1 borrow {borrows("1:10")}
    fv class add dev eth0 parent 1:1 classid 1:2 fv weight 1
    fv class add dev eth0 parent 1:2 classid 1:20 fv weight 1 borrow {borrows("1:20")}
    fv class add dev eth0 parent 1:2 classid 1:3 fv weight 1
    fv class add dev eth0 parent 1:3 classid 1:30 fv weight 1 borrow {borrows("1:30")}
    fv class add dev eth0 parent 1:3 classid 1:40 fv weight 1 borrow {borrows("1:40")}
    fv filter add dev eth0 parent 1: match app=App0 flowid 1:10
    fv filter add dev eth0 parent 1: match app=App1 flowid 1:20
    fv filter add dev eth0 parent 1: match app=App2 flowid 1:30
    fv filter add dev eth0 parent 1: match app=App3 flowid 1:40
    """
    return parse_script(script)
