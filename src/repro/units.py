"""Unit helpers: bandwidths, packet sizes, packet rates, and time.

The paper mixes several unit systems — user policies in Gbit/s, token
rates in bits/cycle (Eq. 2), throughput tables in Mpps, and Ethernet
line-rate math that must account for framing overhead. This module
centralises the conversions so the rest of the code can work in SI
base units (bits per second, bytes, seconds) without sprinkling magic
constants.

It also provides the ``tc``-style suffix parser used by the ``fv``
command front end (``10gbit``, ``500mbit``, ``1514b`` ...).
"""

from __future__ import annotations

import re

from .errors import ParseError

__all__ = [
    "KBIT",
    "MBIT",
    "GBIT",
    "ETH_PREAMBLE",
    "ETH_IFG",
    "ETH_CRC",
    "ETH_OVERHEAD",
    "MIN_FRAME",
    "MAX_FRAME",
    "bits",
    "parse_rate",
    "parse_size",
    "parse_time",
    "format_rate",
    "format_size",
    "format_time",
    "wire_bits",
    "line_rate_pps",
    "goodput_ratio",
]

#: Multipliers for decimal rate suffixes (networking convention: 1k = 1000).
KBIT = 1_000
MBIT = 1_000_000
GBIT = 1_000_000_000

#: Ethernet preamble + start frame delimiter, bytes on the wire per frame.
ETH_PREAMBLE = 8
#: Minimum inter-frame gap, bytes.
ETH_IFG = 12
#: Frame check sequence, bytes (already part of the L2 frame).
ETH_CRC = 4
#: Total per-frame wire overhead beyond the L2 frame itself.
ETH_OVERHEAD = ETH_PREAMBLE + ETH_IFG
#: Smallest legal Ethernet frame (64 B including CRC).
MIN_FRAME = 64
#: Largest standard frame (1518 B including CRC), as used in Fig. 13.
MAX_FRAME = 1518

_RATE_SUFFIXES = {
    "bit": 1,
    "kbit": KBIT,
    "mbit": MBIT,
    "gbit": GBIT,
    "tbit": 1_000_000_000_000,
    "bps": 8,          # tc: bytes per second
    "kbps": 8 * KBIT,
    "mbps": 8 * MBIT,
    "gbps": 8 * GBIT,
}

_SIZE_SUFFIXES = {
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "m": 1024 * 1024,
    "mb": 1024 * 1024,
    "g": 1024 * 1024 * 1024,
    "gb": 1024 * 1024 * 1024,
}

_TIME_SUFFIXES = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "ms": 1e-3,
    "msec": 1e-3,
    "msecs": 1e-3,
    "us": 1e-6,
    "usec": 1e-6,
    "usecs": 1e-6,
    "ns": 1e-9,
}

_NUMBER_RE = re.compile(r"^([0-9]*\.?[0-9]+)([a-zA-Z]*)$")


def bits(nbytes: float) -> float:
    """Return the number of bits in *nbytes* bytes."""
    return nbytes * 8.0


def _split(text: str, kind: str) -> "tuple[float, str]":
    match = _NUMBER_RE.match(text.strip())
    if match is None:
        raise ParseError(f"cannot parse {kind} value: {text!r}")
    return float(match.group(1)), match.group(2).lower()


def parse_rate(text: str) -> float:
    """Parse a ``tc``-style rate string into bits per second.

    >>> parse_rate("10gbit")
    10000000000.0
    >>> parse_rate("2.5mbit")
    2500000.0

    A bare number is interpreted as bits per second, matching ``tc``.
    """
    value, suffix = _split(text, "rate")
    if not suffix:
        return value
    try:
        return value * _RATE_SUFFIXES[suffix]
    except KeyError:
        raise ParseError(f"unknown rate suffix {suffix!r} in {text!r}") from None


def parse_size(text: str) -> int:
    """Parse a size string (``1514b``, ``32k``) into bytes."""
    value, suffix = _split(text, "size")
    if not suffix:
        return int(value)
    try:
        return int(value * _SIZE_SUFFIXES[suffix])
    except KeyError:
        raise ParseError(f"unknown size suffix {suffix!r} in {text!r}") from None


def parse_time(text: str) -> float:
    """Parse a duration string (``10ms``, ``1.5s``) into seconds.

    A bare number is interpreted as seconds.
    """
    value, suffix = _split(text, "time")
    if not suffix:
        return value
    try:
        return value * _TIME_SUFFIXES[suffix]
    except KeyError:
        raise ParseError(f"unknown time suffix {suffix!r} in {text!r}") from None


def format_rate(bps: float) -> str:
    """Render a rate in the most natural decimal unit (``9.87Gbit``)."""
    for limit, name in ((GBIT, "Gbit"), (MBIT, "Mbit"), (KBIT, "Kbit")):
        if abs(bps) >= limit:
            return f"{bps / limit:.2f}{name}"
    return f"{bps:.0f}bit"


def format_size(nbytes: float) -> str:
    """Render a byte count with a binary suffix (``1.50KiB``)."""
    for limit, name in ((1024 ** 3, "GiB"), (1024 ** 2, "MiB"), (1024, "KiB")):
        if abs(nbytes) >= limit:
            return f"{nbytes / limit:.2f}{name}"
    return f"{nbytes:.0f}B"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (``12.3us``)."""
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if abs(seconds) >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"


def wire_bits(frame_bytes: int) -> float:
    """Bits consumed on the wire by one frame of *frame_bytes* (L2 size
    including CRC), accounting for preamble and inter-frame gap."""
    return bits(frame_bytes + ETH_OVERHEAD)


def line_rate_pps(link_bps: float, frame_bytes: int) -> float:
    """Maximum packets per second of *frame_bytes*-sized frames on a link.

    >>> round(line_rate_pps(10 * GBIT, 64) / 1e6, 2)   # classic 14.88 Mpps
    14.88
    """
    return link_bps / wire_bits(frame_bytes)


def goodput_ratio(frame_bytes: int) -> float:
    """Fraction of the wire rate visible as L2 throughput for a frame size."""
    return bits(frame_bytes) / wire_bits(frame_bytes)
