"""Point-to-point link with serialisation and propagation delay.

The link is the final stage of every data path: the SmartNIC MAC (or a
software scheduler's transmit loop) hands frames to :meth:`Link.send`,
which serialises them at the configured line rate — including Ethernet
preamble and inter-frame gap, so a saturated 10 Gbit link carries the
textbook 14.88 Mpps of 64 B frames — and delivers them to the attached
receiver after the propagation delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..units import wire_bits
from .packet import Packet

__all__ = ["Link"]


class Link:
    """A store-and-forward link at a fixed bit rate.

    Frames are serialised back-to-back; if :meth:`send` is called while
    a previous frame is still on the wire, the new frame starts when
    the wire frees up (the caller is expected to pace itself — the NIC
    MAC model does, via :meth:`busy_until`).

    Parameters
    ----------
    sim: the shared simulator.
    rate_bps: line rate in bits per second.
    propagation_delay: one-way latency added after serialisation.
    receiver: ``callable(packet)`` invoked at delivery time.
    """

    def __init__(
        self,
        sim,
        rate_bps: float,
        propagation_delay: float = 0.0,
        receiver: Optional[Callable[[Packet], None]] = None,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.receiver = receiver
        self.name = name
        self._busy_until = 0.0
        #: Frames fully serialised onto the wire.
        self.frames_sent = 0
        #: Payload bytes (L2 sizes) carried.
        self.bytes_sent = 0
        #: Lazy delivery target (PacketSink), or None for the eventful
        #: route. See :meth:`enable_lazy_delivery`.
        self._lazy_sink = None

    def enable_lazy_delivery(self, sink) -> None:
        """Deliver into *sink* lazily instead of via delivery events.

        Each frame's delivery is recorded with
        ``sink.receive_later(finish + propagation, packet)`` — zero
        simulator events on the delivery path; the sink folds the
        tallies in at its next observation. Only valid when nothing
        else observes deliveries (the NIC pipeline checks: receiver is
        the sink itself, no ``on_delivery`` hook, no tracing).
        """
        self._lazy_sink = sink

    def serialization_time(self, packet: Packet) -> float:
        """Seconds to clock one frame (with wire overhead) onto the link."""
        return wire_bits(packet.size) / self.rate_bps

    def busy_until(self) -> float:
        """Absolute time the wire becomes free."""
        return self._busy_until

    @property
    def is_busy(self) -> bool:
        """True while a frame is currently being serialised."""
        return self._busy_until > self.sim.now

    def send(self, packet: Packet, now: Optional[float] = None) -> float:
        """Serialise *packet* and schedule its delivery.

        Returns the absolute time serialisation will finish. Frames
        queue behind any in-flight frame, preserving FIFO order.
        *now* overrides the simulator clock for callers replaying
        deferred work at its original (virtual) timestamp — the fluid
        lane sends at the packet's true completion time even though the
        wall clock has already moved past it.
        """
        if now is None:
            now = self.sim._now
        start = max(now, self._busy_until)
        finish = start + self.serialization_time(packet)
        self._busy_until = finish
        packet.tx_start = start
        self.frames_sent += 1
        self.bytes_sent += packet.size
        sink = self._lazy_sink
        if sink is not None:
            sink.receive_later(finish + self.propagation_delay, packet)
        else:
            self.sim.schedule_at(finish + self.propagation_delay, self._deliver, packet)
        return finish

    def send_batch(self, packets, now: Optional[float] = None) -> list:
        """Serialise a burst back-to-back; returns each finish time.

        Arithmetic and delivery order are identical to calling
        :meth:`send` once per frame; the delivery events are inserted
        through the event queue's batched push instead of one
        ``schedule_at`` per frame. *now* as in :meth:`send`.
        """
        sim = self.sim
        busy = self._busy_until
        if now is None:
            now = sim._now
        if busy < now:
            busy = now
        prop = self.propagation_delay
        sink = self._lazy_sink
        finishes = []
        entries = []
        bytes_sent = 0
        for packet in packets:
            start = busy
            busy = start + self.serialization_time(packet)
            packet.tx_start = start
            bytes_sent += packet.size
            finishes.append(busy)
            if sink is not None:
                sink.receive_later(busy + prop, packet)
            else:
                entries.append((busy + prop, self._deliver, (packet,)))
        self._busy_until = busy
        self.frames_sent += len(finishes)
        self.bytes_sent += bytes_sent
        if entries:
            sim._queue.push_batch(entries)
        return finishes

    def _deliver(self, packet: Packet) -> None:
        packet.delivered_at = self.sim.now
        if self.receiver is not None:
            self.receiver(packet)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``[0, elapsed]`` the wire spent serialising.

        The byte/frame counters are bumped at *schedule* time (batched
        egress computes a whole backlog's serialisation windows the
        moment frames are accepted), so mid-run the implied wire time
        can include serialisation that finishes after *elapsed*. That
        committed backlog is contiguous — each queued frame starts
        exactly when its predecessor finishes — so the part falling
        outside the window is exactly ``busy_until - elapsed`` and is
        subtracted rather than hidden behind a ``min(1.0, ...)`` clamp.
        Once ``elapsed >= busy_until`` the correction vanishes and the
        value matches the historical post-run formula exactly.
        """
        if elapsed <= 0:
            return 0.0
        if self.frames_sent == 0:
            return 0.0
        wire = self._wire_time()
        overhang = self._busy_until - elapsed
        if overhang > 0.0:
            wire -= overhang
            if wire <= 0.0:
                return 0.0
        return min(1.0, wire / elapsed)

    def _wire_time(self) -> float:
        # Total serialisation time implied by the byte/frame counters.
        return (self.bytes_sent * 8 + self.frames_sent * (wire_bits(0))) / self.rate_bps
