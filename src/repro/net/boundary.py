"""Boundary endpoints for cross-shard links.

When a topology is partitioned across shard workers (DESIGN.md §11),
a :class:`~repro.net.link.Link` whose receiver lives in another
simulation domain cannot deliver locally. Instead its lazy-delivery
slot is pointed at a :class:`BoundaryOutbox`: every frame the wire
finishes serialising is recorded as a compact, picklable *wire record*
instead of a delivery event. At each window barrier the records are
drained, routed, and spliced into the destination domain's event queue
through :class:`RemoteIngress` as one :class:`~repro.sim.events.EventRun`
train — the same run-lane format burst ingress uses, so a whole
window's worth of remote arrivals costs a single heap slot.

The outbox duck-types ``PacketSink.receive_later(time, packet)``,
which is the only method :meth:`Link.send`/:meth:`Link.send_batch`
call on a lazy sink — so the boundary route works on both the eventful
and the batched egress paths with no link changes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .flow import FiveTuple
from .packet import Packet

__all__ = ["WireRecord", "BoundaryOutbox", "RemoteIngress", "WIRE_FLOW"]

#: A frame on the cross-shard wire:
#: ``(arrival_time, seq, size, created_at, app, vf_index)``.
#: Plain tuples pickle fast and compactly over the barrier pipes.
WireRecord = Tuple[float, int, int, float, str, int]

#: Placeholder five-tuple for frames rebuilt at a remote ingress. The
#: sink accounts by ``packet.app``, never by flow, so one shared
#: constant avoids shipping (and re-interning) five-tuples per frame.
WIRE_FLOW = FiveTuple("0.0.0.0", "0.0.0.0", 0, 0)


class BoundaryOutbox:
    """The sending end of a cross-domain wire.

    Installed with ``link.enable_lazy_delivery(outbox)``; collects one
    :data:`WireRecord` per frame, in wire order (the serialising link
    commits non-decreasing finish times).
    """

    __slots__ = ("src", "dst", "records")

    def __init__(self, src: str, dst: str):
        #: Source / destination domain names (domain == NIC).
        self.src = src
        self.dst = dst
        self.records: List[WireRecord] = []

    def receive_later(self, time: float, packet: Packet) -> None:
        """Record one frame's arrival at the remote domain (lazy-sink
        protocol — called by the link with the absolute arrival time)."""
        self.records.append(
            (time, packet.seq, packet.size, packet.created_at, packet.app, packet.vf_index)
        )

    def drain(self) -> List[WireRecord]:
        """Take every record accumulated since the last drain."""
        records = self.records
        self.records = []
        return records


class RemoteIngress:
    """The receiving end: splices wire records into a domain's queue.

    Each window barrier injects the (already globally sorted) train of
    remote arrivals with one ``push_run`` — a single heap slot whose
    items interleave with local events exactly as individual deliveries
    would. Delivery rebuilds a lightweight :class:`Packet` and feeds it
    through the domain's receive callable after folding the sink's
    lazy pending (so per-app accounting observes non-decreasing times).

    When the destination domain's NIC runs the fluid fast-forward lane
    (DESIGN.md §7), the train is merged into that pipeline's shared
    ingress run instead (``EventQueue.merge_run``): successive barrier
    trains and local burst trains then share ONE run, so a window's
    remote arrivals stop shredding the local trains into per-item
    drain segments. Item (time, seq) order — and hence behavior — is
    identical either way (both routes draw seqs from the shared kernel
    counter at injection time); only the executed-event count differs.
    Every other destination shape — software port, fluid disabled,
    recording wrappers — conservatively keeps the per-packet
    ``push_run`` route.
    """

    __slots__ = ("sim", "sink", "receive", "pipeline")

    def __init__(self, sim, sink, receive: Callable[[Packet], None],
                 pipeline=None):
        self.sim = sim
        self.sink = sink
        #: The domain's delivery callable — ``sink.receive`` or a
        #: recording wrapper around it (determinism suite).
        self.receive = receive
        #: The destination domain's :class:`NicPipeline`, or None for
        #: software-port domains. Only consulted for its fluid lane.
        self.pipeline = pipeline

    def inject(self, barrier: float, records: Sequence[WireRecord]) -> None:
        """Splice *records* (sorted by arrival) in at a window barrier.

        Arrival times are clamped to ``>= barrier``: conservative
        lookahead guarantees every arrival lands in a later window, but
        a float sum can land one ulp short of the boundary, which
        ``push_run`` (correctly) rejects as scheduling into the past.
        The clamp is applied identically in single- and multi-shard
        runs, so it never breaks bit-identity.
        """
        if not records:
            return
        deliver = self._deliver
        entries = [
            (time if time > barrier else barrier, deliver, rec)
            for rec in records
            for time in (rec[0],)
        ]
        pipeline = self.pipeline
        if pipeline is not None and pipeline._fluid is not None:
            # Fluid destination: one shared run for all ingress trains.
            self.sim._queue.merge_run(pipeline.ingress_run(), entries)
        else:
            self.sim._queue.push_run(entries)

    def _deliver(self, time: float, seq: int, size: int, created_at: float,
                 app: str, vf_index: int) -> None:
        packet = Packet(seq, size, WIRE_FLOW, created_at, app=app, vf_index=vf_index)
        packet.delivered_at = self.sim._now
        self.sink._fold()
        self.receive(packet)

    def fold_direct(self, records: Sequence[WireRecord], until: float) -> None:
        """Deliver *records* by direct accounting, bypassing the queue.

        The zero-lookahead fallback (ShardPlan degraded mode): domains
        run their full horizon sequentially, then cross-domain frames
        with arrival ``<= until`` are folded straight into the sink in
        global wire order. Rate bins are index-addressed
        (:class:`~repro.stats.timeseries.RateSeries`), so accounting
        after the local stream is safe for every tallied quantity
        except the raw per-delivery *delay sample order* — which is why
        the planner warns rather than doing this silently.
        """
        sink = self.sink
        sink._fold(until=until)
        for time, seq, size, created_at, app, vf_index in records:
            if time > until:
                continue
            packet = Packet(seq, size, WIRE_FLOW, created_at, app=app, vf_index=vf_index)
            packet.delivered_at = time
            sink._account(packet, time)
