"""The receiving end of the testbed.

Plays the role of the Intel X710 receiver in the paper's setup: counts
delivered frames per application/class, computes one-way delay
statistics, and (optionally) notifies a congestion-control callback so
AIMD senders learn their delivery rate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from ..stats.timeseries import RateSeries
from .packet import Packet

__all__ = ["PacketSink"]


class PacketSink:
    """Terminal packet consumer with per-app accounting.

    Parameters
    ----------
    sim: the shared simulator.
    rate_window: averaging window for per-app throughput series.
    on_delivery: optional ``callable(packet)`` invoked per delivery
        (used to drive TCP ack feedback).
    record_delays: keep every one-way delay sample (memory grows with
        traffic; disable for long stress runs).
    """

    def __init__(
        self,
        sim,
        rate_window: float = 0.1,
        on_delivery: Optional[Callable[[Packet], None]] = None,
        record_delays: bool = True,
        delay_start: float = 0.0,
    ):
        self.sim = sim
        self.on_delivery = on_delivery
        self.record_delays = record_delays
        #: Delay samples before this time are discarded (warm-up cut).
        self.delay_start = delay_start
        #: Delivered frame count per app name ('' for unnamed).
        self.packets: Dict[str, int] = defaultdict(int)
        #: Delivered bytes per app name.
        self.bytes: Dict[str, int] = defaultdict(int)
        #: Windowed throughput series per app name.
        self.rates: Dict[str, RateSeries] = {}
        #: One-way delay samples in seconds (all apps pooled).
        self.delays: List[float] = []
        #: One-way delay samples per app name.
        self.delays_by_app: Dict[str, List[float]] = defaultdict(list)
        self._rate_window = rate_window
        self.total_packets = 0
        self.total_bytes = 0
        # Observability: one identity check per delivery when off.
        tracer = sim.tracer
        self._trace = tracer if tracer.enabled else None
        if sim.metrics.enabled:
            sim.metrics.probe("sink.total_packets", lambda: self.total_packets)
            sim.metrics.probe("sink.total_bytes", lambda: self.total_bytes)
            sim.metrics.probe("sink.packets_by_app", lambda: dict(self.packets))
            sim.metrics.probe("sink.bytes_by_app", lambda: dict(self.bytes))

    def receive(self, packet: Packet) -> None:
        """Account one delivered frame. Wire this to ``Link.receiver``."""
        app = packet.app
        size = packet.size
        now = self.sim._now  # hot path: one clock read per frame
        self.packets[app] += 1
        self.bytes[app] += size
        self.total_packets += 1
        self.total_bytes += size
        series = self.rates.get(app)
        if series is None:
            series = RateSeries(window=self._rate_window)
            self.rates[app] = series
        series.add(now, size * 8)
        if self.record_delays and packet.created_at >= 0 and now >= self.delay_start:
            delay = now - packet.created_at
            self.delays.append(delay)
            self.delays_by_app[app].append(delay)
        if self._trace is not None:
            self._trace.emit(
                now, "net.sink", "deliver",
                app=app, size=size,
                delay=(now - packet.created_at) if packet.created_at >= 0 else None,
            )
        if self.on_delivery is not None:
            self.on_delivery(packet)

    def throughput_bps(self, app: str, elapsed: float) -> float:
        """Average delivered rate for *app* over *elapsed* seconds."""
        if elapsed <= 0:
            return 0.0
        return self.bytes[app] * 8 / elapsed

    def total_throughput_bps(self, elapsed: float) -> float:
        """Average delivered rate across all apps."""
        if elapsed <= 0:
            return 0.0
        return self.total_bytes * 8 / elapsed
