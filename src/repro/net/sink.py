"""The receiving end of the testbed.

Plays the role of the Intel X710 receiver in the paper's setup: counts
delivered frames per application/class, computes one-way delay
statistics, and (optionally) notifies a congestion-control callback so
AIMD senders learn their delivery rate.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..stats.latency import LatencySummary, summarize_latencies
from ..stats.sketch import QuantileSketch, WindowedRateSketch
from ..stats.timeseries import RateSeries
from .packet import Packet

__all__ = ["PacketSink"]


class PacketSink:
    """Terminal packet consumer with per-app accounting.

    Two delivery routes feed the same tallies:

    * :meth:`receive` — the eventful route (``Link.receiver``): one
      link-delivery event per frame, accounted immediately.
    * :meth:`receive_later` — the lazy route (burst-ingress fast path,
      DESIGN.md §7): the link records ``(delivery_time, packet)`` with
      *no* simulator event, and the tallies are folded in at the next
      observation of any public counter, using each frame's recorded
      delivery time. Mirrors ``BufferPool.release_at``. Only wired up
      when nothing can observe the difference (no ``on_delivery``
      hook, no tracing — the pipeline decides).

    Parameters
    ----------
    sim: the shared simulator.
    rate_window: averaging window for per-app throughput series.
    on_delivery: optional ``callable(packet)`` invoked per delivery
        (used to drive TCP ack feedback).
    record_delays: keep every one-way delay sample (memory grows with
        traffic; disable for long stress runs).
    stats_mode: ``"exact"`` (default — a list per delay sample, a rate
        bin per elapsed window) or ``"sketch"`` (constant memory in
        the packet count and run length: delays stream into
        :class:`~repro.stats.sketch.QuantileSketch` instances with
        *sketch_error* relative quantile accuracy, rates into
        :class:`~repro.stats.sketch.WindowedRateSketch` rings). Packet
        and byte tallies stay exact either way; :meth:`latency_summary`
        works in both modes.
    sketch_error: relative quantile error ε of sketch-mode delays.
    fold_interval: if set, lazily-recorded deliveries are folded into
        the tallies at least this often (one kernel event per interval
        while traffic flows, none when drained). Without it the lazy
        route buffers every ``(time, packet)`` pair until the *next
        observation* — correct, but a run that never looks at the sink
        mid-flight holds its entire delivered traffic in memory. The
        megaflow bench sets this to keep peak RSS constant in the
        packet count.
    """

    def __init__(
        self,
        sim,
        rate_window: float = 0.1,
        on_delivery: Optional[Callable[[Packet], None]] = None,
        record_delays: bool = True,
        delay_start: float = 0.0,
        stats_mode: str = "exact",
        sketch_error: float = 0.005,
        fold_interval: Optional[float] = None,
    ):
        if fold_interval is not None and fold_interval <= 0:
            raise ValueError(
                f"fold_interval must be positive, got {fold_interval}"
            )
        if stats_mode not in ("exact", "sketch"):
            raise ValueError(
                f"stats_mode must be 'exact' or 'sketch', got {stats_mode!r}"
            )
        self.sim = sim
        self.on_delivery = on_delivery
        self.record_delays = record_delays
        self.stats_mode = stats_mode
        self.sketch_error = sketch_error
        #: Delay samples before this time are discarded (warm-up cut).
        self.delay_start = delay_start
        self._packets: Dict[str, int] = defaultdict(int)
        self._bytes: Dict[str, int] = defaultdict(int)
        self._rates: Dict[str, RateSeries] = {}
        self._delays: List[float] = []
        self._delays_by_app: Dict[str, List[float]] = defaultdict(list)
        self._sketch = stats_mode == "sketch"
        self._delay_sketch: Optional[QuantileSketch] = None
        self._sketches_by_app: Dict[str, QuantileSketch] = {}
        if self._sketch:
            self._delay_sketch = QuantileSketch(relative_error=sketch_error)
        self._rate_window = rate_window
        self._total_packets = 0
        self._total_bytes = 0
        #: Lazily-recorded deliveries: (delivery_time, packet), times
        #: non-decreasing (one link feeds the lazy route, FIFO wire).
        self._pending: Deque[Tuple[float, Packet]] = deque()
        self._drain_hook_registered = False
        self._fold_interval = fold_interval
        self._fold_armed = False
        # Observability: one identity check per delivery when off.
        tracer = sim.tracer
        self._trace = tracer if tracer.enabled else None
        if sim.metrics.enabled:
            sim.metrics.probe("sink.total_packets", lambda: self.total_packets)
            sim.metrics.probe("sink.total_bytes", lambda: self.total_bytes)
            sim.metrics.probe("sink.packets_by_app", lambda: dict(self.packets))
            sim.metrics.probe("sink.bytes_by_app", lambda: dict(self.bytes))

    # ------------------------------------------------------------------
    # delivery routes
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Account one delivered frame. Wire this to ``Link.receiver``."""
        self._account(packet, self.sim._now)

    def receive_later(self, time: float, packet: Packet) -> None:
        """Record a delivery at absolute *time*, folded in on observation.

        Times must be non-decreasing across calls (the serialising link
        guarantees this). The simulator learns about pending folds via
        a drain hook so an open-ended ``run()`` still ends at the last
        delivery time.
        """
        if not self._drain_hook_registered:
            self._drain_hook_registered = True
            self.sim.add_drain_hook(
                lambda: self._pending[-1][0] if self._pending else None
            )
        if self._fold_interval is not None and not self._fold_armed:
            # Re-armed on the first pending delivery after a drain, so
            # the periodic fold never keeps an otherwise-empty event
            # queue alive.
            self._fold_armed = True
            self.sim.schedule(self._fold_interval, self._periodic_fold)
        self._pending.append((time, packet))

    def _periodic_fold(self) -> None:
        self._fold()
        if self._pending:
            self.sim.schedule(self._fold_interval, self._periodic_fold)
        else:
            self._fold_armed = False

    def _account(self, packet: Packet, now: float) -> None:
        app = packet.app
        size = packet.size
        self._packets[app] += 1
        self._bytes[app] += size
        self._total_packets += 1
        self._total_bytes += size
        series = self._rates.get(app)
        if series is None:
            series = (
                WindowedRateSketch(window=self._rate_window)
                if self._sketch
                else RateSeries(window=self._rate_window)
            )
            self._rates[app] = series
        series.add(now, size * 8)
        if self.record_delays and packet.created_at >= 0 and now >= self.delay_start:
            delay = now - packet.created_at
            if self._sketch:
                self._delay_sketch.add(delay)
                sketch = self._sketches_by_app.get(app)
                if sketch is None:
                    sketch = self._sketches_by_app[app] = QuantileSketch(
                        relative_error=self.sketch_error
                    )
                sketch.add(delay)
            else:
                self._delays.append(delay)
                self._delays_by_app[app].append(delay)
        if self._trace is not None:
            self._trace.emit(
                now, "net.sink", "deliver",
                app=app, size=size,
                delay=(now - packet.created_at) if packet.created_at >= 0 else None,
            )
        if self.on_delivery is not None:
            self.on_delivery(packet)

    def _fold(self, until: Optional[float] = None) -> None:
        """Account every pending lazy delivery with time <= *until*.

        ``until=None`` folds up to the simulator clock (the matured
        set). An explicit later bound additionally folds deliveries
        whose wire schedule is already committed but whose instant lies
        past a stale ``sim.now`` — the window-accounting contract of
        :meth:`throughput_bps`.
        """
        pending = self._pending
        if not pending:
            return
        now = self.sim._now
        if until is not None and until > now:
            now = until
        account = self._account
        while pending and pending[0][0] <= now:
            time, packet = pending.popleft()
            packet.delivered_at = time
            account(packet, time)

    # ------------------------------------------------------------------
    # observed tallies (fold-first)
    # ------------------------------------------------------------------
    @property
    def packets(self) -> Dict[str, int]:
        """Delivered frame count per app name ('' for unnamed)."""
        self._fold()
        return self._packets

    @property
    def bytes(self) -> Dict[str, int]:
        """Delivered bytes per app name."""
        self._fold()
        return self._bytes

    @property
    def rates(self) -> Dict[str, RateSeries]:
        """Windowed throughput series per app name."""
        self._fold()
        return self._rates

    @property
    def delays(self) -> List[float]:
        """One-way delay samples in seconds (all apps pooled).

        Exact mode only — sketch mode keeps no sample list; use
        :meth:`latency_summary` or :meth:`delay_sketch` instead.
        """
        if self._sketch:
            raise ValueError(
                "sketch-mode sink keeps no delay sample list; "
                "use latency_summary() / delay_sketch()"
            )
        self._fold()
        return self._delays

    @property
    def delays_by_app(self) -> Dict[str, List[float]]:
        """One-way delay samples per app name (exact mode only)."""
        if self._sketch:
            raise ValueError(
                "sketch-mode sink keeps no delay sample lists; "
                "use latency_summary(app) / delay_sketch(app)"
            )
        self._fold()
        return self._delays_by_app

    def delay_sketch(self, app: Optional[str] = None) -> QuantileSketch:
        """The streaming delay sketch (sketch mode only): pooled, or
        one app's. The sketch's ``bin_count`` is the sink's entire
        variable delay-stats footprint — the megaflow bench asserts it
        stays bounded while millions of samples stream through."""
        if not self._sketch:
            raise ValueError("delay_sketch() requires stats_mode='sketch'")
        self._fold()
        if app is None:
            return self._delay_sketch
        sketch = self._sketches_by_app.get(app)
        if sketch is None:
            sketch = self._sketches_by_app[app] = QuantileSketch(
                relative_error=self.sketch_error
            )
        return sketch

    def latency_summary(self, app: Optional[str] = None) -> LatencySummary:
        """One-way delay statistics, pooled or per app — mode-blind.

        Exact mode summarises the kept sample list (one sort); sketch
        mode reads the streaming sketch (count/mean/min/max/jitter
        exact, p50/p99 within ``sketch_error`` relative error).
        """
        self._fold()
        if self._sketch:
            if app is None:
                return self._delay_sketch.summary()
            sketch = self._sketches_by_app.get(app)
            return sketch.summary() if sketch is not None else LatencySummary(
                0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
            )
        samples = self._delays if app is None else self._delays_by_app.get(app, [])
        return summarize_latencies(samples)

    @property
    def total_packets(self) -> int:
        self._fold()
        return self._total_packets

    @property
    def total_bytes(self) -> int:
        self._fold()
        return self._total_bytes

    def throughput_bps(self, app: str, elapsed: float) -> float:
        """Average delivered rate for *app* over ``[0, elapsed]``.

        Folds lazy deliveries up to *elapsed* explicitly: called with a
        stale ``sim.now`` (a paused run, a bound past the clock), every
        delivery already committed to the wire inside the window is
        counted — the eventful route's value at *elapsed* — instead of
        silently stopping at whatever had matured.
        """
        if elapsed <= 0:
            return 0.0
        self._fold(until=elapsed)
        return self._bytes[app] * 8 / elapsed

    def total_throughput_bps(self, elapsed: float) -> float:
        """Average delivered rate across all apps over ``[0, elapsed]``."""
        if elapsed <= 0:
            return 0.0
        self._fold(until=elapsed)
        return self._total_bytes * 8 / elapsed
