"""The packet model.

A :class:`Packet` is a lightweight record of an L2 frame travelling
from a host application, through the SmartNIC (or a software
scheduler), over the wire, to the receiver. It carries the metadata the
paper stores in the NFP packet buffer: the QoS *hierarchy class label*
and *borrowing class label* attached by the labeling function
(Section IV-B), plus timestamps for latency accounting.

Packets use ``__slots__`` — experiments create millions of them.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from .flow import FiveTuple

__all__ = ["Packet", "PacketFactory", "DropReason"]


class DropReason(enum.Enum):
    """Why a packet was discarded.

    ``SCHED_RED`` is FlowValve's specialized tail drop — the meter
    returned red and no lender class had shadow tokens (Algorithm 1
    line 16). The other reasons come from the substrate models.
    """

    #: Meter red at the leaf class and borrowing failed (FlowValve).
    SCHED_RED = "sched_red"
    #: Ordinary tail drop: a FIFO/ring was full.
    QUEUE_FULL = "queue_full"
    #: The NIC buffer pool had no free buffer for the arrival.
    NO_BUFFER = "no_buffer"
    #: A software scheduler's class queue overflowed.
    CLASS_QUEUE_FULL = "class_queue_full"
    #: No filter rule matched and the policy default is drop.
    UNCLASSIFIED = "unclassified"
    #: Policer/shaper drop inside a baseline scheduler.
    POLICER = "policer"

    # Members are singletons and Enum equality is identity, so the
    # identity hash is consistent — and C-speed, unlike Enum.__hash__,
    # which is a Python-level call on every per-drop counter update.
    __hash__ = object.__hash__


class Packet:
    """One L2 frame plus simulation metadata.

    Parameters
    ----------
    seq:
        Globally unique sequence number (assigned by the factory).
    size:
        L2 frame size in bytes, **including** the 4-byte CRC — matching
        how the paper quotes packet sizes (64 B ... 1518 B). Wire-level
        preamble/IFG overhead is added by the link model, not stored.
    flow:
        The five-tuple this frame belongs to.
    created_at:
        Simulation time the sending application emitted the frame.
    app:
        Name of the producing application/class (``"KVS"``, ``"ML"``...);
        purely for accounting and trace readability.
    vf_index:
        SR-IOV virtual function the frame entered the NIC through.
    """

    __slots__ = (
        "seq",
        "size",
        "flow",
        "app",
        "vf_index",
        "created_at",
        "nic_arrival",
        "tx_start",
        "delivered_at",
        "hierarchy_label",
        "borrow_label",
        "dropped",
        "drop_reason",
        "conn_id",
    )

    def __init__(
        self,
        seq: int,
        size: int,
        flow: FiveTuple,
        created_at: float,
        app: str = "",
        vf_index: int = 0,
        conn_id: int = -1,
    ):
        self.seq = seq
        self.size = size
        self.flow = flow
        self.app = app
        self.vf_index = vf_index
        self.conn_id = conn_id
        self.created_at = created_at
        #: Time the NIC (or software scheduler) first saw the frame.
        self.nic_arrival: float = -1.0
        #: Time the MAC started serialising the frame onto the wire.
        self.tx_start: float = -1.0
        #: Time the receiver finished receiving the frame.
        self.delivered_at: float = -1.0
        #: QoS hierarchy class label: root-to-leaf tuple of class ids,
        #: e.g. ``("S0", "S1", "S2", "ML")``. Set by the labeling function.
        self.hierarchy_label: Tuple[str, ...] = ()
        #: QoS borrowing class label: lender class ids in query order.
        self.borrow_label: Tuple[str, ...] = ()
        self.dropped = False
        self.drop_reason: Optional[DropReason] = None

    # ------------------------------------------------------------------
    @property
    def leaf_class(self) -> str:
        """Leaf traffic class id, or ``""`` when unlabelled."""
        return self.hierarchy_label[-1] if self.hierarchy_label else ""

    @property
    def one_way_delay(self) -> float:
        """Creation-to-delivery latency; negative until delivered."""
        if self.delivered_at < 0:
            return -1.0
        return self.delivered_at - self.created_at

    def mark_dropped(self, reason: DropReason) -> None:
        """Record that the frame was discarded and why."""
        self.dropped = True
        self.drop_reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = "/".join(self.hierarchy_label) or "-"
        return f"<Packet #{self.seq} {self.size}B app={self.app or '-'} label={label}>"


class PacketFactory:
    """Mints packets with unique, monotonically increasing sequence
    numbers.

    One factory per experiment keeps sequence numbers globally unique,
    which the NIC reorder system relies on. Sharded topologies give
    each domain's factory a disjoint ``start_seq`` bank so uniqueness
    holds across every domain without coordination.
    """

    def __init__(self, start_seq: int = 0) -> None:
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq}")
        self._next_seq = start_seq
        #: Total packets created (sequence numbers start at
        #: ``start_seq`` and advance by one per packet).
        self.created = 0

    def make(
        self,
        size: int,
        flow: FiveTuple,
        created_at: float,
        app: str = "",
        vf_index: int = 0,
        conn_id: int = -1,
    ) -> Packet:
        """Create one packet; arguments mirror :class:`Packet`."""
        packet = Packet(
            self._next_seq, size, flow, created_at, app=app, vf_index=vf_index, conn_id=conn_id
        )
        self._next_seq += 1
        self.created += 1
        return packet
