"""Flows and five-tuples.

Filter rules in :mod:`repro.tc` classify packets on their five-tuple,
and the FlowValve exact-match flow cache (:mod:`repro.core.flow_cache`)
memoises that classification per flow — exactly the Netronome EMC the
paper's Observation 2 describes.
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional

__all__ = ["FiveTuple", "Flow", "FlowTable"]

#: Conventional protocol numbers used by the workloads.
PROTO_TCP = 6
PROTO_UDP = 17


class FiveTuple(NamedTuple):
    """The classic connection identifier.

    Addresses are plain strings (``"10.0.0.1"``) — the model never
    routes, it only matches, so structured address types would add
    weight without behaviour.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: int = PROTO_TCP

    def reversed(self) -> "FiveTuple":
        """The reverse-direction tuple (for ACK paths)."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)

    def __str__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, str(self.proto))
        return f"{proto}:{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"


class Flow:
    """Aggregated per-flow accounting.

    Tracks packet/byte counts and the last-seen timestamp; the flow
    table uses the timestamp to expire idle entries, mirroring the
    expired-status removal the scheduling function performs
    (Subprocedure 3).
    """

    __slots__ = ("key", "app", "packets", "bytes", "drops", "first_seen", "last_seen")

    def __init__(self, key: FiveTuple, app: str = "", now: float = 0.0):
        self.key = key
        self.app = app
        self.packets = 0
        self.bytes = 0
        self.drops = 0
        self.first_seen = now
        self.last_seen = now

    def account(self, size: int, now: float, dropped: bool = False) -> None:
        """Record one packet of *size* bytes observed at *now*."""
        self.packets += 1
        self.bytes += size
        if dropped:
            self.drops += 1
        self.last_seen = now

    def idle_for(self, now: float) -> float:
        """Seconds since the last packet of this flow."""
        return now - self.last_seen


class FlowTable:
    """A dictionary of :class:`Flow` keyed by five-tuple, with expiry.

    Parameters
    ----------
    idle_timeout:
        Flows idle longer than this are removed by :meth:`expire`.
    """

    def __init__(self, idle_timeout: float = 5.0):
        self.idle_timeout = idle_timeout
        self._flows: Dict[FiveTuple, Flow] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def get(self, key: FiveTuple) -> Optional[Flow]:
        """The flow for *key*, or ``None`` if not tracked."""
        return self._flows.get(key)

    def observe(self, key: FiveTuple, size: int, now: float, app: str = "", dropped: bool = False) -> Flow:
        """Account one packet, creating the flow entry on first sight."""
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key, app=app, now=now)
            self._flows[key] = flow
        flow.account(size, now, dropped=dropped)
        return flow

    def expire(self, now: float) -> int:
        """Remove idle flows; returns how many were evicted."""
        stale = [key for key, flow in self._flows.items() if flow.idle_for(now) > self.idle_timeout]
        for key in stale:
            del self._flows[key]
        return len(stale)
