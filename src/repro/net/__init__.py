"""Network primitives: packets, flows, links, and sinks.

These are the nouns exchanged between the host model
(:mod:`repro.host`), the SmartNIC model (:mod:`repro.nic`), and the
schedulers (:mod:`repro.core`, :mod:`repro.baselines`).
"""

from .packet import Packet, PacketFactory, DropReason
from .flow import FiveTuple, Flow, FlowTable
from .link import Link
from .sink import PacketSink
from .boundary import BoundaryOutbox, RemoteIngress, WireRecord

__all__ = [
    "Packet",
    "PacketFactory",
    "DropReason",
    "FiveTuple",
    "Flow",
    "FlowTable",
    "Link",
    "PacketSink",
    "BoundaryOutbox",
    "RemoteIngress",
    "WireRecord",
]
