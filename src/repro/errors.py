"""Exception hierarchy for the FlowValve reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class. Subclasses are grouped by subsystem:
simulation kernel, configuration/policy front end, NIC model, and
scheduling runtime.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ProcessError",
    "ConfigError",
    "PolicyError",
    "ParseError",
    "ValidationError",
    "NicError",
    "BufferExhausted",
    "SchedulingError",
    "UnknownClassError",
    "CapacityError",
    "CampaignError",
    "TransientError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was misused.

    Examples: scheduling an event in the past, running a simulator that
    has already finished, or re-entrant ``run()`` calls.
    """


class ProcessError(SimulationError):
    """A simulation process (generator) misbehaved.

    Raised when a process yields an object the kernel does not
    understand, or when a dead process is resumed.
    """


class ConfigError(ReproError):
    """Base class for configuration problems (policies, topology)."""


class PolicyError(ConfigError):
    """A QoS policy is structurally invalid.

    Examples: weights of sibling classes that do not sum to a positive
    value, a guaranteed rate above the parent ceiling, or a borrowing
    label naming a class outside the scheduling tree.
    """


class ParseError(ConfigError):
    """An ``fv``/``tc`` command line could not be parsed."""

    def __init__(self, message: str, command: str = "", position: int = -1):
        super().__init__(message)
        #: The offending command string, if known.
        self.command = command
        #: Token index at which parsing failed, ``-1`` if unknown.
        self.position = position


class ValidationError(ConfigError):
    """A structurally parseable config failed semantic validation."""


class NicError(ReproError):
    """Base class for errors in the SmartNIC hardware model."""


class BufferExhausted(NicError):
    """The NIC buffer pool has no free packet buffers.

    The real NFP drops arriving packets when the MU buffer lists are
    empty; the model raises this only for *internal* misuse (double
    free, freeing an unknown handle). Ordinary exhaustion is reported as
    a packet drop, not an exception.
    """


class SchedulingError(ReproError):
    """The scheduling runtime was driven with inconsistent state."""


class UnknownClassError(SchedulingError):
    """A QoS label referenced a class id missing from the tree."""

    def __init__(self, class_id: str):
        super().__init__(f"unknown traffic class: {class_id!r}")
        self.class_id = class_id


class CapacityError(ReproError):
    """A finite resource (ring, queue, pool) was configured with a
    non-positive capacity or asked to exceed a hard limit."""


class CampaignError(ReproError):
    """The campaign layer was misconfigured or a spec misbehaved.

    Examples: an unknown spec name, a duplicate registration, or a
    result that violates the spec's declared schema.
    """


class TransientError(ReproError):
    """A task failure the campaign runner may retry.

    Experiment entry points (or the harness around them) raise this for
    conditions expected to clear on a re-run — a busy resource, a
    temporary file conflict. The runner retries with backoff up to its
    ``retries`` budget; any other exception fails the task immediately.
    """
