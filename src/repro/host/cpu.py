"""Host CPU cores with busy-time accounting.

The model does not simulate instruction execution on the host — it
charges *costs*: each send-path operation (syscall/driver work, qdisc
enqueue, scheduler polling) adds busy seconds to the core it runs on.
A core can be oversubscribed in accounting terms; ``utilization`` then
saturates at 1.0 and :meth:`HostCpu.saturated` reports it, which is the
model's signal that a software scheduler has run out of CPU (the
paper's Fig. 13 cores column).
"""

from __future__ import annotations

from typing import Dict, List

from ..stats.cpu import CpuReport

__all__ = ["CpuCore", "HostCpu"]


class CpuCore:
    """One host core: a named ledger of busy time."""

    def __init__(self, sim, core_id: int, report: CpuReport):
        self.sim = sim
        self.core_id = core_id
        self._usage = report.core(core_id)
        self._started = sim.now

    def charge(self, activity: str, seconds: float) -> None:
        """Account *seconds* of busy time under *activity*."""
        self._usage.charge(activity, seconds)

    def utilization(self) -> float:
        """Busy fraction since this core was created."""
        elapsed = self.sim.now - self._started
        return self._usage.utilization(elapsed)

    def busy_seconds(self) -> float:
        return self._usage.busy_seconds()


class HostCpu:
    """A socket of cores plus the shared report."""

    def __init__(self, sim, n_cores: int = 8, freq_hz: float = 2.3e9):
        self.sim = sim
        self.freq_hz = freq_hz
        self.report = CpuReport()
        self._cores: List[CpuCore] = [CpuCore(sim, i, self.report) for i in range(n_cores)]

    def __len__(self) -> int:
        return len(self._cores)

    def core(self, index: int) -> CpuCore:
        """Core by index; raises ``IndexError`` beyond the socket."""
        return self._cores[index]

    def seconds(self, cycles: float) -> float:
        """Convert host cycles to seconds."""
        return cycles / self.freq_hz

    def utilizations(self) -> Dict[int, float]:
        """Per-core busy fractions."""
        return {core.core_id: core.utilization() for core in self._cores}

    def saturated(self, threshold: float = 0.95) -> List[int]:
        """Cores whose accounted busy time exceeds *threshold*."""
        return [c.core_id for c in self._cores if c.utilization() >= threshold]

    def scheduler_core_equivalents(self, elapsed: float, prefix: str = "sched") -> float:
        """Cores' worth of time spent in scheduler activities — the
        quantity FlowValve saves by offloading."""
        return self.report.core_equivalents(elapsed, prefix)
