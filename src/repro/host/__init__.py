"""End-host model: CPU cores, SR-IOV virtual functions, AIMD TCP
connections, and workload drivers.

Plays the role of the paper's testbed host (8-core 2.3 GHz, DPDK or
kernel drivers, iperf3/mTCP traffic tools): applications pinned to
cores send TCP traffic into either the SmartNIC pipeline (FlowValve)
or a software scheduler (HTB / DPDK QoS), and every CPU cycle spent on
the send path is charged to a core ledger so the §V-B core-saving
claim can be measured.
"""

from .cpu import CpuCore, HostCpu
from .tcp import AimdConnection, TcpParams, TcpRegistry
from .traffic import (
    DemandSchedule,
    FixedRateSender,
    TcpApp,
    propagate_next_change,
    windows,
)
from .vf import VirtualFunction
from .workload_gen import TraceWorkload, WorkloadProfile, WORKLOAD_PRESETS

__all__ = [
    "CpuCore",
    "HostCpu",
    "AimdConnection",
    "TcpParams",
    "TcpRegistry",
    "DemandSchedule",
    "FixedRateSender",
    "TcpApp",
    "propagate_next_change",
    "windows",
    "VirtualFunction",
    "TraceWorkload",
    "WorkloadProfile",
    "WORKLOAD_PRESETS",
]
