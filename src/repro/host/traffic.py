"""Workload drivers: demand schedules, TCP applications, CBR senders.

These stand in for the paper's traffic tools — iperf3 (bulk TCP),
the mTCP-based analyser (many TCP connections at line rate), and the
fixed-length full-speed packet injector used for Fig. 13.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

try:  # vectorized train precompute; pure-python fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional dep
    _np = None

from ..net.flow import FiveTuple
from ..net.packet import Packet, PacketFactory
from ..sim.process import At
from .cpu import CpuCore
from .tcp import AimdConnection, TcpParams, TcpRegistry

__all__ = ["DemandSchedule", "windows", "propagate_next_change", "TcpApp", "FixedRateSender"]

#: A demand function: time -> offered bit/s. Schedules built by
#: :func:`windows` additionally carry a ``next_change(t)`` attribute
#: returning the first boundary strictly after *t* (or ``None``), with
#: the contract that the demand is *constant* between boundaries.
DemandSchedule = Callable[[float], float]


def windows(*spans: Tuple[float, float, float]) -> DemandSchedule:
    """Build a piecewise-constant demand from (start, end, rate) spans.

    The returned callable carries a ``next_change(t)`` attribute (see
    :data:`DemandSchedule`) so senders can sleep exactly until the next
    window edge instead of polling.

    >>> d = windows((0, 15, 10e9), (15, 45, 2e9))
    >>> d(10), d(20), d(50)
    (10000000000.0, 2000000000.0, 0.0)
    >>> d.next_change(10), d.next_change(45)
    (15, None)
    """

    def demand(t: float) -> float:
        for start, end, rate in spans:
            if start <= t < end:
                return rate
        return 0.0

    boundaries = sorted({edge for start, end, _rate in spans for edge in (start, end)})

    def next_change(t: float) -> Optional[float]:
        index = bisect_right(boundaries, t)
        return boundaries[index] if index < len(boundaries) else None

    demand.next_change = next_change  # type: ignore[attr-defined]
    return demand


def propagate_next_change(derived: DemandSchedule, source: DemandSchedule) -> DemandSchedule:
    """Copy ``next_change`` from *source* onto *derived*, if present.

    For wrappers that rescale a schedule pointwise (demand splitting,
    scale-factor division): the boundaries — and the constant-between-
    boundaries contract — are unchanged by a pointwise transform.
    """
    next_change = getattr(source, "next_change", None)
    if next_change is not None:
        derived.next_change = next_change  # type: ignore[attr-defined]
    return derived


class TcpApp:
    """One application: a bundle of AIMD connections sharing a demand.

    Mirrors the paper's per-app setup — "each process runs on a
    separated CPU core and sends traffic to the SmartNIC from an
    isolated virtual function" — with 1..256 TCP connections per app
    (§V-A). The app demand is split evenly across its connections.

    Parameters
    ----------
    submit: where packets go — ``VirtualFunction.send``, a NIC
        pipeline's ``submit``, or a software scheduler's ``enqueue``.
    send_cost_cycles: host cycles charged to the app's core per packet
        (driver/syscall cost of the chosen I/O stack).
    """

    def __init__(
        self,
        sim,
        name: str,
        registry: TcpRegistry,
        factory: PacketFactory,
        submit: Callable[[Packet], bool],
        n_connections: int = 1,
        demand: Optional[DemandSchedule] = None,
        tcp_params: Optional[TcpParams] = None,
        vf_index: int = 0,
        cpu: Optional[CpuCore] = None,
        send_cost_cycles: float = 500.0,
        cpu_freq_hz: float = 2.3e9,
        dst_ip: str = "10.0.1.1",
    ):
        self.sim = sim
        self.name = name
        self.demand = demand
        self.connections: List[AimdConnection] = []
        per_conn_demand = None
        if demand is not None:
            per_conn_demand = self._split_demand(demand, n_connections)
        send_cost_seconds = send_cost_cycles / cpu_freq_hz

        def on_send_cost(size: int, _cpu=cpu, _cost=send_cost_seconds) -> None:
            if _cpu is not None:
                _cpu.charge(f"app:{name}", _cost)

        for index in range(n_connections):
            conn_id = registry.new_id()
            flow = FiveTuple(f"10.{vf_index}.0.{index + 1}", dst_ip, 40000 + index, 5001)
            conn = AimdConnection(
                sim,
                conn_id,
                flow,
                app=name,
                factory=factory,
                submit=submit,
                params=tcp_params,
                demand=per_conn_demand,
                vf_index=vf_index,
                on_send_cost=on_send_cost if cpu is not None else None,
            )
            registry.register(conn)
            self.connections.append(conn)

    @staticmethod
    def _split_demand(demand: DemandSchedule, n: int) -> DemandSchedule:
        return propagate_next_change(lambda t: demand(t) / n, demand)

    # ------------------------------------------------------------------
    @property
    def sent_packets(self) -> int:
        return sum(c.sent_packets for c in self.connections)

    @property
    def lost_packets(self) -> int:
        return sum(c.lost_packets for c in self.connections)

    def total_cwnd(self) -> float:
        """Aggregate congestion window in bytes (diagnostic)."""
        return sum(c.cwnd for c in self.connections)


class FixedRateSender:
    """A constant-bit-rate packet injector (the Fig. 13/14 stressor).

    Sends fixed-size packets at a fixed rate regardless of feedback —
    the "inject fixed-length packets at full speed" methodology. An
    optional demand schedule gates it on/off.
    """

    def __init__(
        self,
        sim,
        name: str,
        factory: PacketFactory,
        submit: Callable[[Packet], bool],
        rate_bps: float,
        packet_size: int = 1518,
        demand: Optional[DemandSchedule] = None,
        vf_index: int = 0,
        flow: Optional[FiveTuple] = None,
        cpu: Optional[CpuCore] = None,
        send_cost_seconds: float = 0.0,
        jitter: float = 0.0,
        rng=None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.name = name
        self.factory = factory
        self.submit = submit
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.demand = demand
        self.vf_index = vf_index
        self.flow = flow if flow is not None else FiveTuple(
            f"10.{vf_index}.1.1", "10.0.1.1", 40000, 5001
        )
        self.cpu = cpu
        self.send_cost_seconds = send_cost_seconds
        self.jitter = jitter
        self.rng = rng
        self._sent = 0
        self._burst_folded = 0
        self._bursts: List = []
        self._process = sim.process(self._run())

    @property
    def sent_packets(self) -> int:
        """Packets emitted up to the current simulation time.

        In burst-ingress mode emission instants are precomputed and
        handed to the pipeline as run-lane trains; emissions whose
        instant has passed count as sent even when their arrival
        callback has not executed yet (lazy, like the sink tallies).
        """
        bursts = self._bursts
        if bursts:
            now = self.sim._now
            folded = self._burst_folded
            live = []
            n_live = 0
            for rec in bursts:
                if rec.settled(now):
                    folded += rec.count_at(now)
                else:
                    live.append(rec)
                    n_live += rec.count_at(now)
            self._burst_folded = folded
            self._bursts = live
            return self._sent + folded + n_live
        return self._sent + self._burst_folded

    def _run(self):
        # One loop iteration per injected packet (or per burst) — keep
        # the per-packet state in locals instead of `self.` lookups.
        sim = self.sim
        make = self.factory.make
        submit = self.submit
        demand = self.demand
        rate_bps = self.rate_bps
        packet_size = self.packet_size
        size_bits = packet_size * 8.0
        base_interval = size_bits / rate_bps
        idle_interval = 10 * base_interval
        flow = self.flow
        name = self.name
        vf_index = self.vf_index
        cpu = self.cpu
        send_cost = self.send_cost_seconds
        cpu_tag = f"app:{name}"
        jitter = self.jitter
        uniform = self.rng.uniform if (jitter > 0 and self.rng is not None) else None
        next_change = getattr(demand, "next_change", None) if demand is not None else None
        # Burst ingress: precompute the next K emission instants with
        # the exact float-op and RNG-draw order of the per-packet loop
        # and hand them to the pipeline as a single run-lane train.
        # Engages only when the target is a burst-capable pipeline, no
        # host CPU cost is modelled, and the demand schedule (if any)
        # exposes its boundaries (constant between them).
        owner = getattr(submit, "__self__", None)
        burst_max = getattr(owner, "ingress_burst", 0) if owner is not None else 0
        submit_burst = owner.submit_burst if burst_max > 0 else None
        if (cpu is not None and send_cost > 0) or (demand is not None and next_change is None):
            submit_burst = None
        while True:
            effective_rate = rate_bps
            if demand is not None:
                demanded = demand(sim.now)
                if demanded <= 0:
                    if next_change is not None:
                        # Sleep exactly until the next demand boundary
                        # instead of polling on a 10x-interval grid (a
                        # poll-grid wake can land up to 10 intervals
                        # after a window opens).
                        boundary = next_change(sim.now)
                        if boundary is None:
                            return  # demand never reopens
                        yield At(boundary)
                    else:
                        yield idle_interval
                    continue
                effective_rate = min(rate_bps, demanded)
            interval = size_bits / effective_rate
            if submit_burst is not None:
                end = next_change(sim.now) if demand is not None else None
                # Emissions past the current run horizon must not be
                # precomputed: per-packet mode draws each gap's jitter
                # *at* the emission, so a train crossing the horizon
                # would advance the RNG past draws the per-packet world
                # never makes (events at exactly the horizon still run).
                horizon = sim._horizon
                t = sim._now
                if uniform is None and _np is not None:
                    # Jitterless trains vectorize exactly: there are no
                    # RNG draws to sequence, and ``np.add.accumulate``
                    # performs the same left-to-right float adds as the
                    # scalar loop below, so every emission instant (and
                    # the resume time) is bit-identical.
                    seq = _np.add.accumulate(
                        _np.concatenate(((t,), _np.full(burst_max, interval)))
                    )
                    bad = seq > horizon
                    if end is not None:
                        bad |= seq >= end
                    head = bad[:burst_max]
                    stop = int(head.argmax()) if head.any() else burst_max
                    times = seq[:stop].tolist()
                    t = float(seq[stop])
                else:
                    times: List[float] = []
                    append = times.append
                    while len(times) < burst_max and (end is None or t < end) and t <= horizon:
                        append(t)
                        gap = interval
                        if uniform is not None:
                            gap *= 1.0 + uniform(-jitter, jitter)
                        t = t + gap
                self._bursts.append(
                    submit_burst(make, times, packet_size, flow, name, vf_index)
                )
                yield At(t)
                continue
            packet = make(packet_size, flow, sim.now, app=name, vf_index=vf_index)
            if cpu is not None and send_cost > 0:
                cpu.charge(cpu_tag, send_cost)
            self._sent += 1
            submit(packet)
            gap = interval
            if uniform is not None:
                gap *= 1.0 + uniform(-jitter, jitter)
            yield gap
