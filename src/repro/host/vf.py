"""SR-IOV virtual functions.

Observation 3 in the paper: transmitting packets of different apps or
tenants through *separated virtual function ports* removes the central
software queue — the offloaded scheduler doesn't care how many input
queues feed it. A :class:`VirtualFunction` is that per-tenant port: a
bounded host-side queue in front of the NIC with its own statistics,
so per-tenant ingress isolation (and its failure modes, like a tenant
overflowing only its own ring) can be observed.
"""

from __future__ import annotations

from typing import Callable

from ..net.packet import DropReason, Packet

__all__ = ["VirtualFunction"]


class VirtualFunction:
    """One VF port: host ring → NIC submit, with per-VF accounting.

    The ring is modelled as a credit count between the host and the
    NIC's DMA engine: each send consumes a credit, returned when the
    NIC accepts the packet (``submit`` returning True is immediate
    acceptance into the NIC's buffer pool, so in this model the credit
    round-trips instantly unless the NIC refuses the packet).
    """

    def __init__(
        self,
        sim,
        index: int,
        nic_submit: Callable[[Packet], bool],
        ring_depth: int = 256,
    ):
        self.sim = sim
        self.index = index
        self._nic_submit = nic_submit
        self.ring_depth = ring_depth
        #: Packets handed to the NIC.
        self.sent = 0
        #: Packets the NIC refused at ingress (no buffer).
        self.rejected = 0

    def send(self, packet: Packet) -> bool:
        """Send one packet through this VF into the NIC."""
        packet.vf_index = self.index
        if self._nic_submit(packet):
            self.sent += 1
            return True
        self.rejected += 1
        if not packet.dropped:
            packet.mark_dropped(DropReason.NO_BUFFER)
        return False
