"""Synthetic data-center workload generation.

The paper motivates FlowValve with multi-tenant data-center servers:
key-value stores (many small RPCs), ML services (large transfers), web
servers (mixed). This module generates that traffic shape without
proprietary traces: flows arrive as a Poisson process and draw their
sizes from a heavy-tailed (bounded-Pareto) distribution — the standard
synthetic stand-in for published DC traffic studies. Each flow is sent
as a paced packet train through any ``submit`` target (the NIC, a
kernel runtime, ...).

Two generation engines share one statistical model (DESIGN.md §12):

* ``mode="process"`` — the reference engine: one simulation process
  per flow, one event per packet. Simple, and the semantic yardstick,
  but a million flows would mean a million generator frames.
* ``mode="batched"`` (default) — the trace engine: a single windowed
  process pre-draws every flow arrival and emission instant for the
  next horizon window with the *exact* RNG-draw and float-op order of
  the per-flow engine, then hands the whole window to the target as
  one pre-merged train (``NicPipeline.submit_trace``) or one run-lane
  train. Packet streams are bit-identical between the engines; only
  kernel-event counts differ. Flow/byte tallies are folded lazily
  from per-window ledgers, so observation memory stays at one window
  regardless of flow count.

Presets (:data:`WORKLOAD_PRESETS`) give the three motivating app types
distinct mixes; :class:`TraceWorkload` drives one app's flow process.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

try:  # vectorized emission chains; pure-python fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional dep
    _np = None

from ..net.flow import FiveTuple
from ..net.packet import Packet, PacketFactory

__all__ = ["FlowSpec", "WorkloadProfile", "TraceWorkload", "WORKLOAD_PRESETS"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical shape of one application's traffic.

    Attributes
    ----------
    mean_flow_bytes: average flow size (the bounded-Pareto mean is
        matched to this).
    min_flow_bytes / max_flow_bytes: Pareto bounds.
    pareto_alpha: tail index (1.1-1.3 ≈ published DC distributions;
        smaller = heavier tail).
    packet_size: MTU-sized payload packets (the last packet of a flow
        is the remainder).
    flow_rate_limit_bps: pacing per flow (a flow never sends faster
        than this — RPC responses stream at service speed, not line
        rate).
    """

    mean_flow_bytes: float = 100_000.0
    min_flow_bytes: float = 1_000.0
    max_flow_bytes: float = 100_000_000.0
    pareto_alpha: float = 1.2
    packet_size: int = 1500
    flow_rate_limit_bps: float = 5e9


#: The motivating app types (§II): KVS = many small RPCs, ML = few
#: huge transfers, WS = mixed web objects.
WORKLOAD_PRESETS: Dict[str, WorkloadProfile] = {
    "kvs": WorkloadProfile(
        mean_flow_bytes=8_000.0, min_flow_bytes=256.0, max_flow_bytes=200_000.0,
        pareto_alpha=1.3, flow_rate_limit_bps=2e9,
    ),
    "ml": WorkloadProfile(
        mean_flow_bytes=20_000_000.0, min_flow_bytes=1_000_000.0,
        max_flow_bytes=1_000_000_000.0, pareto_alpha=1.1, flow_rate_limit_bps=10e9,
    ),
    "web": WorkloadProfile(
        mean_flow_bytes=100_000.0, min_flow_bytes=1_000.0, max_flow_bytes=20_000_000.0,
        pareto_alpha=1.2, flow_rate_limit_bps=5e9,
    ),
}


@dataclass(frozen=True)
class FlowSpec:
    """One generated flow: identity, size, start time."""

    flow: FiveTuple
    size_bytes: int
    start_time: float


class _WindowLedger:
    """Lazy flow/byte tallies for one generated window.

    The batched engine submits a window's emissions before their
    instants pass, so eager counters would run ahead of the clock.
    Instead each window keeps sorted instant arrays and an inclusive
    payload prefix sum; observers bisect against ``sim.now`` and fully
    elapsed ledgers fold into scalar bases and are dropped — constant
    observation memory in the flow count.
    """

    __slots__ = ("times", "payload_cum", "starts", "ends", "last")

    def __init__(
        self,
        times: List[float],
        payload_cum: List[int],
        starts: List[float],
        ends: List[float],
    ):
        self.times = times
        self.payload_cum = payload_cum
        self.starts = starts
        self.ends = ends
        last = times[-1] if times else float("-inf")
        if starts and starts[-1] > last:
            last = starts[-1]
        if ends and ends[-1] > last:
            last = ends[-1]
        self.last = last


#: Largest vectorized emission chain computed at once (bounds the
#: transient chunk an in-window elephant flow allocates).
_MAX_CHAIN = 1 << 20


class TraceWorkload:
    """Poisson flow arrivals with bounded-Pareto sizes for one app.

    Parameters
    ----------
    sim: the shared simulator.
    app: app name stamped on packets (classification key).
    profile: statistical shape.
    offered_load_bps: long-run average offered rate; sets the Poisson
        flow arrival rate to ``offered / mean_flow_bytes``.
    submit: packet sink (NIC submit, runtime enqueue, ...).
    factory: shared packet factory.
    vf_index: virtual function the app sends through.
    duration: stop generating new flows after this time (existing
        flows finish).
    mode: ``"batched"`` (windowed trace engine, the default) or
        ``"process"`` (one process per flow — the reference engine).
        Packet streams are bit-identical; see the module docstring.
    window: batched-engine horizon window in seconds. Defaults to
        ~64 Ki emission instants' worth at the offered load.
    """

    def __init__(
        self,
        sim,
        app: str,
        profile: WorkloadProfile,
        offered_load_bps: float,
        submit: Callable[[Packet], bool],
        factory: PacketFactory,
        vf_index: int = 0,
        duration: Optional[float] = None,
        dst_ip: str = "10.0.1.1",
        mode: str = "batched",
        window: Optional[float] = None,
    ):
        if offered_load_bps <= 0:
            raise ValueError("offered load must be positive")
        if mode not in ("batched", "process"):
            raise ValueError(f"mode must be 'batched' or 'process', got {mode!r}")
        self.sim = sim
        self.app = app
        self.profile = profile
        self.offered_load_bps = offered_load_bps
        self.submit = submit
        self.factory = factory
        self.vf_index = vf_index
        self.duration = duration
        self.dst_ip = dst_ip
        self.mode = mode
        self._rng = sim.random.stream(f"workload:{app}")
        # Flow/byte tallies. A flow completes when its last packet has
        # been *submitted*; delivery is the network's job. In batched
        # mode these are bases under the ledger fold (see properties).
        self._started_base = 0
        self._completed_base = 0
        self._offered_base = 0
        self._flow_seq = 0
        self._psize = profile.packet_size
        self._gap = profile.packet_size * 8.0 / profile.flow_rate_limit_bps
        # Batched-engine state.
        self._ledgers: "deque[_WindowLedger]" = deque()
        #: Active pacing cursors: [next_instant, packets_left, flow,
        #: last_packet_payload] — one four-slot list per in-flight flow.
        self._cursors: List[List] = []
        self._pending: Optional[Tuple[float, int]] = None
        self._arr_time = 0.0
        self._arr_done = False
        self._lam = self.flow_arrival_rate
        #: Horizon windows generated so far (diagnostic).
        self.windows_generated = 0
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if window is None:
            window = max(
                64 * self._gap,
                65536 * profile.packet_size * 8.0 / offered_load_bps,
            )
        self.window = window
        # Batched ingress: hand whole windows to a trace-capable NIC
        # (same owner detection as FixedRateSender's burst path); any
        # other target gets per-item run-lane callbacks — still one
        # heap operation per window, minted at the exact instants.
        owner = getattr(submit, "__self__", None)
        self._trace_target = (
            owner
            if owner is not None
            and getattr(owner, "ingress_burst", 0) > 0
            and hasattr(owner, "submit_trace")
            else None
        )
        if mode == "process":
            sim.process(self._arrivals())
        else:
            self._window_start = sim.now
            sim.schedule_at(sim.now, self._window_step)

    # ------------------------------------------------------------------
    @property
    def flow_arrival_rate(self) -> float:
        """Poisson λ in flows per second."""
        return self.offered_load_bps / 8.0 / self._pareto_mean()

    def _pareto_mean(self) -> float:
        """Mean of the bounded Pareto implied by the profile bounds and
        alpha (the profile's ``mean_flow_bytes`` is advisory; the
        actual mean follows the distribution)."""
        a = self.profile.pareto_alpha
        lo, hi = self.profile.min_flow_bytes, self.profile.max_flow_bytes
        if a == 1.0:
            return lo * hi / (hi - lo) * math.log(hi / lo)
        return (lo ** a) / (1 - (lo / hi) ** a) * a / (a - 1) * (
            1 / (lo ** (a - 1)) - 1 / (hi ** (a - 1))
        )

    def sample_flow_size(self) -> int:
        """Draw one bounded-Pareto flow size in bytes."""
        a = self.profile.pareto_alpha
        lo, hi = self.profile.min_flow_bytes, self.profile.max_flow_bytes
        u = self._rng.random()
        # Inverse CDF of the bounded Pareto.
        x = (-(u * (hi ** a) - u * (lo ** a) - (hi ** a)) / ((hi * lo) ** a)) ** (-1.0 / a)
        return max(int(lo), min(int(hi), int(x)))

    def _mint_flow(self) -> FiveTuple:
        self._flow_seq += 1
        seq = self._flow_seq
        return FiveTuple(
            f"10.{self.vf_index}.{(seq >> 8) & 0xFF}.{seq & 0xFF}",
            self.dst_ip,
            10_000 + (seq % 50_000),
            5001,
        )

    # ------------------------------------------------------------------
    # tallies (ledger-folded in batched mode, plain bases otherwise)
    # ------------------------------------------------------------------
    def _fold(self) -> None:
        """Retire ledgers whose every instant has elapsed."""
        now = self.sim._now
        ledgers = self._ledgers
        while ledgers and ledgers[0].last <= now:
            led = ledgers.popleft()
            self._started_base += len(led.starts)
            self._completed_base += len(led.ends)
            if led.payload_cum:
                self._offered_base += led.payload_cum[-1]

    @property
    def flows_started(self) -> int:
        self._fold()
        now = self.sim._now
        n = self._started_base
        for led in self._ledgers:
            n += bisect_right(led.starts, now)
        return n

    @property
    def flows_completed(self) -> int:
        self._fold()
        now = self.sim._now
        n = self._completed_base
        for led in self._ledgers:
            n += bisect_right(led.ends, now)
        return n

    @property
    def bytes_offered(self) -> int:
        self._fold()
        now = self.sim._now
        total = self._offered_base
        for led in self._ledgers:
            index = bisect_right(led.times, now)
            if index:
                total += led.payload_cum[index - 1]
        return total

    # ------------------------------------------------------------------
    # reference engine: one process per flow
    # ------------------------------------------------------------------
    def _arrivals(self):
        lam = self.flow_arrival_rate
        while self.duration is None or self.sim.now < self.duration:
            yield self._rng.expovariate(lam)
            if self.duration is not None and self.sim.now >= self.duration:
                break
            self._start_flow()

    def _start_flow(self) -> None:
        self._started_base += 1
        flow = self._mint_flow()
        size = self.sample_flow_size()
        self.sim.process(self._send_flow(flow, size))

    def _send_flow(self, flow: FiveTuple, size_bytes: int):
        profile = self.profile
        remaining = size_bytes
        gap = profile.packet_size * 8.0 / profile.flow_rate_limit_bps
        while remaining > 0:
            payload = min(profile.packet_size, remaining)
            packet = self.factory.make(
                max(64, payload), flow, self.sim.now, app=self.app, vf_index=self.vf_index
            )
            self._offered_base += payload
            self.submit(packet)
            remaining -= payload
            yield gap
        self._completed_base += 1

    # ------------------------------------------------------------------
    # trace engine: horizon-windowed batch generation
    # ------------------------------------------------------------------
    def _next_flow(self) -> Optional[Tuple[float, int]]:
        """Draw the next (arrival, size) pair — the exact RNG-draw
        order of :meth:`_arrivals`: one expovariate per candidate
        arrival, one size draw per arrival that lands inside the
        duration, and the terminal overshoot expovariate unpaired."""
        if self._arr_done:
            return None
        d = self.duration
        t = self._arr_time
        if d is not None and t >= d:
            # The reference engine's while-condition: with duration
            # <= 0 not even the first expovariate is drawn.
            self._arr_done = True
            return None
        t = self._arr_time = t + self._rng.expovariate(self._lam)
        if d is not None and t >= d:
            self._arr_done = True
            return None
        return t, self.sample_flow_size()

    def _window_step(self) -> None:
        start = self._window_start
        end = start + self.window
        self.windows_generated += 1
        self._emit_window(start, end)
        self._window_start = end
        if not self._arr_done or self._cursors or self._pending is not None:
            self.sim.schedule_at(end, self._window_step)

    def _emit_window(self, start: float, end: float) -> None:
        """Generate and submit every emission instant in [start, end)."""
        # 1. Admit arrivals landing inside this window as cursors. One
        #    drawn pair may overshoot the window: it is held (drawing
        #    ahead in the same stream keeps the sequence order) and
        #    admitted by the window that contains it.
        cursors = self._cursors
        psize = self._psize
        starts: List[float] = []
        ends: List[float] = []
        while True:
            nxt = self._pending
            if nxt is not None:
                self._pending = None
            else:
                nxt = self._next_flow()
                if nxt is None:
                    break
            if nxt[0] >= end:
                self._pending = nxt
                break
            t0, size = nxt
            flow = self._mint_flow()
            starts.append(t0)
            n_pkts = -(-size // psize)
            if n_pkts == 0:
                ends.append(t0)  # degenerate zero-byte flow
                continue
            cursors.append([t0, n_pkts, flow, size - (n_pkts - 1) * psize])
        if not cursors:
            if starts:
                self._ledgers.append(_WindowLedger([], [], starts, ends))
            return
        # 2. Walk each cursor's pacing chain through the window. The
        #    chain is the same left-to-right float accumulation the
        #    per-flow engine performs one yield at a time, vectorized
        #    when numpy is present (``np.add.accumulate`` runs the
        #    identical adds, so every instant is bit-identical).
        gap = self._gap
        mint_full = psize if psize >= 64 else 64
        times_all: List[float] = []
        flows_all: List[FiveTuple] = []
        mints_all: List[int] = []
        payloads_all: List[int] = []
        keep: List[List] = []
        for cur in cursors:
            t = cur[0]
            if t >= end:
                keep.append(cur)
                continue
            n_left = cur[1]
            flow = cur[2]
            ts: List[float] = []
            while n_left > 0 and t < end:
                if _np is not None and n_left >= 32:
                    est = int((end - t) / gap) + 2
                    m = min(n_left, est, _MAX_CHAIN)
                    chain = _np.add.accumulate(
                        _np.concatenate(((t,), _np.full(m - 1, gap)))
                    )
                    k = int(_np.searchsorted(chain, end, side="left"))
                    if k:
                        ts.extend(chain[:k].tolist())
                    n_left -= k
                    if k < m:
                        t = float(chain[k])
                        break
                    t = float(chain[-1]) + gap
                else:
                    ts.append(t)
                    t = t + gap
                    n_left -= 1
            cur[0] = t
            cur[1] = n_left
            n_emit = len(ts)
            times_all.extend(ts)
            flows_all.extend([flow] * n_emit)
            if n_left == 0:
                # The flow's final packet fell in this window: it
                # carries the size remainder; every other packet is a
                # full payload.
                ends.append(ts[-1])
                last_payload = cur[3]
                mints_all.extend([mint_full] * (n_emit - 1))
                mints_all.append(last_payload if last_payload >= 64 else 64)
                payloads_all.extend([psize] * (n_emit - 1))
                payloads_all.append(last_payload)
            else:
                keep.append(cur)
                mints_all.extend([mint_full] * n_emit)
                payloads_all.extend([psize] * n_emit)
        self._cursors = keep
        # 3. Merge every flow's instants into one time-sorted train.
        #    Stable sorts keep equal-instant ties in flow-start order.
        n = len(times_all)
        if n == 0:
            if starts:
                self._ledgers.append(_WindowLedger([], [], starts, ends))
            return
        if _np is not None and n > 64:
            order = _np.argsort(_np.asarray(times_all), kind="stable").tolist()
        else:
            order = sorted(range(n), key=times_all.__getitem__)
        times_sorted = [times_all[j] for j in order]
        flows_sorted = [flows_all[j] for j in order]
        mints_sorted = [mints_all[j] for j in order]
        payload_cum: List[int] = []
        total = 0
        for j in order:
            total += payloads_all[j]
            payload_cum.append(total)
        ends.sort()
        self._ledgers.append(
            _WindowLedger(times_sorted, payload_cum, starts, ends)
        )
        # 4. Submit: one pre-merged trace train to a capable NIC, or
        #    one run-lane train of exact-instant mint callbacks.
        target = self._trace_target
        if target is not None:
            target.submit_trace(
                self.factory.make, times_sorted, flows_sorted, mints_sorted,
                self.app, self.vf_index,
            )
        else:
            emit = self._emit_one
            self.sim._queue.push_run(
                [
                    (times_sorted[j], emit, (mints_sorted[j], flows_sorted[j]))
                    for j in range(n)
                ]
            )

    def _emit_one(self, size: int, flow: FiveTuple) -> None:
        packet = self.factory.make(
            size, flow, self.sim._now, app=self.app, vf_index=self.vf_index
        )
        self.submit(packet)
