"""Synthetic data-center workload generation.

The paper motivates FlowValve with multi-tenant data-center servers:
key-value stores (many small RPCs), ML services (large transfers), web
servers (mixed). This module generates that traffic shape without
proprietary traces: flows arrive as a Poisson process and draw their
sizes from a heavy-tailed (bounded-Pareto) distribution — the standard
synthetic stand-in for published DC traffic studies. Each flow is sent
as a paced packet train through any ``submit`` target (the NIC, a
kernel runtime, ...).

Presets (:data:`WORKLOAD_PRESETS`) give the three motivating app types
distinct mixes; :class:`TraceWorkload` drives one app's flow process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..net.flow import FiveTuple
from ..net.packet import Packet, PacketFactory

__all__ = ["FlowSpec", "WorkloadProfile", "TraceWorkload", "WORKLOAD_PRESETS"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical shape of one application's traffic.

    Attributes
    ----------
    mean_flow_bytes: average flow size (the bounded-Pareto mean is
        matched to this).
    min_flow_bytes / max_flow_bytes: Pareto bounds.
    pareto_alpha: tail index (1.1-1.3 ≈ published DC distributions;
        smaller = heavier tail).
    packet_size: MTU-sized payload packets (the last packet of a flow
        is the remainder).
    flow_rate_limit_bps: pacing per flow (a flow never sends faster
        than this — RPC responses stream at service speed, not line
        rate).
    """

    mean_flow_bytes: float = 100_000.0
    min_flow_bytes: float = 1_000.0
    max_flow_bytes: float = 100_000_000.0
    pareto_alpha: float = 1.2
    packet_size: int = 1500
    flow_rate_limit_bps: float = 5e9


#: The motivating app types (§II): KVS = many small RPCs, ML = few
#: huge transfers, WS = mixed web objects.
WORKLOAD_PRESETS: Dict[str, WorkloadProfile] = {
    "kvs": WorkloadProfile(
        mean_flow_bytes=8_000.0, min_flow_bytes=256.0, max_flow_bytes=200_000.0,
        pareto_alpha=1.3, flow_rate_limit_bps=2e9,
    ),
    "ml": WorkloadProfile(
        mean_flow_bytes=20_000_000.0, min_flow_bytes=1_000_000.0,
        max_flow_bytes=1_000_000_000.0, pareto_alpha=1.1, flow_rate_limit_bps=10e9,
    ),
    "web": WorkloadProfile(
        mean_flow_bytes=100_000.0, min_flow_bytes=1_000.0, max_flow_bytes=20_000_000.0,
        pareto_alpha=1.2, flow_rate_limit_bps=5e9,
    ),
}


@dataclass(frozen=True)
class FlowSpec:
    """One generated flow: identity, size, start time."""

    flow: FiveTuple
    size_bytes: int
    start_time: float


class TraceWorkload:
    """Poisson flow arrivals with bounded-Pareto sizes for one app.

    Parameters
    ----------
    sim: the shared simulator.
    app: app name stamped on packets (classification key).
    profile: statistical shape.
    offered_load_bps: long-run average offered rate; sets the Poisson
        flow arrival rate to ``offered / mean_flow_bytes``.
    submit: packet sink (NIC submit, runtime enqueue, ...).
    factory: shared packet factory.
    vf_index: virtual function the app sends through.
    duration: stop generating new flows after this time (existing
        flows finish).
    """

    def __init__(
        self,
        sim,
        app: str,
        profile: WorkloadProfile,
        offered_load_bps: float,
        submit: Callable[[Packet], bool],
        factory: PacketFactory,
        vf_index: int = 0,
        duration: Optional[float] = None,
        dst_ip: str = "10.0.1.1",
    ):
        if offered_load_bps <= 0:
            raise ValueError("offered load must be positive")
        self.sim = sim
        self.app = app
        self.profile = profile
        self.offered_load_bps = offered_load_bps
        self.submit = submit
        self.factory = factory
        self.vf_index = vf_index
        self.duration = duration
        self.dst_ip = dst_ip
        self._rng = sim.random.stream(f"workload:{app}")
        #: Flows started / completed (a flow completes when its last
        #: packet has been *submitted*; delivery is the network's job).
        self.flows_started = 0
        self.flows_completed = 0
        self.bytes_offered = 0
        self._flow_seq = 0
        sim.process(self._arrivals())

    # ------------------------------------------------------------------
    @property
    def flow_arrival_rate(self) -> float:
        """Poisson λ in flows per second."""
        return self.offered_load_bps / 8.0 / self._pareto_mean()

    def _pareto_mean(self) -> float:
        """Mean of the bounded Pareto implied by the profile bounds and
        alpha (the profile's ``mean_flow_bytes`` is advisory; the
        actual mean follows the distribution)."""
        a = self.profile.pareto_alpha
        lo, hi = self.profile.min_flow_bytes, self.profile.max_flow_bytes
        if a == 1.0:
            return lo * hi / (hi - lo) * __import__("math").log(hi / lo)
        return (lo ** a) / (1 - (lo / hi) ** a) * a / (a - 1) * (
            1 / (lo ** (a - 1)) - 1 / (hi ** (a - 1))
        )

    def sample_flow_size(self) -> int:
        """Draw one bounded-Pareto flow size in bytes."""
        a = self.profile.pareto_alpha
        lo, hi = self.profile.min_flow_bytes, self.profile.max_flow_bytes
        u = self._rng.random()
        # Inverse CDF of the bounded Pareto.
        x = (-(u * (hi ** a) - u * (lo ** a) - (hi ** a)) / ((hi * lo) ** a)) ** (-1.0 / a)
        return max(int(lo), min(int(hi), int(x)))

    def _arrivals(self):
        lam = self.flow_arrival_rate
        while self.duration is None or self.sim.now < self.duration:
            yield self._rng.expovariate(lam)
            if self.duration is not None and self.sim.now >= self.duration:
                break
            self._start_flow()

    def _start_flow(self) -> None:
        self._flow_seq += 1
        self.flows_started += 1
        flow = FiveTuple(
            f"10.{self.vf_index}.{(self._flow_seq >> 8) & 0xFF}.{self._flow_seq & 0xFF}",
            self.dst_ip,
            10_000 + (self._flow_seq % 50_000),
            5001,
        )
        size = self.sample_flow_size()
        self.sim.process(self._send_flow(flow, size))

    def _send_flow(self, flow: FiveTuple, size_bytes: int):
        profile = self.profile
        remaining = size_bytes
        gap = profile.packet_size * 8.0 / profile.flow_rate_limit_bps
        while remaining > 0:
            payload = min(profile.packet_size, remaining)
            packet = self.factory.make(
                max(64, payload), flow, self.sim.now, app=self.app, vf_index=self.vf_index
            )
            self.bytes_offered += payload
            self.submit(packet)
            remaining -= payload
            yield gap
        self.flows_completed += 1
