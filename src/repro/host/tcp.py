"""A compact ack-clocked AIMD TCP model.

The paper drives its experiments with TCP (iperf3 against kernel
qdiscs; an mTCP-based tool against FlowValve and DPDK QoS). What the
throughput figures need from TCP is its control loop: slow start,
additive increase, multiplicative decrease on loss, and — critically —
**self-clocking**: a sender may only have ``cwnd`` bytes in flight, so
its rate can never exceed the bottleneck's delivery rate for longer
than one RTT. (An open-loop ``cwnd/RTT`` pacer without the in-flight
cap oscillates wildly against a bufferless policer; the ack clock is
what keeps real TCP smooth.)

Segment-level reliability (retransmission, SACK) is irrelevant to
throughput shape under a policer/shaper and is deliberately left out;
a lost packet only matters as a congestion signal and as an in-flight
decrement.

Wiring: the experiment connects :meth:`TcpRegistry.handle_delivery` to
the receiving sink and :meth:`TcpRegistry.handle_drop` to the
scheduler/NIC drop hook, so each connection sees its own acks and
losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..net.flow import FiveTuple
from ..net.packet import Packet, PacketFactory

__all__ = ["TcpParams", "AimdConnection", "TcpRegistry"]


@dataclass(frozen=True)
class TcpParams:
    """Congestion-control constants.

    ``base_rtt`` seeds the RTT estimator; the estimator then tracks
    measured one-way delays. All times scale with the experiment's
    rate scale.
    """

    mss: int = 1500
    initial_cwnd_segments: float = 10.0
    min_cwnd_segments: float = 2.0
    base_rtt: float = 100e-6
    #: Multiplicative-decrease factor on loss (0.5 = classic Reno;
    #: Linux's default CUBIC uses ~0.7).
    beta: float = 0.5
    #: EWMA weight for the RTT estimate.
    rtt_alpha: float = 0.2
    #: Idle longer than this many RTTs triggers slow-start restart.
    idle_restart_rtts: float = 10.0


class AimdConnection:
    """One TCP connection: ack-clocked window with AIMD control."""

    def __init__(
        self,
        sim,
        conn_id: int,
        flow: FiveTuple,
        app: str,
        factory: PacketFactory,
        submit: Callable[[Packet], bool],
        params: Optional[TcpParams] = None,
        demand: Optional[Callable[[float], float]] = None,
        vf_index: int = 0,
        on_send_cost: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.conn_id = conn_id
        self.flow = flow
        self.app = app
        self.factory = factory
        self.submit = submit
        self.params = params if params is not None else TcpParams()
        #: Time-varying application demand in bit/s (None = unbounded).
        self.demand = demand
        self.vf_index = vf_index
        #: Called with the packet size for every send (CPU accounting).
        self.on_send_cost = on_send_cost
        p = self.params
        self.cwnd = p.initial_cwnd_segments * p.mss  # bytes
        self.ssthresh = math.inf
        self.srtt = p.base_rtt
        self.in_slow_start = True
        #: Unacknowledged segments currently in the network.
        self.in_flight = 0
        self._last_cut = -math.inf
        self._last_send = -math.inf
        self._window_waiter = None
        # --- statistics ----------------------------------------------
        self.sent_packets = 0
        self.acked_packets = 0
        self.lost_packets = 0
        self._process = sim.process(self._run())

    # ------------------------------------------------------------------
    @property
    def cwnd_segments(self) -> float:
        """Current window in segments."""
        return self.cwnd / self.params.mss

    def pacing_rate_bps(self) -> float:
        """Smoothing rate used to space sends within a window."""
        window_rate = self.cwnd * 8.0 / max(self.srtt, 1e-12)
        if self.demand is None:
            return window_rate
        return min(window_rate, self.demand(self.sim.now))

    def _run(self):
        # Deliberately per-packet, even against a burst-capable pipeline
        # (``NicPipeline.submit_burst``). An ack-clocked sender has no
        # usable CBR horizon: every ack mutates cwnd/srtt and therefore
        # the pacing of every later emission, so a precomputed train
        # must be retired on any feedback — and in a fig-style workload
        # (4 apps x 2 conns, scale 2000, 6 s) trained ingress with
        # retire-on-feedback measured 65,412 kernel events against
        # 18,245 per-packet: a 3.6x pessimization. Worse, RTT-symmetric
        # connections emit at exactly equal instants, and a wake
        # re-armed at retire time cannot reproduce the per-packet
        # resume-lane seq order among those simultaneous emissions, so
        # deliveries shift by whole serialization quanta. Open-loop
        # senders (FixedRateSender) are where emission trains pay off.
        p = self.params
        size = p.mss
        size_bits = size * 8.0
        while True:
            if self.demand is not None and self.demand(self.sim.now) <= 0:
                yield max(p.base_rtt, self.srtt)
                continue
            if self.sim.now - self._last_send > p.idle_restart_rtts * max(self.srtt, p.base_rtt):
                self._slow_start_restart()
            if self.in_flight >= max(1.0, self.cwnd_segments):
                # Ack clock: wait for a delivery/loss to open the window.
                self._window_waiter = self.sim.event()
                yield self._window_waiter
                continue
            packet = self.factory.make(
                size, self.flow, self.sim.now, app=self.app,
                vf_index=self.vf_index, conn_id=self.conn_id,
            )
            if self.on_send_cost is not None:
                self.on_send_cost(size)
            self._last_send = self.sim.now
            self.sent_packets += 1
            self.in_flight += 1
            self.submit(packet)
            rate = self.pacing_rate_bps()
            if rate <= 0:
                yield self.srtt
            else:
                yield size_bits / rate

    def _slow_start_restart(self) -> None:
        p = self.params
        self.cwnd = p.initial_cwnd_segments * p.mss
        self.in_slow_start = True
        self.ssthresh = math.inf

    def _open_window(self) -> None:
        if self.in_flight > 0:
            self.in_flight -= 1
        waiter = self._window_waiter
        if waiter is not None and not waiter.triggered:
            self._window_waiter = None
            waiter.succeed()

    # ------------------------------------------------------------------
    # feedback from the network
    # ------------------------------------------------------------------
    def on_delivered(self, packet: Packet) -> None:
        """An ack: grow the window, refresh RTT, open the ack clock."""
        p = self.params
        self.acked_packets += 1
        owd = packet.one_way_delay
        if owd > 0:
            sample = max(p.base_rtt, 2.0 * owd)
            self.srtt += p.rtt_alpha * (sample - self.srtt)
        if self.in_slow_start:
            self.cwnd += p.mss
            if self.cwnd >= self.ssthresh:
                self.in_slow_start = False
        else:
            self.cwnd += p.mss * p.mss / self.cwnd
        self._open_window()

    def on_dropped(self, packet: Packet) -> None:
        """A loss: at most one multiplicative decrease per RTT; the
        lost segment still opens the ack clock (it left the network)."""
        p = self.params
        self.lost_packets += 1
        if self.sim.now - self._last_cut >= self.srtt:
            self._last_cut = self.sim.now
            self.cwnd = max(p.min_cwnd_segments * p.mss, self.cwnd * p.beta)
            self.ssthresh = self.cwnd
            self.in_slow_start = False
        self._open_window()


class TcpRegistry:
    """Routes network feedback to connections by ``conn_id``.

    Point the sink's ``on_delivery`` at :meth:`handle_delivery` and
    the scheduler/NIC drop hook at :meth:`handle_drop`. Loss signals
    are delayed by half the connection's RTT estimate (the time a real
    sender needs to detect the loss via dup-acks).
    """

    def __init__(self, sim):
        self.sim = sim
        self._connections: Dict[int, AimdConnection] = {}
        self._next_id = 0

    def new_id(self) -> int:
        conn_id = self._next_id
        self._next_id += 1
        return conn_id

    def register(self, conn: AimdConnection) -> None:
        self._connections[conn.conn_id] = conn

    def get(self, conn_id: int) -> Optional[AimdConnection]:
        return self._connections.get(conn_id)

    def __len__(self) -> int:
        return len(self._connections)

    def handle_delivery(self, packet: Packet) -> None:
        conn = self._connections.get(packet.conn_id)
        if conn is None:
            return
        # Ack returns after the reverse path (half an RTT).
        self.sim.schedule(conn.srtt / 2.0, conn.on_delivered, packet)

    def handle_drop(self, packet: Packet) -> None:
        conn = self._connections.get(packet.conn_id)
        if conn is None:
            return
        self.sim.schedule(conn.srtt / 2.0, conn.on_dropped, packet)
