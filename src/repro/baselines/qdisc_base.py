"""The classful qdisc interface (paper §III-A).

Classful packet scheduling in the kernel is a classifier, multiple
queues, and a scheduler: egress packets match filter rules into class
queues, and the scheduler serves those queues. The two concrete
schedulers (:class:`~repro.baselines.prio.PrioQdisc`,
:class:`~repro.baselines.htb.HtbQdisc`) implement this interface; the
kernel runtime (:mod:`.kernel`) drives ``enqueue``/``dequeue`` under
the global qdisc lock.

Unlike FlowValve (schedule-then-queue), qdiscs queue *before*
scheduling — which is why they need the central queue and the lock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..net.packet import DropReason, Packet

__all__ = ["LeafQueue", "Qdisc"]


class LeafQueue:
    """A bounded FIFO holding one class's backlog."""

    def __init__(self, limit_packets: int = 1000):
        self.limit = limit_packets
        self._queue: Deque[Packet] = deque()
        #: Packets rejected because the queue was full.
        self.tail_drops = 0
        #: High-water mark (packets).
        self.max_backlog = 0
        #: Queued bytes, maintained incrementally — kernel qdiscs keep
        #: ``qstats.backlog`` the same way; recomputing per read is
        #: O(n) on a hot path.
        self._backlog_bytes = 0
        #: High-water mark (bytes).
        self.max_backlog_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    def push(self, packet: Packet) -> bool:
        """Enqueue; False (and drop-marked) when at the limit."""
        if len(self._queue) >= self.limit:
            self.tail_drops += 1
            packet.mark_dropped(DropReason.CLASS_QUEUE_FULL)
            return False
        self._queue.append(packet)
        self._backlog_bytes += packet.size
        if len(self._queue) > self.max_backlog:
            self.max_backlog = len(self._queue)
        if self._backlog_bytes > self.max_backlog_bytes:
            self.max_backlog_bytes = self._backlog_bytes
        return True

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._backlog_bytes -= packet.size
        return packet


class Qdisc:
    """Interface the kernel runtime drives.

    ``enqueue`` classifies and queues a packet (returns False on
    drop); ``dequeue`` returns the next packet to transmit, or
    ``None`` when empty or throttled; ``next_ready_time`` tells the
    runtime when a throttled qdisc will have tokens again so it can
    arm the watchdog timer, exactly like ``qdisc_watchdog`` in the
    kernel.
    """

    def enqueue(self, packet: Packet, now: float) -> bool:
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        raise NotImplementedError

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time ``dequeue`` may succeed again; ``None`` when
        nothing is queued anywhere."""
        raise NotImplementedError

    @property
    def backlog(self) -> int:
        """Total queued packets."""
        raise NotImplementedError
