"""The PRIO qdisc: strict-priority bands.

``tc-prio`` semantics: N bands, each a FIFO; dequeue always serves the
lowest-numbered non-empty band. Classification maps a packet to a band
through the same filter machinery as FlowValve (a
:class:`~repro.tc.classifier.Classifier` whose flowids are band class
ids ``handle:band+1``), with unmatched traffic falling into the last
band.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.packet import Packet
from ..tc.classifier import Classifier
from .qdisc_base import LeafQueue, Qdisc

__all__ = ["PrioQdisc"]


class PrioQdisc(Qdisc):
    """Strict-priority bands behind a shared classifier.

    Parameters
    ----------
    bands: number of priority bands (band 0 served first).
    classifier: filter rules; a matched flowid of ``"major:minor"``
        maps to band ``minor − 1`` (tc convention: class 1:1 is band 0).
    default_band: band for unmatched packets (tc defaults to the last).
    queue_limit: per-band FIFO limit in packets.
    """

    def __init__(
        self,
        bands: int = 3,
        classifier: Optional[Classifier] = None,
        default_band: Optional[int] = None,
        queue_limit: int = 1000,
    ):
        if bands < 1:
            raise ValueError(f"need at least one band, got {bands}")
        self.bands = bands
        self.classifier = classifier if classifier is not None else Classifier()
        self.default_band = default_band if default_band is not None else bands - 1
        self.queues: List[LeafQueue] = [LeafQueue(queue_limit) for _ in range(bands)]
        #: Packets enqueued per band (lifetime).
        self.enqueued: Dict[int, int] = {b: 0 for b in range(bands)}
        #: Packets dequeued per band (lifetime).
        self.dequeued: Dict[int, int] = {b: 0 for b in range(bands)}

    # ------------------------------------------------------------------
    def band_for(self, packet: Packet) -> int:
        """Map a packet to its band via the filter chain."""
        flowid = self.classifier.classify(packet) if len(self.classifier) else None
        if flowid is None:
            return self.default_band
        _, _, minor = flowid.partition(":")
        try:
            band = int(minor, 16) - 1
        except ValueError:
            return self.default_band
        if 0 <= band < self.bands:
            return band
        return self.default_band

    def enqueue(self, packet: Packet, now: float) -> bool:
        band = self.band_for(packet)
        if self.queues[band].push(packet):
            self.enqueued[band] += 1
            return True
        return False

    def dequeue(self, now: float) -> Optional[Packet]:
        for band, queue in enumerate(self.queues):
            packet = queue.pop()
            if packet is not None:
                self.dequeued[band] += 1
                return packet
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        # PRIO never throttles: ready immediately iff anything queued.
        return now if self.backlog else None

    @property
    def backlog(self) -> int:
        return sum(len(q) for q in self.queues)
