"""The DPDK QoS Scheduler model.

``librte_sched`` implements hierarchical shaping (port → subport →
pipe → traffic class → queue) in userspace on dedicated poll-mode
cores. Its shaping is *accurate* — the paper confirms "good rate
conformance" — but every packet costs ~a thousand CPU cycles of
enqueue/dequeue work (prefetching, bitmap scans, token updates), and
the thread-safety requirements around its queues make multi-core
scaling lossy (§V-B's analysis: spinlock primitives and cache-line
bouncing).

The model reuses the HTB class-tree algorithm for the shaping math
(rates + ceilings + WRR ≈ the same token arithmetic, minus the kernel
artifacts: no lock-contention inflation, microsecond timers) and adds:

* a per-packet cycle budget, calibrated so one 2.3 GHz core schedules
  ≈2.25 Mpps (Fig. 13's 1518 B row);
* a scaling-efficiency curve for multi-core deployments;
* poll-mode CPU accounting — a scheduler core is 100% busy whether or
  not packets flow, which is exactly the CPU cost FlowValve's offload
  saves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..net.link import Link
from ..net.packet import DropReason, Packet
from ..sim import Store
from .qdisc_base import Qdisc

__all__ = ["DpdkQosParams", "DpdkQosScheduler"]


@dataclass(frozen=True)
class DpdkQosParams:
    """Cost model of librte_sched on one host.

    ``cycles_per_packet`` covers enqueue + dequeue + classification;
    1022 cycles at 2.3 GHz ≈ 2.25 Mpps per core, matching the paper's
    measurement (Fig. 13: one core schedules 1518 B at 2.25 Mpps, four
    cores schedule 64 B at 9.06 Mpps ⇒ ~2.27 Mpps/core).
    """

    cycles_per_packet: float = 1022.0
    core_freq_hz: float = 2.3e9
    #: Multi-core scaling efficiency per added core (cache-line and
    #: lock overheads); effective capacity = n × per-core × eff(n).
    scaling_efficiency: float = 0.995
    #: Input ring capacity (packets); senders tail-drop beyond it.
    input_ring: int = 4096
    #: Packets processed per poll iteration.
    burst: int = 32
    #: Idle poll interval when no work is pending.
    idle_poll: float = 2e-6

    def scaled(self, rate_scale: float) -> "DpdkQosParams":
        """Stretch time constants for a rate-scaled experiment."""
        return replace(
            self,
            core_freq_hz=self.core_freq_hz / rate_scale,
            idle_poll=self.idle_poll * rate_scale,
        )

    def capacity_pps(self, n_cores: int) -> float:
        """Aggregate scheduling capacity of *n_cores*."""
        per_core = self.core_freq_hz / self.cycles_per_packet
        return n_cores * per_core * (self.scaling_efficiency ** max(0, n_cores - 1))


class DpdkQosScheduler:
    """Poll-mode hierarchical scheduler on dedicated cores.

    Parameters
    ----------
    sim: shared simulator.
    qdisc: the shaping algorithm (an :class:`HtbQdisc` built from the
        experiment policy, with kernel artifacts disabled).
    link: egress wire.
    n_cores: dedicated scheduler cores.
    params: cost model.
    cores: optional list of :class:`~repro.host.cpu.CpuCore` ledgers to
        charge poll-mode busy time to (one per scheduler core).
    on_drop: drop hook (feeds TCP loss signals).
    """

    def __init__(
        self,
        sim,
        qdisc: Qdisc,
        link: Link,
        n_cores: int = 1,
        params: Optional[DpdkQosParams] = None,
        cores: Optional[List] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ):
        if n_cores < 1:
            raise ValueError("DPDK QoS needs at least one core")
        self.sim = sim
        self.qdisc = qdisc
        self.link = link
        self.n_cores = n_cores
        self.params = params if params is not None else DpdkQosParams()
        self.cores = cores or []
        self.on_drop = on_drop
        self.input = Store(sim, capacity=self.params.input_ring, name="dpdk-input")
        # Effective per-packet service time across the core pool.
        self._service_time = 1.0 / self.params.capacity_pps(n_cores)
        # --- statistics ------------------------------------------------
        self.submitted = 0
        self.transmitted = 0
        self.dropped = 0
        self.input_drops = 0
        self._last_charge = sim.now
        self._loop = sim.process(self._poll_loop())

    # ------------------------------------------------------------------
    def submit(self, packet: Packet) -> bool:
        """Sender-side handoff into the scheduler's input ring."""
        self.submitted += 1
        if self.input.try_put(packet):
            return True
        self.input_drops += 1
        self._drop(packet, DropReason.QUEUE_FULL)
        return False

    def _drop(self, packet: Packet, reason: DropReason) -> None:
        if not packet.dropped:
            packet.mark_dropped(reason)
        self.dropped += 1
        if self.on_drop is not None:
            self.on_drop(packet)

    def _charge_poll_time(self) -> None:
        """Poll-mode cores burn 100% CPU regardless of traffic."""
        now = self.sim.now
        elapsed = now - self._last_charge
        if elapsed <= 0:
            return
        self._last_charge = now
        for core in self.cores:
            core.charge("sched:dpdk-poll", elapsed)

    # ------------------------------------------------------------------
    def _poll_loop(self):
        params = self.params
        while True:
            did_work = False
            # --- enqueue phase -------------------------------------
            for _ in range(params.burst):
                packet = self.input.try_get()
                if packet is None:
                    break
                did_work = True
                yield self._service_time / 2  # enqueue half of the budget
                if not self.qdisc.enqueue(packet, self.sim.now):
                    self.dropped += 1
                    if self.on_drop is not None:
                        self.on_drop(packet)
            # --- dequeue phase -------------------------------------
            for _ in range(params.burst):
                # The CPU writes Tx descriptors and moves on — it never
                # waits out serialisation (NIC DMA overlaps with the
                # next dequeue). It only pauses when the device ring is
                # ahead by more than a burst's worth of wire time.
                backlog = self.link.busy_until() - self.sim.now
                lead_limit = params.burst * 12_320.0 / self.link.rate_bps
                if backlog > lead_limit:
                    break
                packet = self.qdisc.dequeue(self.sim.now)
                if packet is None:
                    break
                did_work = True
                yield self._service_time / 2  # dequeue half of the budget
                self.link.send(packet)
                self.transmitted += 1
            self._charge_poll_time()
            if not did_work:
                ready = self.qdisc.next_ready_time(self.sim.now)
                if ready is not None and ready > self.sim.now:
                    yield min(ready - self.sim.now, 100 * params.idle_poll)
                else:
                    yield params.idle_poll

    # ------------------------------------------------------------------
    def stats_summary(self) -> str:
        """One-line status for reports."""
        return (
            f"dpdk-qos[{self.n_cores} cores]: in={self.submitted} "
            f"tx={self.transmitted} drop={self.dropped} "
            f"(input_ring={self.input_drops}) backlog={self.qdisc.backlog}"
        )
