"""Baseline schedulers the paper compares against.

* :mod:`.qdisc_base` — the classful qdisc interface and FIFO leaf
  queues shared by the kernel models;
* :mod:`.prio` — the PRIO qdisc (strict bands);
* :mod:`.htb` — Hierarchy Token Bucket with ceil/borrowing and
  quantum-weighted DRR;
* :mod:`.kernel` — the kernel execution model around a qdisc: the
  global qdisc lock, enqueue on app cores, batched softirq dequeue,
  and the contention artifacts [23] that make kernel HTB inaccurate
  at 10 Gbit+ (Fig. 3);
* :mod:`.dpdk_qos` — the DPDK QoS Scheduler: accurate hierarchical
  shaping on dedicated polling cores with a per-packet cycle cost
  (Fig. 13's CPU-for-throughput trade).
"""

from .qdisc_base import LeafQueue, Qdisc
from .prio import PrioQdisc
from .htb import HtbClass, HtbQdisc
from .kernel import KernelQdiscRuntime, KernelParams
from .dpdk_qos import DpdkQosParams, DpdkQosScheduler

__all__ = [
    "LeafQueue",
    "Qdisc",
    "PrioQdisc",
    "HtbClass",
    "HtbQdisc",
    "KernelQdiscRuntime",
    "KernelParams",
    "DpdkQosParams",
    "DpdkQosScheduler",
]
