"""Hierarchy Token Bucket, kernel-style.

Implements ``tc-htb``'s documented behaviour (paper §III-A): each
class runs two token buckets — ``tokens`` against its assured *rate*
(burst) and ``ctokens`` against its *ceil* (cburst). A leaf may send
while it has rate tokens; once out, it may *borrow* from the closest
ancestor that still has rate tokens, provided every hop on the way is
within its ceiling. Leaves that can send are served by
deficit-round-robin with kernel-style quanta (``rate/8/r2q`` bytes,
capped at 200 000 — the cap is the source of the well-known coarse
sharing at multi-gigabit rates).

Two deliberate fidelity choices, matching what the paper *observed*
rather than what the man page promises:

* sibling ``prio`` does not influence borrowing order (Fig. 3's third
  artifact: HTB "ignores our priority setting between KVS and ML" and
  splits them equally — quantum-weighted DRR does exactly that);
* token refills honour a ``refill_inflation`` factor that the kernel
  runtime raises under qdisc-lock contention, reproducing the ceiling
  overshoot of Fig. 3's second artifact (≈12 Gbit through a 10 Gbit
  root). The mechanism (stale timestamps + batched dequeues under the
  global lock) is from [23]; the magnitude is calibrated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PolicyError
from ..net.packet import DropReason, Packet
from ..tc.ast import PolicyConfig
from ..tc.classifier import Classifier
from ..units import bits
from .qdisc_base import LeafQueue, Qdisc

__all__ = ["HtbClass", "HtbQdisc"]

#: Kernel default rate-to-quantum divisor.
R2Q = 10
#: Kernel warning threshold; quanta are capped here ("quantum of
#: 200000 is big").
QUANTUM_CAP_BYTES = 200_000
#: Default burst: enough for ~10 ms at the class rate, floor one MTU.
BURST_SECONDS = 0.01


class HtbClass:
    """One HTB class: rate/ceil buckets plus (for leaves) a queue."""

    def __init__(
        self,
        classid: str,
        rate_bps: float,
        ceil_bps: Optional[float] = None,
        parent: Optional["HtbClass"] = None,
        queue_limit: int = 1000,
        burst_seconds: float = BURST_SECONDS,
    ):
        if rate_bps <= 0:
            raise PolicyError(f"HTB class {classid}: rate must be positive")
        self.classid = classid
        self.rate = rate_bps
        self.ceil = ceil_bps if ceil_bps is not None else rate_bps
        if self.ceil < self.rate:
            raise PolicyError(f"HTB class {classid}: ceil below rate")
        self.parent = parent
        self.children: List[HtbClass] = []
        if parent is not None:
            parent.children.append(self)
        self.burst = max(self.rate * burst_seconds, 12_336.0)
        self.cburst = max(self.ceil * burst_seconds, 12_336.0)
        self.tokens = self.burst
        self.ctokens = self.cburst
        self.last_update = 0.0
        self.queue = LeafQueue(queue_limit)
        quantum_bytes = min(QUANTUM_CAP_BYTES, max(1514.0, self.rate / 8.0 / R2Q))
        #: DRR quantum in bits.
        self.quantum = quantum_bytes * 8.0
        self.deficit = 0.0
        # --- statistics ----------------------------------------------
        self.sent_packets = 0
        self.sent_bits = 0.0
        self.borrowed_packets = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # ------------------------------------------------------------------
    def refill(self, now: float, inflation: float = 1.0) -> None:
        """Lazily accrue both buckets up to *now*.

        ``inflation`` > 1 models the kernel artifacts described in the
        module docstring: each elapsed interval is over-credited by
        that factor.
        """
        dt = (now - self.last_update) * inflation
        if dt <= 0:
            return
        self.tokens = min(self.burst, self.tokens + self.rate * dt)
        self.ctokens = min(self.cburst, self.ctokens + self.ceil * dt)
        self.last_update = now

    def mode(self) -> str:
        """Kernel HTB colour: CAN_SEND / MAY_BORROW / CANT_SEND."""
        if self.ctokens <= 0:
            return "CANT_SEND"
        if self.tokens > 0:
            return "CAN_SEND"
        return "MAY_BORROW"

    def charge(self, size_bits: float) -> None:
        """Subtract one packet's bits from both buckets.

        Debt may grow arbitrarily negative (the kernel clamps tokens
        only on the positive side, at the burst): clamping debt would
        *forgive* part of every packet whenever the burst is small
        relative to the frame size, silently inflating the class rate.
        """
        self.tokens -= size_bits
        self.ctokens -= size_bits

    def rate_recovery(self, now: float) -> float:
        """When the rate bucket next goes positive (now if it already is)."""
        if self.tokens > 0:
            return now
        return now + (-self.tokens + 1.0) / self.rate

    def ceil_recovery(self, now: float) -> float:
        """When the ceil bucket next goes positive (now if it already is)."""
        if self.ctokens > 0:
            return now
        return now + (-self.ctokens + 1.0) / self.ceil


class HtbQdisc(Qdisc):
    """The qdisc: classifier + class tree + DRR dequeue."""

    def __init__(
        self,
        root: HtbClass,
        classifier: Optional[Classifier] = None,
        default_class: Optional[str] = None,
        queue_limit: int = 1000,
    ):
        self.root = root
        self.classifier = classifier if classifier is not None else Classifier()
        self.default_class = default_class
        self._classes: Dict[str, HtbClass] = {}
        self._index(root)
        self._leaves: List[HtbClass] = [c for c in self._classes.values() if c.is_leaf]
        self._rr_cursor = 0
        self._fresh_turn = True
        #: Raised by the kernel runtime under lock contention.
        self.refill_inflation = 1.0
        self.unclassified_drops = 0
        for leaf in self._leaves:
            leaf.queue.limit = queue_limit

    def _index(self, node: HtbClass) -> None:
        if node.classid in self._classes:
            raise PolicyError(f"duplicate HTB class {node.classid}")
        self._classes[node.classid] = node
        for child in node.children:
            self._index(child)

    # ------------------------------------------------------------------
    @classmethod
    def from_policy(
        cls,
        policy: PolicyConfig,
        queue_limit: int = 1000,
    ) -> "HtbQdisc":
        """Build the class tree + classifier from a tc policy."""
        qdisc_spec = policy.root_qdisc()
        top = policy.children_of(qdisc_spec.handle)
        if len(top) != 1:
            raise PolicyError("HTB needs exactly one top class")
        spec_map = {}

        def build(spec, parent):
            node = HtbClass(
                spec.classid,
                rate_bps=spec.rate if spec.rate > 0 else (spec.ceil or 1e9),
                ceil_bps=spec.ceil,
                parent=parent,
                queue_limit=queue_limit,
            )
            spec_map[spec.classid] = node
            for child_spec in policy.children_of(spec.classid):
                build(child_spec, node)
            return node

        root = build(top[0], None)
        default = None
        if qdisc_spec.default:
            major, _ = top[0].classid.split(":")
            default = f"{major}:{qdisc_spec.default:x}"
        return cls(root, Classifier(policy.filters), default_class=default, queue_limit=queue_limit)

    # ------------------------------------------------------------------
    def leaf_for(self, packet: Packet) -> Optional[HtbClass]:
        flowid = self.classifier.classify(packet) if len(self.classifier) else None
        if flowid is None:
            flowid = self.default_class
        if flowid is None:
            return None
        node = self._classes.get(flowid)
        if node is None or not node.is_leaf:
            return None
        return node

    def enqueue(self, packet: Packet, now: float) -> bool:
        leaf = self.leaf_for(packet)
        if leaf is None:
            self.unclassified_drops += 1
            packet.mark_dropped(DropReason.UNCLASSIFIED)
            return False
        return leaf.queue.push(packet)

    # ------------------------------------------------------------------
    def _refill_all(self, now: float) -> None:
        for node in self._classes.values():
            node.refill(now, self.refill_inflation)

    def _lender_for(self, leaf: HtbClass) -> Optional[HtbClass]:
        """The class whose rate tokens this leaf would consume, or
        ``None`` when the leaf can't send at all.

        Walk up from the leaf: the first CAN_SEND class lends; any
        CANT_SEND class on the way blocks (its ceiling binds).
        """
        node: Optional[HtbClass] = leaf
        while node is not None:
            mode = node.mode()
            if mode == "CANT_SEND":
                return None
            if mode == "CAN_SEND":
                return node
            node = node.parent
        return None

    def _advance_turn(self) -> None:
        self._rr_cursor += 1
        self._fresh_turn = True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._refill_all(now)
        n = len(self._leaves)
        if n == 0:
            return None
        # Classic deficit round robin: a leaf's *turn* starts with one
        # quantum top-up, and the leaf keeps being served across
        # dequeue calls until its deficit (or tokens, or queue) runs
        # out — that is what makes long-run shares proportional to the
        # quanta. (A serve-one-then-rotate loop degrades to plain
        # round robin.)
        for _ in range(2 * n + 1):
            leaf = self._leaves[self._rr_cursor % n]
            if self._fresh_turn:
                leaf.deficit += leaf.quantum
                self._fresh_turn = False
            packet = leaf.queue.peek()
            if packet is None:
                leaf.deficit = 0.0  # an empty queue forfeits its turn
                self._advance_turn()
                continue
            lender = self._lender_for(leaf)
            if lender is None:
                self._advance_turn()  # token-blocked; deficit carries
                continue
            size_bits = bits(packet.size)
            if leaf.deficit < size_bits:
                self._advance_turn()
                continue
            leaf.deficit -= size_bits
            leaf.queue.pop()
            # Kernel htb_charge_class walks the WHOLE ancestry: every
            # level's buckets account every packet, so a parent's rate
            # bounds its subtree's total (assured + borrowed) and the
            # root ceiling genuinely caps the hierarchy. (Charging only
            # up to the lender lets assured traffic bypass the root
            # bucket and oversubscribe it.)
            node: Optional[HtbClass] = leaf
            while node is not None:
                node.charge(size_bits)
                node = node.parent
            leaf.sent_packets += 1
            leaf.sent_bits += size_bits
            if lender is not leaf:
                leaf.borrowed_packets += 1
            return packet
        return None

    def _leaf_ready_time(self, leaf: HtbClass, now: float) -> float:
        """Earliest time a blocked *leaf* could send again.

        Two independent constraints must clear: every ceiling on the
        path that is in debt (ceilings bind absolutely), and token
        availability — either the leaf's own rate bucket or *some*
        ancestor's (a lender). A leaf deep in rate-bucket debt but
        under its ceiling wakes as soon as a lender has tokens, not
        when its own debt clears — that is exactly what borrowing is.
        """
        t_ceil = now
        node: Optional[HtbClass] = leaf
        while node is not None:
            t_ceil = max(t_ceil, node.ceil_recovery(now))
            node = node.parent
        t_lend = float("inf")
        node = leaf
        while node is not None:
            t_lend = min(t_lend, node.rate_recovery(now))
            node = node.parent
        return max(t_ceil, t_lend)

    def next_ready_time(self, now: float) -> Optional[float]:
        if self.backlog == 0:
            return None
        earliest: Optional[float] = None
        for leaf in self._leaves:
            if not len(leaf.queue):
                continue
            if self._lender_for(leaf) is not None:
                return now
            t = self._leaf_ready_time(leaf, now)
            earliest = t if earliest is None else min(earliest, t)
        if earliest is None or earliest <= now:
            return now + 1e-4
        return earliest

    @property
    def backlog(self) -> int:
        return sum(len(leaf.queue) for leaf in self._leaves)

    def class_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-class lifetime counters for reports."""
        return {
            c.classid: {
                "sent_packets": c.sent_packets,
                "sent_bits": c.sent_bits,
                "borrowed_packets": c.borrowed_packets,
                "tail_drops": c.queue.tail_drops,
            }
            for c in self._leaves
        }
