"""The kernel execution model around a qdisc.

A qdisc algorithm is only half the story — Fig. 3's inaccuracies come
from *how the kernel runs it* [23]:

* every enqueue and every dequeue takes the **global qdisc lock**; at
  multi-gigabit packet rates the lock itself saturates, capping
  throughput and stalling app threads;
* dequeue happens in **batched softirq quotas**, so rate checks act on
  slightly stale state;
* under contention, timestamps read by the token refill path lag
  reality, systematically over-crediting buckets — the ceiling
  overshoot (≈12 Gbit through a 10 Gbit root in the paper's Fig. 3).

:class:`KernelQdiscRuntime` models these as: a lock-op budget (ops/s),
per-packet CPU costs charged to app/softirq cores, a softirq drain
loop with watchdog timers, and a refill-inflation factor driven by the
measured lock utilisation (mechanism from [23], magnitude calibrated
to the paper's observation — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..net.link import Link
from ..net.packet import DropReason, Packet
from ..stats.rates import EwmaRate
from .qdisc_base import Qdisc

__all__ = ["KernelParams", "KernelQdiscRuntime"]


@dataclass(frozen=True)
class KernelParams:
    """Cost model of the kernel send path.

    Defaults describe a ~2.3 GHz core. ``lock_hold`` bounds the global
    qdisc lock to ~1.25 M ops/s — with one enqueue plus one dequeue
    per packet that caps a single qdisc near 625 k pps (≈7.7 Gbit of
    1518 B frames), which is why kernel HTB cannot drive 40 Gbit and
    struggles at 10 (§V's "omit tests on HTB above 10 Gbit").
    """

    #: CPU seconds charged to the sending app per enqueue.
    enqueue_cost: float = 1.1e-6
    #: CPU seconds charged to the softirq core per dequeue.
    dequeue_cost: float = 0.9e-6
    #: Global qdisc lock hold time per operation (enqueue or dequeue).
    #: 0.4 µs ⇒ 2.5 M lock ops/s: at 10 Gbit of 1518 B frames (833 k
    #: pps, one enqueue + one dequeue each) the lock runs at ~70% —
    #: busy enough to trigger the staleness inflation while leaving the
    #: inflated token grant (not the lock) as the binding constraint,
    #: which is what lets the >10 Gbit overshoot of Fig. 3 materialise.
    lock_hold: float = 0.4e-6
    #: Packets drained per softirq batch (dev_weight-ish quota).
    quota: int = 64
    #: Watchdog timer resolution: throttled-class wakeups round up.
    timer_resolution: float = 1e-4
    #: Refill inflation at full lock utilisation: the calibrated
    #: magnitude of the [23] staleness artifact (1.25 → up to +25%
    #: over-credit when the lock is saturated).
    inflation_at_saturation: float = 0.25
    #: EWMA time constant for the lock-utilisation estimate.
    utilization_tau: float = 0.05

    def scaled(self, rate_scale: float) -> "KernelParams":
        """Stretch all time constants for a rate-scaled experiment."""
        return replace(
            self,
            enqueue_cost=self.enqueue_cost * rate_scale,
            dequeue_cost=self.dequeue_cost * rate_scale,
            lock_hold=self.lock_hold * rate_scale,
            timer_resolution=self.timer_resolution * rate_scale,
            utilization_tau=self.utilization_tau * rate_scale,
        )


class KernelQdiscRuntime:
    """Drives a :class:`~repro.baselines.qdisc_base.Qdisc` the way the
    kernel does, and transmits onto a :class:`~repro.net.link.Link`.

    Parameters
    ----------
    sim: shared simulator.
    qdisc: the scheduling algorithm (PRIO, HTB, ...).
    link: egress wire.
    params: cost model (pre-scaled for rate-scaled experiments).
    softirq_core: optional CPU ledger for the dequeue path.
    on_drop: drop hook (feeds TCP loss signals).
    """

    def __init__(
        self,
        sim,
        qdisc: Qdisc,
        link: Link,
        params: Optional[KernelParams] = None,
        softirq_core=None,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ):
        self.sim = sim
        self.qdisc = qdisc
        self.link = link
        self.params = params if params is not None else KernelParams()
        self.softirq_core = softirq_core
        self.on_drop = on_drop
        #: Per-app CPU ledgers for the enqueue path.
        self._app_cores: Dict[str, object] = {}
        #: Lock utilisation estimator (fraction of time the lock is held).
        self._lock_load = EwmaRate(tau=self.params.utilization_tau)
        self._work_signal = None
        # --- statistics ------------------------------------------------
        self.enqueued = 0
        self.transmitted = 0
        self.dropped = 0
        self.lock_overrun_drops = 0
        self._lock_tokens = 1.0  # seconds of lock time available
        self._lock_refill_at = sim.now
        self._drain = sim.process(self._softirq())

    # ------------------------------------------------------------------
    def register_app_core(self, app: str, core) -> None:
        """Charge *app*'s enqueues to *core* from now on."""
        self._app_cores[app] = core

    @property
    def lock_utilization(self) -> float:
        """EWMA fraction of wall time the qdisc lock is held."""
        return min(1.0, self._lock_load.rate(self.sim.now))

    def _consume_lock(self, now: float) -> bool:
        """Take one lock slot; False when the lock budget is exhausted
        (the op would have had to spin — we model that as loss of the
        enqueue opportunity)."""
        hold = self.params.lock_hold
        # Replenish the budget: 1 second of lock time per second.
        dt = now - self._lock_refill_at
        if dt > 0:
            self._lock_tokens = min(0.01 + hold, self._lock_tokens + dt)
            self._lock_refill_at = now
        if self._lock_tokens < hold:
            return False
        self._lock_tokens -= hold
        self._lock_load.observe(now, hold)
        return True

    def _current_inflation(self) -> float:
        return 1.0 + self.params.inflation_at_saturation * self.lock_utilization

    # ------------------------------------------------------------------
    # enqueue path (called synchronously by senders)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """The app thread's qdisc enqueue: classify + queue under the
        global lock. Returns False when the packet was dropped."""
        now = self.sim.now
        core = self._app_cores.get(packet.app)
        if core is not None:
            core.charge(f"sched:enqueue:{packet.app}", self.params.enqueue_cost)
        if not self._consume_lock(now):
            self.lock_overrun_drops += 1
            self._drop(packet, DropReason.POLICER)
            return False
        accepted = self.qdisc.enqueue(packet, now)
        if accepted:
            self.enqueued += 1
            self._kick()
        else:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(packet)
        return accepted

    #: Alias so runtimes and NIC pipelines are interchangeable as
    #: sender targets.
    submit = enqueue

    def _drop(self, packet: Packet, reason: DropReason) -> None:
        if not packet.dropped:
            packet.mark_dropped(reason)
        self.dropped += 1
        if self.on_drop is not None:
            self.on_drop(packet)

    def _kick(self) -> None:
        signal = self._work_signal
        if signal is not None and not signal.triggered:
            self._work_signal = None
            signal.succeed()

    # ------------------------------------------------------------------
    # softirq drain loop
    # ------------------------------------------------------------------
    def _softirq(self):
        params = self.params
        while True:
            sent_in_batch = 0
            while sent_in_batch < params.quota:
                now = self.sim.now
                if hasattr(self.qdisc, "refill_inflation"):
                    self.qdisc.refill_inflation = self._current_inflation()
                if not self._consume_lock(now):
                    # Lock saturated: back off one hold time.
                    yield params.lock_hold
                    continue
                packet = self.qdisc.dequeue(now)
                if packet is None:
                    break
                if self.softirq_core is not None:
                    self.softirq_core.charge("sched:softirq", params.dequeue_cost)
                finish = self.link.send(packet)
                self.transmitted += 1
                sent_in_batch += 1
                # Pace at the slower of wire and CPU.
                yield max(finish - self.sim.now, params.dequeue_cost)
            # Batch over: wait for more work or the watchdog.
            ready = self.qdisc.next_ready_time(self.sim.now)
            if ready is None:
                self._work_signal = self.sim.event()
                yield self._work_signal
            elif ready > self.sim.now:
                # Watchdog wakeups land on the timer grid.
                delay = ready - self.sim.now
                remainder = delay % params.timer_resolution
                if remainder:
                    delay += params.timer_resolution - remainder
                yield delay
            else:
                # More work immediately; loop (yield 0 keeps fairness).
                yield 0.0

    # ------------------------------------------------------------------
    def stats_summary(self) -> str:
        """One-line status for reports."""
        return (
            f"kernel-qdisc: enq={self.enqueued} tx={self.transmitted} "
            f"drop={self.dropped} lock_overrun={self.lock_overrun_drops} "
            f"lock_util={self.lock_utilization:.2f} backlog={self.qdisc.backlog}"
        )
