"""The ``fv`` command-line tool.

FlowValve's shell interface (paper §III-E) inherits ``tc`` option
syntax. The CLI works on script files so a policy can be versioned and
replayed:

.. code-block:: console

   $ fv check policy.fv --link 10gbit       # parse + validate
   $ fv show policy.fv --link 10gbit        # print the scheduling tree
   $ fv simulate policy.fv --link 10gbit \\
        --app NC=2gbit --app WS=8gbit --duration 10
                                             # software-mode what-if run
   $ fv campaign run fig13 --workers 4      # parallel experiment grid
   $ fv campaign status --manifest campaign.manifest.jsonl
   $ fv bench --baseline BENCH_hotpath.json # hot-path perf + regression gate

``simulate`` runs the policy in software mode against constant-rate
app demands and prints the achieved rate per app — a quick what-if
evaluator for policy authors. ``campaign`` fans registered experiment
specs (``fv campaign list``) over a worker-process pool with caching,
timeouts, and a JSONL manifest (DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional

from .core import FlowValve
from .core.scheduling import Verdict
from .core.sched_tree import SchedulingParams
from .errors import ParseError, ReproError
from .net import FiveTuple, PacketFactory
from .tc.parser import parse_script
from .tc.validate import validate_policy
from .units import format_rate, parse_rate

__all__ = ["main", "build_parser"]

DEFAULT_MANIFEST = "campaign.manifest.jsonl"
DEFAULT_CACHE_DIR = ".fv-cache"


def _link_parent(explicit: bool = False) -> argparse.ArgumentParser:
    """Shared ``--link`` flag. With ``explicit=True`` the flag has no
    default, so only user-supplied values appear in the namespace."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--link",
        default=argparse.SUPPRESS if explicit else "10gbit",
        help="link rate" + ("" if explicit else " (default 10gbit)"),
    )
    return parent


def _sim_parent(explicit: bool = False) -> argparse.ArgumentParser:
    """Shared simulation knobs (``--seed/--scale/--duration``) used by
    ``fv simulate`` and ``fv campaign run``. With ``explicit=True``
    defaults are suppressed so the campaign only overrides grid axes
    the user actually named."""
    parent = argparse.ArgumentParser(add_help=False)

    def _default(value: Any) -> Any:
        return argparse.SUPPRESS if explicit else value

    parent.add_argument(
        "--seed", type=int, default=_default(7),
        help="simulation seed" + ("" if explicit else " (default 7)"),
    )
    parent.add_argument(
        "--scale", type=float, default=_default(100.0),
        help="rate-scale divisor (see DESIGN.md §1)"
        + ("" if explicit else " (default 100)"),
    )
    parent.add_argument(
        "--duration", type=float, default=_default(10.0),
        help="simulated seconds" + ("" if explicit else " (default 10)"),
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="fv",
        description="FlowValve policy tool: validate, inspect and simulate fv scripts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", parents=[_link_parent()],
        help="parse and validate a policy script",
    )
    check.add_argument("script", help="path to the fv script")

    show = sub.add_parser(
        "show", parents=[_link_parent()],
        help="print the scheduling tree of a policy",
    )
    show.add_argument("script", help="path to the fv script")

    simulate = sub.add_parser(
        "simulate", parents=[_link_parent(), _sim_parent()],
        help="software-mode what-if run",
    )
    simulate.add_argument("script", help="path to the fv script")
    simulate.add_argument(
        "--app", action="append", default=[], metavar="NAME=RATE",
        help="offered load per app, e.g. --app KVS=9gbit (repeatable)",
    )
    simulate.add_argument("--packet-size", type=int, default=1500,
                          help="frame size in bytes (default 1500)")
    simulate.add_argument(
        "--nic", action="store_true",
        help="run the full DES NIC pipeline (workers, reorder, Tx ring, "
             "wire) instead of the software-mode what-if loop",
    )
    simulate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the structured event trace as JSONL (implies --nic)",
    )
    simulate.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write periodic metrics snapshots as JSONL (implies --nic)",
    )
    simulate.add_argument(
        "--trace-limit", type=int, default=0,
        help="cap on stored trace records, oldest evicted (0 = unlimited)",
    )
    simulate.add_argument(
        "--scheduler", default="flowvalve", metavar="NAME",
        help="crossbar scheduler to run the policy on (default flowvalve; "
             "see repro.sched.registry — htb, prio, dpdk_qos, fifo, "
             "pfabric, srpt, wfq). Non-default schedulers run on the "
             "ScheduledPort DES runtime",
    )
    simulate.add_argument(
        "--backend", default="pifo", choices=("pifo", "eiffel"),
        help="queue backend for rank-program schedulers (default pifo)",
    )
    simulate.add_argument(
        "--hosts", type=int, default=1, metavar="N",
        help="simulate a ring fabric of N identical hosts, each running "
             "the policy against the --app demands, every NIC's wire "
             "terminating at the next host's sink (default 1: the "
             "classic single-NIC testbed)",
    )
    simulate.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the fabric over N worker processes with the "
             "conservative-window barrier protocol; results are "
             "byte-identical for every N (default 1: inline)",
    )
    simulate.add_argument(
        "--wire-delay", type=float, default=5e-5, metavar="SECONDS",
        help="nominal inter-host propagation delay; its scaled value is "
             "the shard planner's lookahead (default 5e-5)",
    )
    simulate.add_argument(
        "--workload", default=None, choices=("kvs", "ml", "web"),
        help="drive each --app with the batched heavy-tailed trace "
             "workload of this preset (Poisson flow arrivals, bounded-"
             "Pareto sizes; DESIGN.md §12) through the full DES NIC "
             "pipeline, instead of a constant-rate sender; the --app "
             "RATE becomes the app's offered load. Single-host, "
             "flowvalve-scheduler only",
    )
    simulate.add_argument(
        "--no-fluid", action="store_true",
        help="disable the fluid fast-forward lane (NicConfig.fluid=False). "
             "Every reported tally is bit-identical either way — the lane "
             "only cuts kernel events — so diffing the two stdouts is a "
             "determinism check (the CI fabric fluid-smoke step)",
    )

    bench = sub.add_parser(
        "bench", parents=[_sim_parent(explicit=True)],
        help="hot-path microbenchmark: kernel events/sec, packets/sec",
    )
    bench.add_argument(
        "--out", default="BENCH_hotpath.json", metavar="JSON",
        help="result artifact path (default BENCH_hotpath.json; "
             "BENCH_megaflow.json with --workload trace)",
    )
    bench.add_argument(
        "--workload", default="hotpath", choices=("hotpath", "trace"),
        help="bench workload: the fig11a hot path (default), or the "
             "E-MEGAFLOW million-flow batched heavy-tailed trace "
             "(--workload trace): deterministic counters on stdout, "
             "wall time on stderr, and the artifact records the "
             "workload so --baseline gates compare like with like",
    )
    bench.add_argument(
        "--profile", default=None, metavar="OUT.pstats",
        help="also profile the run with cProfile and dump stats here",
    )
    bench.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the workload N times (fresh build each time) and "
             "report median/min wall time; events/packet is checked "
             "identical across repeats (default 1)",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="committed BENCH json to regress against: exit 1 when "
             "events/packet exceeds the baseline by more than the "
             "tolerance (the ratio is deterministic per seed, so this "
             "works across machines)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.02,
        help="allowed relative events/packet increase vs --baseline "
             "(default 0.02)",
    )
    bench.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="bench the sharded fabric engine on N worker processes "
             "(an 8-host ring) instead of the single-NIC hot path; "
             "the artifact records the shard count so the --baseline "
             "gate only compares like with like (default 1)",
    )
    bench.add_argument(
        "--hosts", type=int, default=8, metavar="N",
        help="fabric size for --shards > 1 (default 8)",
    )

    campaign = sub.add_parser(
        "campaign", help="run experiment grids on a worker pool",
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    clist = csub.add_parser("list", help="list registered experiment specs")
    clist.add_argument("--verbose", action="store_true",
                       help="also show defaults and result schema")

    crun = csub.add_parser(
        "run", parents=[_link_parent(explicit=True), _sim_parent(explicit=True)],
        help="expand spec grids into tasks and run them in parallel",
    )
    crun.add_argument("specs", nargs="+", metavar="SPEC",
                      help="registered spec name(s); see `fv campaign list`")
    crun.add_argument("--workers", type=int, default=1,
                      help="worker processes (0 = run inline; default 1)")
    crun.add_argument("--timeout", type=float, default=None,
                      help="per-task wall-clock budget in seconds")
    crun.add_argument("--retries", type=int, default=2,
                      help="retry budget for transient failures (default 2)")
    crun.add_argument("--backoff", type=float, default=0.5,
                      help="base retry backoff in seconds, doubled per "
                           "attempt (default 0.5)")
    crun.add_argument(
        "--set", action="append", default=[], metavar="KEY=V1,V2",
        help="override a grid axis, e.g. --set seed=11,12 or "
             "--set sizes=[1518,512] (repeatable)",
    )
    crun.add_argument("--manifest", default=DEFAULT_MANIFEST,
                      help=f"JSONL manifest path (default {DEFAULT_MANIFEST})")
    crun.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                      help=f"result cache directory (default {DEFAULT_CACHE_DIR})")
    crun.add_argument("--no-cache", action="store_true",
                      help="disable the content-addressed result cache")
    crun.add_argument("--tables", action="store_true",
                      help="render each task's result table after the summary")

    cstatus = csub.add_parser(
        "status", help="summarise a campaign manifest (works on live files)",
    )
    cstatus.add_argument("--manifest", default=DEFAULT_MANIFEST,
                         help=f"JSONL manifest path (default {DEFAULT_MANIFEST})")
    return parser


def _load_policy(path: str):
    with open(path) as handle:
        text = handle.read()
    policy = parse_script(text)
    validate_policy(policy)
    return policy


def _cmd_check(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    link = parse_rate(args.link)
    FlowValve(policy, link_rate_bps=link)  # builds the tree too
    print(
        f"OK: {len(policy.classes)} classes, {len(policy.filters)} filters, "
        f"link {format_rate(link)}"
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    valve = FlowValve(policy, link_rate_bps=parse_rate(args.link))
    print(valve.describe())
    return 0


def _parse_apps(specs: List[str]) -> Dict[str, float]:
    """Parse repeated ``--app NAME=RATE`` flags.

    Raises :class:`SystemExit` (usage errors, exit code 2) on duplicate
    app names, malformed specs, and unparseable rate suffixes so the
    shell sees the conventional bad-arguments status.
    """
    demands: Dict[str, float] = {}
    for spec in specs:
        name, sep, rate_text = spec.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"fv simulate: error: --app expects NAME=RATE, got {spec!r}"
            )
        if name in demands:
            raise SystemExit(
                f"fv simulate: error: duplicate app name {name!r} in --app "
                f"flags; each app may be given once"
            )
        try:
            demands[name] = parse_rate(rate_text)
        except ParseError as exc:
            raise SystemExit(
                f"fv simulate: error: bad rate for app {name!r}: {exc}"
            ) from None
    if not demands:
        raise SystemExit(
            "fv simulate: error: simulate needs at least one --app NAME=RATE"
        )
    return demands


def _cmd_simulate(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    link = parse_rate(args.link)
    demands = _parse_apps(args.app)
    if getattr(args, "workload", None):
        if args.hosts > 1 or args.shards > 1:
            raise ReproError(
                "--workload is single-host, single-shard only (one "
                "trace engine drives one NIC pipeline)"
            )
        if getattr(args, "scheduler", "flowvalve") != "flowvalve":
            raise ReproError(
                "--workload requires the flowvalve scheduler (the trace "
                "engine feeds the full DES NIC pipeline); "
                f"--scheduler {args.scheduler} runs the crossbar runtime"
            )
        if args.trace or args.metrics:
            raise ReproError(
                "--trace/--metrics are not supported with --workload "
                "(the trace engine's lazy trains bypass per-event "
                "observability by design)"
            )
        return _cmd_simulate_workload(args, policy, link, demands)
    if args.hosts > 1 or args.shards > 1:
        if args.trace or args.metrics:
            raise ReproError(
                "--trace/--metrics are single-host, single-shard only "
                "(one tracer per simulator; workers cannot share a file)"
            )
        return _cmd_simulate_fabric(args, policy, link, demands)
    if getattr(args, "scheduler", "flowvalve") != "flowvalve":
        # Crossbar schedulers run on the ScheduledPort DES runtime;
        # trace/metrics plumbing currently lives in the FlowValve NIC
        # pipeline only.
        if args.trace or args.metrics or args.nic:
            raise ReproError(
                "--trace/--metrics/--nic require the flowvalve scheduler; "
                f"--scheduler {args.scheduler} runs the crossbar DES runtime"
            )
        return _cmd_simulate_sched(args, policy, link, demands)
    if args.nic or args.trace or args.metrics:
        # Observability lives in the DES pipeline (queues, workers,
        # traffic manager), so --trace/--metrics imply --nic.
        return _cmd_simulate_nic(args, policy, link, demands)
    # Scale the update epochs so each holds a healthy packet count at
    # the requested link rate.
    pps = link / ((args.packet_size + 20) * 8)
    interval = max(0.001, 200.0 / pps)
    params = SchedulingParams(update_interval=interval, expire_after=10 * interval)
    valve = FlowValve(policy, link_rate_bps=link, params=params)

    import heapq

    factory = PacketFactory()
    flows = {
        app: FiveTuple(f"10.0.0.{i + 1}", "10.0.1.1", 40000 + i, 5001)
        for i, app in enumerate(sorted(demands))
    }
    forwarded = {app: 0 for app in demands}
    size_bits = (args.packet_size + 20) * 8
    heap = [(0.0, app) for app in sorted(demands)]
    heapq.heapify(heap)
    while heap:
        t, app = heapq.heappop(heap)
        if t >= args.duration:
            continue
        packet = factory.make(args.packet_size, flows[app], t, app=app)
        if valve.process(packet, t) is Verdict.FORWARD:
            forwarded[app] += 1
        heapq.heappush(heap, (t + size_bits / demands[app], app))

    # A zero/negative duration simulates nothing; report zeros instead
    # of dividing by it.
    elapsed = args.duration if args.duration > 0 else float("inf")
    print(f"simulated {args.duration:.1f}s at link {format_rate(link)}:")
    for app in sorted(demands):
        achieved = forwarded[app] * size_bits / elapsed
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sum(forwarded.values()) * size_bits / elapsed
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    return 0


def _simulate_topology(args: argparse.Namespace, policy, demands: Dict[str, float]):
    """The CLI's world declaration: ``--hosts`` identical domains, each
    running *policy* against constant-rate ``--app`` demands, ring-wired
    when there is more than one.

    Demands are plain callables (no ``next_change`` attribute) — the
    historical CLI behaviour, which keeps senders on the eventful
    per-packet path rather than the precomputed burst path.
    """
    from .topology import Topology

    topo = Topology()
    hosts = args.hosts
    for i in range(hosts):
        topo.nic(
            f"nic{i}", policy=policy,
            scheduler=getattr(args, "scheduler", "flowvalve"),
            backend=getattr(args, "backend", "pifo"),
            fluid=not getattr(args, "no_fluid", False),
        )
        topo.host(f"host{i}", nic=f"nic{i}")
        for app in sorted(demands):
            topo.app(f"host{i}", app, demand=(lambda t, rate=demands[app]: rate))
        if hosts > 1:
            topo.wire(
                f"nic{i}", to=f"nic{(i + 1) % hosts}",
                propagation_delay=args.wire_delay,
            )
    return topo


def _cmd_simulate_nic(args: argparse.Namespace, policy, link: float, demands: Dict[str, float]) -> int:
    """``fv simulate --nic``: the full DES pipeline, rate-scaled.

    A thin adapter over :mod:`repro.topology` — declares a one-host
    :class:`~repro.topology.Topology`, builds it through the shared
    domain builder (the same assembly, and event stream, the figure
    reproductions use), and optionally dumps the raw observability
    streams (``--trace``: per-event JSONL; ``--metrics``: periodic
    registry snapshots) that the achieved-rate report is computed from.
    """
    from .topology import ScaledSetup, SimulationSpec
    from .topology.build import build_domains

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive, got {args.scale}")
    setup = ScaledSetup.for_link(link, scale=args.scale, seed=args.seed)
    spec = SimulationSpec(
        topology=_simulate_topology(args, policy, demands),
        setup=setup,
        duration=args.duration,
        packet_size=args.packet_size,
        trace_path=args.trace,
        metrics_path=args.metrics,
        trace_limit=args.trace_limit,
        # The CLI samples 100 snapshots per run (not per report bin).
        metrics_interval=(args.duration / 100.0 if args.duration > 0 else None),
    )
    [built] = build_domains(spec, [0])
    sim, sink, nic = built.sim, built.sink, built.nic
    sim.run(until=args.duration)

    elapsed = args.duration if args.duration > 0 else float("inf")
    print(
        f"simulated {args.duration:.1f}s at link {format_rate(link)} "
        f"(nic mode, scale=1/{setup.scale:g}, seed={setup.seed}):"
    )
    for app in sorted(demands):
        achieved = sink.bytes[app] * 8 / elapsed * setup.scale
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sink.total_bytes * 8 / elapsed * setup.scale
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    print(f"  {nic.stats_summary()}")
    if built.tracer is not None:
        count = built.tracer.to_jsonl(args.trace)
        print(f"  trace: {count} records -> {args.trace}")
    if built.registry is not None:
        if built.sampler is not None and args.duration > 0:
            built.sampler.sample()  # final snapshot at t=end
            count = built.sampler.to_jsonl(args.metrics)
        else:
            from .stats.metrics import write_jsonl

            count = write_jsonl(args.metrics, [{"time": sim.now, **built.registry.snapshot()}])
        print(f"  metrics: {count} snapshots -> {args.metrics}")
    return 0


def _cmd_simulate_workload(args: argparse.Namespace, policy, link: float, demands: Dict[str, float]) -> int:
    """``fv simulate --workload PRESET``: heavy-tailed trace demand.

    Each ``--app NAME=RATE`` becomes a batched
    :class:`~repro.host.TraceWorkload` (Poisson flow arrivals,
    bounded-Pareto sizes — DESIGN.md §12) offering RATE through the
    full DES NIC pipeline, instead of a backlogged constant-rate
    sender. The sink runs in sketch mode, so the report stays
    constant-memory at any flow count.
    """
    from dataclasses import replace as dc_replace

    from .core import FlowValveFrontend
    from .experiments.base import ScaledSetup
    from .host import TraceWorkload, WORKLOAD_PRESETS
    from .net import PacketSink
    from .nic import NicPipeline
    from .sim import Simulator

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive, got {args.scale}")
    setup = ScaledSetup.for_link(link, scale=args.scale, seed=args.seed)
    sim = Simulator(seed=setup.seed)
    frontend = FlowValveFrontend(
        policy, link_rate_bps=setup.link_bps, params=setup.sched_params()
    )
    sink = PacketSink(
        sim, rate_window=1.0, record_delays=True,
        stats_mode="sketch", fold_interval=1.0,
    )
    nic = NicPipeline.with_flowvalve(
        sim,
        setup.nic_config(
            fluid=not args.no_fluid, fluid_classify=not args.no_fluid
        ),
        frontend,
        receiver=sink.receive,
    )
    factory = PacketFactory()
    preset = WORKLOAD_PRESETS[args.workload]
    profile = dc_replace(
        preset, flow_rate_limit_bps=preset.flow_rate_limit_bps / setup.scale
    )
    workloads = [
        TraceWorkload(
            sim, app, profile, demands[app] / setup.scale, nic.submit,
            factory, vf_index=index, duration=args.duration, mode="batched",
        )
        for index, app in enumerate(sorted(demands))
    ]
    sim.run(until=args.duration)

    elapsed = args.duration if args.duration > 0 else float("inf")
    print(
        f"simulated {args.duration:.1f}s at link {format_rate(link)} "
        f"(workload={args.workload}, scale=1/{setup.scale:g}, "
        f"seed={setup.seed}):"
    )
    for app in sorted(demands):
        achieved = sink.bytes[app] * 8 / elapsed * setup.scale
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sink.total_bytes * 8 / elapsed * setup.scale
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    print(
        f"  flows: started={sum(w.flows_started for w in workloads)} "
        f"completed={sum(w.flows_completed for w in workloads)} "
        f"windows={sum(w.windows_generated for w in workloads)}"
    )
    delay = sink.latency_summary().scaled(1.0 / setup.scale)
    print(
        f"  delay: p50={delay.p50 * 1e6:.1f}us p99={delay.p99 * 1e6:.1f}us "
        f"(nominal, sketch)"
    )
    print(f"  {nic.stats_summary()}")
    return 0


def _cmd_simulate_fabric(args: argparse.Namespace, policy, link: float, demands: Dict[str, float]) -> int:
    """``fv simulate --hosts N [--shards K]``: the sharded fabric.

    Everything on stdout is deterministic for a fixed seed and
    *identical for every shard count* (the engine's contract); the
    wall-clock/worker line goes to stderr so shard counts can be
    diff-checked: ``fv simulate ... --shards 2 2>/dev/null``.
    """
    from .topology import ScaledSetup, SimulationSpec

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive, got {args.scale}")
    if args.hosts < 1:
        raise ReproError(f"--hosts must be at least 1, got {args.hosts}")
    if args.shards < 1:
        raise ReproError(f"--shards must be at least 1, got {args.shards}")
    setup = ScaledSetup.for_link(link, scale=args.scale, seed=args.seed)
    spec = SimulationSpec(
        topology=_simulate_topology(args, policy, demands),
        setup=setup,
        duration=args.duration,
        packet_size=args.packet_size,
        title=f"fv simulate fabric ({args.hosts} hosts)",
        shards=args.shards,
    )
    result = spec.run()

    print(
        f"simulated {args.duration:.1f}s at link {format_rate(link)} "
        f"(fabric: {args.hosts} hosts, scale=1/{setup.scale:g}, "
        f"seed={setup.seed}):"
    )
    total = 0.0
    for app in sorted(demands):
        achieved = result.throughput_bps(app)
        total += achieved
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}/host"
            f"  achieved {format_rate(achieved):>12s} aggregate"
        )
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    print(
        f"  delivered={result.total_packets} "
        f"drops={result.total_dropped}/{result.total_submitted} "
        f"windows={result.windows}"
        + (" [degraded: zero lookahead]" if result.degraded else "")
    )
    print(
        f"shards={result.shards} workers={min(result.shards, args.hosts)} "
        f"wall={result.wall_seconds:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_simulate_sched(args: argparse.Namespace, policy, link: float, demands: Dict[str, float]) -> int:
    """``fv simulate --scheduler NAME``: the crossbar DES runtime.

    Builds the named scheduler from the policy, drives it on a
    :class:`~repro.sched.runtime.ScheduledPort` against constant-rate
    senders, and prints achieved rates — the what-if evaluator for any
    scheduler the registry knows.
    """
    from .experiments.base import ScaledSetup, _scale_demand
    from .experiments.crossbar import WORKER_FREQ_HZ
    from .host import FixedRateSender
    from .net import Link, PacketSink
    from .sched import ScheduledPort, build_scheduler
    from .sim import Simulator

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive, got {args.scale}")
    setup = ScaledSetup.for_link(link, scale=args.scale, seed=args.seed)
    sim = Simulator(seed=setup.seed)
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    wire = Link(sim, setup.scaled_wire_bps, receiver=sink.receive)
    sched = build_scheduler(
        args.scheduler, policy, setup.link_bps,
        backend=args.backend, params=setup.sched_params(),
    )
    port = ScheduledPort(sim, sched, wire, freq_hz=WORKER_FREQ_HZ / setup.scale)
    factory = PacketFactory()
    for index, app in enumerate(sorted(demands)):
        FixedRateSender(
            sim, app, factory, port.submit,
            rate_bps=setup.sender_rate(),
            packet_size=args.packet_size,
            demand=_scale_demand(lambda t, rate=demands[app]: rate, setup.scale),
            vf_index=index,
            jitter=0.1,
            rng=sim.random.stream(app),
        )
    sim.run(until=args.duration)

    elapsed = args.duration if args.duration > 0 else float("inf")
    print(
        f"simulated {args.duration:.1f}s at link {format_rate(link)} "
        f"(scheduler={args.scheduler}, backend={args.backend}, "
        f"scale=1/{setup.scale:g}, seed={setup.seed}):"
    )
    for app in sorted(demands):
        achieved = sink.bytes[app] * 8 / elapsed * setup.scale
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sink.total_bytes * 8 / elapsed * setup.scale
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    print(f"  {port.stats_summary()}")
    print(f"  {sched.describe()}")
    return 0


# ----------------------------------------------------------------------
# fv bench
# ----------------------------------------------------------------------
def _cmd_bench(args: argparse.Namespace) -> int:
    """``fv bench``: the E-PERF hot-path microbenchmark from the shell.

    Runs the same seeded Fig. 11(a) workload as
    ``benchmarks/test_bench_hotpath.py`` (builder shared through
    :mod:`repro.experiments.hotpath`), prints the one-line summary and
    persists the JSON artifact. With ``--baseline`` it doubles as the
    CI regression gate on the deterministic events/packet ratio.
    """
    import json
    import os
    import platform
    import statistics
    from dataclasses import replace as dc_replace

    from .experiments import hotpath
    from .stats.perf import measure_run, write_json

    # The shared flags use suppressed defaults; the bench's canonical
    # point is the recorded reference config (seed 7, scale 200, 20 s).
    shards = getattr(args, "shards", 1)
    hosts = getattr(args, "hosts", 8)
    workload = getattr(args, "workload", "hotpath")
    fabric_mode = shards > 1
    trace_mode = workload == "trace"
    if fabric_mode and trace_mode:
        raise ReproError(
            "--workload trace is single-NIC only (the megaflow trace "
            "engine drives one pipeline); drop --shards"
        )
    seed = getattr(args, "seed", hotpath.DEFAULT_SETUP.seed)
    repeat = getattr(args, "repeat", 1)
    if fabric_mode:
        from .experiments import fabric

        scale = getattr(args, "scale", fabric.DEFAULT_SETUP.scale)
        duration = getattr(args, "duration", 2.0)
    elif trace_mode:
        from .experiments import megaflow

        scale = getattr(args, "scale", megaflow.DEFAULT_SETUP.scale)
        duration = getattr(args, "duration", megaflow.DEFAULT_DURATION)
    else:
        scale = getattr(args, "scale", hotpath.DEFAULT_SETUP.scale)
        duration = getattr(args, "duration", hotpath.DEFAULT_DURATION)
    # The artifact name follows the workload unless the user chose one.
    out = args.out
    if trace_mode and out == "BENCH_hotpath.json":
        out = "BENCH_megaflow.json"
    if scale <= 0:
        raise ReproError(f"--scale must be positive, got {scale}")
    if duration <= 0:
        raise ReproError(f"--duration must be positive, got {duration}")
    if repeat < 1:
        raise ReproError(f"--repeat must be at least 1, got {repeat}")
    if shards < 1:
        raise ReproError(f"--shards must be at least 1, got {shards}")
    if fabric_mode and args.profile:
        raise ReproError(
            "--profile is single-shard only (profiling the coordinator "
            "process would miss the workers doing the actual simulation)"
        )
    workers = min(shards, hosts) if fabric_mode else 1

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    # Each repeat rebuilds the world from the seed: wall time varies
    # with the machine, but events/packets must not — a fixed seed is
    # the whole point of the events/packet gate.
    results = []
    if fabric_mode:
        from .stats.perf import HotpathResult

        label = f"fabric{hosts}-shards{shards}-scale{scale:g}-{duration:g}s"
        fabric_setup = dc_replace(fabric.DEFAULT_SETUP, scale=scale, seed=seed)
        for _ in range(repeat):
            fr = fabric.run(
                fabric_setup, hosts=hosts, shards=shards, duration=duration,
            )
            safe_wall = fr.wall_seconds if fr.wall_seconds > 0 else float("inf")
            results.append(
                HotpathResult(
                    label=label,
                    wall_seconds=fr.wall_seconds,
                    events=fr.total_events,
                    packets=fr.total_packets,
                    events_per_sec=fr.total_events / safe_wall,
                    packets_per_sec=fr.total_packets / safe_wall,
                    events_per_packet=(
                        fr.total_events / fr.total_packets
                        if fr.total_packets else 0.0
                    ),
                )
            )
    elif trace_mode:
        mf_setup = dc_replace(megaflow.DEFAULT_SETUP, scale=scale, seed=seed)
        for _ in range(repeat):
            if profiler is not None:
                mr = profiler.runcall(
                    megaflow.run, mf_setup, duration=duration
                )
            else:
                mr = megaflow.run(mf_setup, duration=duration)
            results.append(mr.perf)
    else:
        setup = dc_replace(hotpath.DEFAULT_SETUP, scale=scale, seed=seed)
        label = f"fig11a-scale{setup.scale:g}-{duration:g}s"
        for _ in range(repeat):
            sim, nic = hotpath.build(setup)
            run = lambda: sim.run(until=duration)  # noqa: E731 - tiny closure
            if profiler is not None:
                inner = run
                run = lambda: profiler.runcall(inner)  # noqa: E731
            results.append(measure_run(sim, run, lambda: nic.submitted, label=label))
    if profiler is not None:
        profiler.dump_stats(args.profile)

    first = results[0]
    for r in results[1:]:
        if (r.events, r.packets) != (first.events, first.packets):
            raise ReproError(
                "nondeterministic bench run: "
                f"{r.events}/{r.packets} events/packets vs "
                f"{first.events}/{first.packets} on an identical seed"
            )
    walls = sorted(r.wall_seconds for r in results)
    wall_median = statistics.median(walls)
    wall_min = walls[0]
    # The reported result uses the median wall (robust against a cold
    # first run); events/packets/ratio are identical in every repeat.
    result = dc_replace(
        first,
        wall_seconds=wall_median,
        events_per_sec=first.events / wall_median if wall_median > 0 else 0.0,
        packets_per_sec=first.packets / wall_median if wall_median > 0 else 0.0,
    )
    if trace_mode:
        # Everything on stdout is deterministic for a fixed seed (the
        # fabric-simulate convention); wall-clock facts go to stderr so
        # two runs can be diff-checked: `fv bench --workload trace
        # 2>/dev/null`.
        print(
            f"megaflow[{result.label}]: events={result.events} "
            f"packets={result.packets} "
            f"events/packet={result.events_per_packet:.3f}"
        )
        print(
            f"  flows={mr.flows} completed={mr.flows_completed} "
            f"delivered={mr.delivered} dropped={mr.dropped} "
            f"windows={mr.windows}"
        )
        print(
            f"  emc: hits={mr.emc_hits} misses={mr.emc_misses} "
            f"evictions={mr.emc_evictions} "
            f"hit_ratio={mr.emc_hit_ratio:.3f}"
        )
        print(
            f"  delay: p50={mr.delay.p50 * 1e6:.1f}us "
            f"p99={mr.delay.p99 * 1e6:.1f}us (nominal) "
            f"sketch_bins={mr.sketch_bins}"
        )
        print(
            f"wall={wall_median:.2f}s peak_rss="
            f"{mr.peak_rss_kib // 1024}MiB repeats={repeat}",
            file=sys.stderr,
        )
    else:
        print(result.summary())
        if repeat > 1:
            print(
                f"repeats: {repeat} (wall median={wall_median:.2f}s "
                f"min={wall_min:.2f}s)"
            )

    extra = {
        "seed": seed,
        "shards": shards,
        "workload": workload,
        "workers": workers,
        "repeat": repeat,
        "wall_seconds_all": [r.wall_seconds for r in results],
    }
    if fabric_mode:
        # Lane and per-domain/per-shard breakdowns (deterministic, same
        # in every repeat) so the regression gate can localize which
        # domain's lane disengaged, not just see the total ratio move.
        domain_events = fr.domain_events
        names = list(domain_events)
        base, leftover = divmod(len(names), max(workers, 1))
        shard_events: List[int] = []
        cursor = 0
        for shard_index in range(max(workers, 1)):
            count = base + (1 if shard_index < leftover else 0)
            shard_events.append(
                sum(domain_events[name] for name in names[cursor:cursor + count])
            )
            cursor += count
        extra.update({
            "hosts": hosts,
            "fluid_absorbed": fr.fluid_absorbed,
            "fluid_spills": fr.fluid_spills,
            "fluid_suspends": fr.fluid_suspends,
            "domain_events": domain_events,
            # Contiguous-block partition, mirroring ShardPlan.build.
            "shard_events": shard_events,
        })
    elif trace_mode:
        # Flow/cache/sketch tallies — deterministic, same in every
        # repeat (peak RSS is process-lifetime, recorded for the bench
        # memory bound rather than the gate).
        extra.update(mr.extra())
    else:
        # Seed-code reference ratios only make sense for the canonical
        # single-NIC hot-path workload.
        extra.update({
            "seed_events": hotpath.SEED_EVENTS,
            "seed_packets": hotpath.SEED_PACKETS,
            "seed_pkt_per_sec_ref": hotpath.SEED_PKT_PER_SEC,
            "speedup_pkt_per_sec_vs_seed": (
                result.packets_per_sec / hotpath.SEED_PKT_PER_SEC
            ),
            "kernel_events_cut_vs_seed": (
                hotpath.SEED_EVENTS / result.events if result.events else 0.0
            ),
        })
    extra.update({
        "wall_seconds_median": wall_median,
        "wall_seconds_min": wall_min,
        # Wall-dependent rates only compare like-for-like on the same
        # host/interpreter; record both next to the numbers.
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python_implementation": platform.python_implementation(),
            "python_version": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    })
    write_json(out, result, extra=extra)
    print(f"artifact: {out}")
    if args.profile:
        print(f"profile: {args.profile}")

    if args.baseline is not None:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        base_workload = baseline.get("workload", "hotpath")
        if base_workload != workload:
            # Same reasoning as the shards skip below: the hot path and
            # the megaflow trace have different events/packet ratios by
            # design, so a cross-workload comparison means nothing.
            print(
                f"baseline {args.baseline}: recorded for workload="
                f"{base_workload}, this run used --workload {workload}; "
                "skipping the events/packet gate (ratios only compare "
                "like with like)"
            )
            return 0
        base_shards = baseline.get("shards", 1)
        if base_shards != shards:
            # Different workloads (single-NIC hot path vs. sharded
            # fabric) have different events/packet ratios by design.
            print(
                f"baseline {args.baseline}: recorded at shards={base_shards}, "
                f"this run used --shards {shards}; skipping the "
                "events/packet gate (ratios only compare like with like)"
            )
            return 0
        base_epp = baseline["events_per_packet"]
        limit = base_epp * (1.0 + args.tolerance)
        delta = (result.events_per_packet - base_epp) / base_epp if base_epp else 0.0
        verdict = "ok" if result.events_per_packet <= limit else "REGRESSION"
        print(
            f"baseline {args.baseline}: events/packet "
            f"{base_epp:.3f} -> {result.events_per_packet:.3f} "
            f"({delta:+.2%}, tolerance {args.tolerance:.0%}): {verdict}"
        )
        if result.events_per_packet > limit:
            return 1
    return 0


# ----------------------------------------------------------------------
# fv campaign
# ----------------------------------------------------------------------
def _split_grid_values(text: str) -> List[str]:
    """Split a ``--set`` value list on top-level commas only, so
    ``sizes=[1518,512]`` stays one (list-valued) grid point while
    ``seed=11,12`` becomes two."""
    parts: List[str] = []
    current: List[str] = []
    depth = 0
    for ch in text:
        if ch in "[({":
            depth += 1
        elif ch in "])}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _coerce_value(text: str) -> Any:
    """Best-effort literal parse (ints, floats, lists, strings)."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_set_overrides(flags: List[str]) -> Dict[str, List[Any]]:
    overrides: Dict[str, List[Any]] = {}
    for flag in flags:
        key, sep, value_text = flag.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SystemExit(
                f"fv campaign: error: --set expects KEY=V1[,V2...], got {flag!r}"
            )
        values = [_coerce_value(v) for v in _split_grid_values(value_text)]
        if not values:
            raise SystemExit(
                f"fv campaign: error: --set {key}= names no values"
            )
        if key in overrides:
            raise SystemExit(
                f"fv campaign: error: duplicate --set axis {key!r}"
            )
        overrides[key] = values
    return overrides


def _campaign_overrides(args: argparse.Namespace) -> Dict[str, List[Any]]:
    """Merge ``--set`` axes with the shared simulation flags. The
    shared flags use suppressed defaults, so only ones the user typed
    become grid overrides."""
    overrides = _parse_set_overrides(args.set)
    if hasattr(args, "link"):
        link = parse_rate(args.link)
        overrides.setdefault("nominal_link_bps", [link])
        overrides.setdefault("wire_bps", [link])
    for key in ("seed", "scale", "duration"):
        if hasattr(args, key):
            overrides.setdefault(key, [getattr(args, key)])
    return overrides


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from .experiments.campaign import REGISTRY

    width = max((len(name) for name in REGISTRY.names()), default=0)
    for spec in REGISTRY:
        print(f"{spec.name:<{width}s}  {spec.description}")
        if args.verbose:
            if spec.defaults:
                print(f"{'':<{width}s}  defaults: {dict(spec.defaults)}")
            if spec.schema:
                schema = {
                    attr: (t.__name__ if t is not None else "any")
                    for attr, t in spec.schema.items()
                }
                print(f"{'':<{width}s}  schema:   {schema}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .experiments.campaign import CampaignRunner

    overrides = _campaign_overrides(args)
    runner = CampaignRunner(
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        cache_dir=None if args.no_cache else args.cache_dir,
        manifest_path=args.manifest,
    )
    tasks = runner.tasks_for(args.specs, overrides=overrides)
    print(
        f"campaign: {len(tasks)} task(s) over {len(args.specs)} spec(s), "
        f"workers={args.workers}"
        + ("" if args.no_cache else f", cache={args.cache_dir}")
    )
    report = runner.run(tasks)
    print(report.summary_table().render())
    if not args.no_cache:
        print(f"cache hit rate: {report.cache_hit_rate:.0%}")
    print(f"manifest: {args.manifest}")
    if args.tables:
        for record in report.records:
            result = report.results.get(record.task_id)
            if result is not None:
                print()
                print(result.to_table().render())
    return 0 if report.ok else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from collections import Counter

    from .experiments.campaign import read_manifest
    from .stats.report import Table

    records = read_manifest(args.manifest)
    counts = Counter(record.status for record in records)
    summary = ", ".join(f"{status}={n}" for status, n in sorted(counts.items()))
    print(f"{args.manifest}: {len(records)} task(s): {summary or 'empty'}")
    table = Table("campaign status", ["task", "status", "attempts", "duration(s)"])
    for record in records:
        table.add_row(record.task_id, record.status, record.attempts,
                      f"{record.duration:.2f}")
    print(table.render())
    return 0 if all(r.status in ("ok", "cached") for r in records) else 1


def main(argv=None) -> int:
    """Entry point for the ``fv`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "campaign":
            if args.campaign_command == "list":
                return _cmd_campaign_list(args)
            if args.campaign_command == "run":
                return _cmd_campaign_run(args)
            if args.campaign_command == "status":
                return _cmd_campaign_status(args)
    except ReproError as exc:
        print(f"fv: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"fv: error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
