"""The ``fv`` command-line tool.

FlowValve's shell interface (paper §III-E) inherits ``tc`` option
syntax. The CLI works on script files so a policy can be versioned and
replayed:

.. code-block:: console

   $ fv check policy.fv --link 10gbit       # parse + validate
   $ fv show policy.fv --link 10gbit        # print the scheduling tree
   $ fv simulate policy.fv --link 10gbit \\
        --app NC=2gbit --app WS=8gbit --duration 10
                                             # software-mode what-if run

``simulate`` runs the policy in software mode against constant-rate
app demands and prints the achieved rate per app — a quick what-if
evaluator for policy authors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from .core import FlowValve
from .core.scheduling import Verdict
from .core.sched_tree import SchedulingParams
from .errors import ReproError
from .net import FiveTuple, PacketFactory
from .tc.parser import parse_script
from .tc.validate import validate_policy
from .units import format_rate, parse_rate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="fv",
        description="FlowValve policy tool: validate, inspect and simulate fv scripts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and validate a policy script")
    check.add_argument("script", help="path to the fv script")
    check.add_argument("--link", default="10gbit", help="link rate (default 10gbit)")

    show = sub.add_parser("show", help="print the scheduling tree of a policy")
    show.add_argument("script", help="path to the fv script")
    show.add_argument("--link", default="10gbit", help="link rate (default 10gbit)")

    simulate = sub.add_parser("simulate", help="software-mode what-if run")
    simulate.add_argument("script", help="path to the fv script")
    simulate.add_argument("--link", default="10gbit", help="link rate (default 10gbit)")
    simulate.add_argument(
        "--app", action="append", default=[], metavar="NAME=RATE",
        help="offered load per app, e.g. --app KVS=9gbit (repeatable)",
    )
    simulate.add_argument("--duration", type=float, default=10.0,
                          help="simulated seconds (default 10)")
    simulate.add_argument("--packet-size", type=int, default=1500,
                          help="frame size in bytes (default 1500)")
    simulate.add_argument(
        "--nic", action="store_true",
        help="run the full DES NIC pipeline (workers, reorder, Tx ring, "
             "wire) instead of the software-mode what-if loop",
    )
    simulate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the structured event trace as JSONL (implies --nic)",
    )
    simulate.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write periodic metrics snapshots as JSONL (implies --nic)",
    )
    simulate.add_argument(
        "--trace-limit", type=int, default=0,
        help="cap on stored trace records, oldest evicted (0 = unlimited)",
    )
    simulate.add_argument(
        "--scale", type=float, default=100.0,
        help="rate-scale divisor for --nic runs (default 100; see DESIGN.md §1)",
    )
    simulate.add_argument("--seed", type=int, default=7,
                          help="simulation seed for --nic runs (default 7)")
    return parser


def _load_policy(path: str):
    with open(path) as handle:
        text = handle.read()
    policy = parse_script(text)
    validate_policy(policy)
    return policy


def _cmd_check(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    link = parse_rate(args.link)
    FlowValve(policy, link_rate_bps=link)  # builds the tree too
    print(
        f"OK: {len(policy.classes)} classes, {len(policy.filters)} filters, "
        f"link {format_rate(link)}"
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    valve = FlowValve(policy, link_rate_bps=parse_rate(args.link))
    print(valve.describe())
    return 0


def _parse_apps(specs: List[str]) -> Dict[str, float]:
    demands: Dict[str, float] = {}
    for spec in specs:
        name, sep, rate_text = spec.partition("=")
        if not sep or not name:
            raise ReproError(f"--app expects NAME=RATE, got {spec!r}")
        demands[name] = parse_rate(rate_text)
    if not demands:
        raise ReproError("simulate needs at least one --app NAME=RATE")
    return demands


def _cmd_simulate(args: argparse.Namespace) -> int:
    policy = _load_policy(args.script)
    link = parse_rate(args.link)
    demands = _parse_apps(args.app)
    if args.nic or args.trace or args.metrics:
        # Observability lives in the DES pipeline (queues, workers,
        # traffic manager), so --trace/--metrics imply --nic.
        return _cmd_simulate_nic(args, policy, link, demands)
    # Scale the update epochs so each holds a healthy packet count at
    # the requested link rate.
    pps = link / ((args.packet_size + 20) * 8)
    interval = max(0.001, 200.0 / pps)
    params = SchedulingParams(update_interval=interval, expire_after=10 * interval)
    valve = FlowValve(policy, link_rate_bps=link, params=params)

    import heapq

    factory = PacketFactory()
    flows = {
        app: FiveTuple(f"10.0.0.{i + 1}", "10.0.1.1", 40000 + i, 5001)
        for i, app in enumerate(sorted(demands))
    }
    forwarded = {app: 0 for app in demands}
    size_bits = (args.packet_size + 20) * 8
    heap = [(0.0, app) for app in sorted(demands)]
    heapq.heapify(heap)
    while heap:
        t, app = heapq.heappop(heap)
        if t >= args.duration:
            continue
        packet = factory.make(args.packet_size, flows[app], t, app=app)
        if valve.process(packet, t) is Verdict.FORWARD:
            forwarded[app] += 1
        heapq.heappush(heap, (t + size_bits / demands[app], app))

    # A zero/negative duration simulates nothing; report zeros instead
    # of dividing by it.
    elapsed = args.duration if args.duration > 0 else float("inf")
    print(f"simulated {args.duration:.1f}s at link {format_rate(link)}:")
    for app in sorted(demands):
        achieved = forwarded[app] * size_bits / elapsed
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sum(forwarded.values()) * size_bits / elapsed
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    return 0


def _cmd_simulate_nic(args: argparse.Namespace, policy, link: float, demands: Dict[str, float]) -> int:
    """``fv simulate --nic``: the full DES pipeline, rate-scaled.

    Runs the same assembly the figure reproductions use (senders → NIC
    pipeline → sink) and optionally dumps the raw observability streams
    (``--trace``: per-event JSONL; ``--metrics``: periodic registry
    snapshots) that the achieved-rate report is computed from.
    """
    from .experiments.base import ScaledSetup, _scale_demand
    from .core.frontend import FlowValveFrontend
    from .host import FixedRateSender
    from .net import PacketFactory, PacketSink
    from .nic import NicPipeline
    from .sim import Simulator, Tracer
    from .stats.metrics import MetricsRegistry, MetricsSampler

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive, got {args.scale}")
    tracer = Tracer(limit=args.trace_limit) if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    setup = ScaledSetup(nominal_link_bps=link, scale=args.scale, wire_bps=link, seed=args.seed)
    sim = Simulator(seed=setup.seed, tracer=tracer, metrics=registry)
    frontend = FlowValveFrontend(policy, link_rate_bps=setup.link_bps, params=setup.sched_params())
    sink = PacketSink(sim, rate_window=1.0, record_delays=False)
    nic = NicPipeline.with_flowvalve(sim, setup.nic_config(), frontend, receiver=sink.receive)
    factory = PacketFactory()
    for index, app in enumerate(sorted(demands)):
        FixedRateSender(
            sim, app, factory, nic.submit,
            rate_bps=setup.sender_rate(),
            packet_size=args.packet_size,
            demand=_scale_demand(lambda t, rate=demands[app]: rate, setup.scale),
            vf_index=index,
            jitter=0.1,
            rng=sim.random.stream(app),
        )
    sampler = None
    if registry is not None and args.duration > 0:
        sampler = MetricsSampler(sim, registry, interval=args.duration / 100.0)
    sim.run(until=args.duration)

    elapsed = args.duration if args.duration > 0 else float("inf")
    print(
        f"simulated {args.duration:.1f}s at link {format_rate(link)} "
        f"(nic mode, scale=1/{setup.scale:g}, seed={setup.seed}):"
    )
    for app in sorted(demands):
        achieved = sink.bytes[app] * 8 / elapsed * setup.scale
        print(
            f"  {app:>8s}: offered {format_rate(demands[app]):>12s}"
            f"  achieved {format_rate(achieved):>12s}"
        )
    total = sink.total_bytes * 8 / elapsed * setup.scale
    print(f"  {'total':>8s}: {format_rate(total):>12s}")
    print(f"  {nic.stats_summary()}")
    if tracer is not None:
        count = tracer.to_jsonl(args.trace)
        print(f"  trace: {count} records -> {args.trace}")
    if registry is not None:
        if sampler is not None:
            sampler.sample()  # final snapshot at t=end
            count = sampler.to_jsonl(args.metrics)
        else:
            from .stats.metrics import write_jsonl

            count = write_jsonl(args.metrics, [{"time": sim.now, **registry.snapshot()}])
        print(f"  metrics: {count} snapshots -> {args.metrics}")
    return 0


def main(argv=None) -> int:
    """Entry point for the ``fv`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
    except ReproError as exc:
        print(f"fv: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"fv: error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
