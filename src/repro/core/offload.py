"""Offloading kernel qdisc configurations — including chained ones.

The paper's §III-E/§IV: "FlowValve can fully offload PRIO and HTB
meanwhile support qdisc chaining." An administrator who already runs
kernel traffic control has configurations like::

    tc qdisc add dev eth0 root handle 1: prio bands 3
    tc qdisc add dev eth0 parent 1:2 handle 2: htb default 30
    tc class add dev eth0 parent 2: classid 2:1 htb rate 8gbit
    tc class add dev eth0 parent 2:1 classid 2:10 htb rate 2gbit ...

i.e. a PRIO qdisc whose band feeds a *chained* HTB qdisc. FlowValve
executes such hierarchies as **one** scheduling tree: PRIO bands
become priority-ordered classes, an HTB chained under a band becomes
that class's subtree, and HTB's rate/ceil map onto the guarantee/ceil
condition templates. The chaining itself needs no extra machinery at
runtime — exactly the paper's point that runtime rate estimation keeps
adjusting the fill rates across what used to be separate qdiscs.

:func:`compile_offload` performs that translation: a multi-qdisc
:class:`~repro.tc.ast.PolicyConfig` in, a single-tree policy out,
ready for :class:`~repro.core.frontend.FlowValveFrontend`.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PolicyError
from ..tc.ast import ClassSpec, FilterSpec, PolicyConfig, QdiscSpec, parse_classid

__all__ = ["compile_offload"]

#: Synthetic major number for the compiled tree's ids.
_OFFLOAD_MAJOR = 0xF


def compile_offload(policy: PolicyConfig, link_rate_bps: float) -> PolicyConfig:
    """Compile a (possibly chained) kernel tc configuration into a
    single-tree ``fv`` policy.

    Supported inputs:

    * a single HTB or fv qdisc — passed through unchanged (already a
      single tree);
    * a root PRIO qdisc with zero or more HTB qdiscs chained under its
      bands. Bands become priority classes ``f:b1..f:bN``; a chained
      HTB's class tree is grafted (with rewritten ids) under its band;
      filters targeting either layer are rewritten to the grafted leaf
      ids.

    Raises :class:`PolicyError` for shapes outside that set (e.g. a
    PRIO chained under another PRIO — also unsupported by the paper's
    prototype).
    """
    root_qdisc = policy.root_qdisc()
    if root_qdisc.kind in ("htb", "fv"):
        if len(policy.qdiscs) > 1:
            raise PolicyError(
                "chaining under an HTB root is not supported (the paper chains "
                "HTB under PRIO bands); express the hierarchy as HTB classes instead"
            )
        return policy

    if root_qdisc.kind != "prio":
        raise PolicyError(f"cannot offload root qdisc kind {root_qdisc.kind!r}")

    compiled = PolicyConfig()
    compiled.add_qdisc(QdiscSpec(kind="fv", handle=f"{_OFFLOAD_MAJOR:x}:"))
    root_id = f"{_OFFLOAD_MAJOR:x}:1"
    compiled.add_class(
        ClassSpec(classid=root_id, parent=f"{_OFFLOAD_MAJOR:x}:",
                  rate=link_rate_bps, ceil=link_rate_bps)
    )

    # --- bands become priority-ordered children of the root ----------
    band_ids: List[str] = []
    chained: Dict[int, QdiscSpec] = _chained_qdiscs(policy, root_qdisc)
    for band in range(root_qdisc.bands):
        band_id = f"{_OFFLOAD_MAJOR:x}:b{band + 1:x}"
        band_ids.append(band_id)
        compiled.add_class(
            ClassSpec(classid=band_id, parent=root_id, rate=link_rate_bps, prio=band)
        )

    # --- graft chained HTB trees under their bands ---------------------
    id_map: Dict[str, str] = {}
    for band, sub_qdisc in chained.items():
        band_id = band_ids[band]
        top = policy.children_of(sub_qdisc.handle)
        if len(top) != 1:
            raise PolicyError(
                f"chained qdisc {sub_qdisc.handle} must have exactly one top class"
            )
        _graft(policy, compiled, top[0], band_id, id_map)

    # --- rewrite borrow labels (may reference later-grafted classes) ---
    for spec in compiled.classes:
        if spec.borrow:
            spec.borrow = tuple(id_map.get(b, b) for b in spec.borrow)

    # --- rewrite filters -------------------------------------------------
    for filt in policy.filters:
        compiled.add_filter(FilterSpec(
            flowid=_rewrite_flowid(filt.flowid, root_qdisc, band_ids, id_map),
            match=dict(filt.match),
            prio=filt.prio,
            parent=f"{_OFFLOAD_MAJOR:x}:",
        ))
    return compiled


def _chained_qdiscs(policy: PolicyConfig, root: QdiscSpec) -> Dict[int, QdiscSpec]:
    """Map band index -> qdisc chained under that band."""
    chained: Dict[int, QdiscSpec] = {}
    root_major, _ = parse_classid(root.handle)
    for qdisc in policy.qdiscs:
        if qdisc is root:
            continue
        if qdisc.kind != "htb":
            raise PolicyError(
                f"only HTB may be chained under PRIO bands, got {qdisc.kind!r}"
            )
        major, minor = parse_classid(qdisc.parent)
        if major != root_major or minor == 0:
            raise PolicyError(
                f"chained qdisc {qdisc.handle} must attach to a band of {root.handle}"
            )
        band = minor - 1
        if band >= root.bands:
            raise PolicyError(f"band {minor} out of range for {root.bands}-band PRIO")
        if band in chained:
            raise PolicyError(f"band {minor} has two chained qdiscs")
        chained[band] = qdisc
    return chained


def _graft(
    source: PolicyConfig,
    compiled: PolicyConfig,
    spec: ClassSpec,
    new_parent: str,
    id_map: Dict[str, str],
) -> None:
    """Copy *spec*'s subtree under *new_parent* with rewritten ids."""
    major, minor = parse_classid(spec.classid)
    new_id = f"{_OFFLOAD_MAJOR:x}:{major:x}{minor:x}"
    id_map[spec.classid] = new_id
    compiled.add_class(ClassSpec(
        classid=new_id,
        parent=new_parent,
        rate=spec.rate,
        ceil=spec.ceil,
        weight=spec.weight,
        prio=spec.prio,
        guarantee=spec.guarantee,
        guarantee_threshold=spec.guarantee_threshold,
        # Borrow labels are rewritten in a second pass below; HTB specs
        # don't carry them, fv ones might.
        borrow=spec.borrow,
    ))
    for child in source.children_of(spec.classid):
        _graft(source, compiled, child, new_id, id_map)


def _rewrite_flowid(
    flowid: str,
    root: QdiscSpec,
    band_ids: List[str],
    id_map: Dict[str, str],
) -> str:
    """Translate a filter target from either layer to the new tree."""
    if flowid in id_map:
        return id_map[flowid]
    root_major, _ = parse_classid(root.handle)
    major, minor = parse_classid(flowid)
    if major == root_major and 1 <= minor <= root.bands:
        return band_ids[minor - 1]
    raise PolicyError(f"filter flowid {flowid!r} matches no band or chained class")
