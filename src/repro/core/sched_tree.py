"""The scheduling tree (paper §IV-B) and its per-class update logic.

Each :class:`ClassNode` owns the operating state of one traffic class:

* a regular token bucket — the *leaf* uses it to limit flow rate, the
  root/interior classes use theirs to measure (the forwarding decision
  only meters at the leaf);
* a shadow bucket holding the class's unconsumed token rate for
  lenders (Eq. 6);
* a consumption counter Γ (Eq. 3), rolled at every update epoch;
* the condition template (:mod:`.rate_rules`) that recomputes θ;
* timestamps for the expired-status removal of Subprocedure 3;
* an ``updating`` flag — the per-class update *try-lock*: in a
  multi-core environment only one core executes the update procedure
  at a time, the others skip straight to the meter (Fig. 8 and the
  paper's discussion under Algorithm 1).

:class:`SchedulingTree` builds the node graph from a validated
:class:`~repro.tc.PolicyConfig` and provides id lookup for the
scheduling function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import PolicyError, UnknownClassError
from ..stats.rates import WindowedRate
from ..tc.ast import ClassSpec, PolicyConfig
from .rate_rules import RateRule, RuleContext, derive_rule
from .token_bucket import TokenBucket

__all__ = ["SchedulingParams", "ClassNode", "SchedulingTree"]


@dataclass(frozen=True)
class SchedulingParams:
    """Tunables of the scheduling function.

    Attributes
    ----------
    update_interval:
        Minimum seconds between two update epochs of one class (the
        paper's ΔT lower bound; updates are packet-triggered so the
        actual ΔT is ≥ this).
    expire_after:
        Idle time after which a class's status (Γ, counters) is
        restored to its initial value — Subprocedure 3. Defaults to
        ten update intervals.
    burst_intervals:
        Bucket capacity in units of ``θ × update_interval``; 2 gives a
        class one full missed epoch of slack.
    min_burst_bits:
        Capacity floor so tiny rates can still pass an MTU frame.
    gamma_mode:
        ``"forwarded"`` counts only transmitted packets into Γ (the
        paper's Eq. 3 definition); ``"offered"`` counts every arrival
        (the literal line ordering of Algorithm 1). Forwarded is the
        default; the difference is an ablation knob.
    borrow_enabled:
        Master switch for the shadow-bucket borrowing subprocedure.
    overhead_bytes:
        Per-frame wire overhead (preamble + inter-frame gap, 20 B)
        charged by the meter on top of the L2 size. Without it, token
        grants at the configured link rate exceed what the wire can
        carry by the framing overhead, and the excess parks in (and
        eventually overflows) the shared Tx ring — FIFO drops that hit
        arbitrary classes instead of FlowValve's chosen ones. Set to 0
        to account pure L2 bits.
    link_headroom:
        Fraction of the root rate deliberately *not* granted. With
        zero headroom, admission equals the wire rate exactly and any
        transient burst creates a standing Tx-ring queue that can
        never drain (arrival == service is a neutral equilibrium);
        a few percent of slack lets the FIFO empty between bursts, so
        drops stay FlowValve's *chosen* drops instead of random FIFO
        tail drops.
    continuous_refill:
        True (default) models the NFP hardware meter instruction,
        which accrues tokens continuously at its configured rate — the
        update epoch only *re-rates* it. False replays the paper's
        Fig. 8 text literally: tokens land in one ΔT×θ lump at each
        update, which makes admission bursty at epoch scale (an
        ablation knob; at hardware epoch lengths the difference is
        invisible, at rate-scaled epoch lengths it matters).
    gamma_alpha:
        EWMA weight applied to Γ across epochs (1.0 = no smoothing,
        the paper's literal per-interval measurement). At hardware
        scale one ΔT holds thousands of packets, so TCP's sawtooth is
        invisible in Γ; a rate-scaled epoch holds only tens, and raw
        per-epoch Γ dips make residual rules (θ_low = θ_parent − Γ_high)
        transiently over-grant — a sustained feedback loop. Smoothing
        restores the timescale separation the hardware has naturally.
    """

    update_interval: float = 0.001
    expire_after: float = 0.01
    burst_intervals: float = 2.0
    min_burst_bits: float = 2 * 12_336.0
    gamma_mode: str = "forwarded"
    borrow_enabled: bool = True
    overhead_bytes: int = 20
    link_headroom: float = 0.03
    continuous_refill: bool = True
    gamma_alpha: float = 0.4
    #: Per-epoch decay of the peak-hold Γ estimator (see ClassNode
    #: ``gamma_peak``); 0 disables peak-holding entirely.
    gamma_peak_decay: float = 0.85

    def __post_init__(self) -> None:
        if self.update_interval <= 0:
            raise PolicyError("update_interval must be positive")
        if self.expire_after < self.update_interval:
            raise PolicyError("expire_after must be >= update_interval")
        if self.gamma_mode not in ("forwarded", "offered"):
            raise PolicyError(f"unknown gamma_mode {self.gamma_mode!r}")

    @classmethod
    def scaled(cls, factor: float, **overrides) -> "SchedulingParams":
        """Params for a rate-scaled experiment: time constants stretch
        by *factor* so that (rate × interval) products — and therefore
        every convergence dynamic — are invariant."""
        base = cls(**overrides) if overrides else cls()
        return cls(
            update_interval=base.update_interval * factor,
            expire_after=base.expire_after * factor,
            burst_intervals=base.burst_intervals,
            min_burst_bits=base.min_burst_bits,
            gamma_mode=base.gamma_mode,
            borrow_enabled=base.borrow_enabled,
            overhead_bytes=base.overhead_bytes,
            link_headroom=base.link_headroom,
            continuous_refill=base.continuous_refill,
            gamma_alpha=base.gamma_alpha,
            gamma_peak_decay=base.gamma_peak_decay,
        )

    def packet_bits(self, size_bytes: int) -> float:
        """Tokens one frame consumes: L2 bits plus wire overhead."""
        return (size_bytes + self.overhead_bytes) * 8.0


class ClassNode:
    """One traffic class: configuration + runtime scheduling state."""

    __slots__ = (
        "classid",
        "spec",
        "parent",
        "children",
        "depth",
        "rule",
        "theta",
        "bucket",
        "shadow",
        "gamma",
        "gamma_rate",
        "gamma_peak",
        "last_update",
        "last_seen",
        "updating",
        "params",
        "updates",
        "forwarded_packets",
        "forwarded_bits",
        "borrowed_bits",
        "lent_bits",
        "tracer",
        "_leaves",
    )

    def __init__(self, spec: ClassSpec, parent: Optional["ClassNode"], params: SchedulingParams):
        self.classid = spec.classid
        self.spec = spec
        self.parent = parent
        self.children: List[ClassNode] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self.params = params
        #: Current token rate θ in bit/s (recomputed at update epochs).
        self.theta = 0.0
        initial_rate = spec.ceil if (parent is None and spec.ceil is not None) else spec.rate
        self.bucket = TokenBucket.for_interval(
            initial_rate, params.update_interval * params.burst_intervals, params.min_burst_bits
        )
        #: Shadow bucket: unconsumed tokens available to borrowers.
        self.shadow = TokenBucket.for_interval(
            0.0, params.update_interval * params.burst_intervals, params.min_burst_bits
        )
        self.shadow.drain()  # nothing lendable before the first epoch
        #: Consumption counter Γ accumulator (Eq. 3).
        self.gamma = WindowedRate()
        #: Γ measured over the last closed epoch, bit/s (EWMA-smoothed).
        self.gamma_rate = 0.0
        #: Decaying peak of raw per-epoch Γ. Residual rules subtract a
        #: prior sibling's *peak* recent usage rather than its average:
        #: a TCP flow's sawtooth troughs are not spare bandwidth, and
        #: granting them to lower classes creates a stable over-grant
        #: equilibrium (inflated RTTs keep the prior flow underfilled).
        self.gamma_peak = 0.0
        self.last_update = 0.0
        self.last_seen = -float("inf")
        #: The per-class update try-lock flag.
        self.updating = False
        #: Assigned after tree construction.
        self.rule: RateRule = derive_rule(self)
        # --- lifetime statistics -------------------------------------
        self.updates = 0
        self.forwarded_packets = 0
        self.forwarded_bits = 0.0
        self.borrowed_bits = 0.0
        self.lent_bits = 0.0
        #: Enabled tracer or None; set via SchedulingTree.attach_tracer.
        self.tracer = None
        #: Memoised leaf_descendants() result (tree is static after
        #: construction; borrowing queries this on every red packet).
        self._leaves: Optional[List[ClassNode]] = None

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """Leaves meter packets; interior classes only measure."""
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def is_active(self, now: float) -> bool:
        """True if the class saw a packet within the expiry window."""
        return (now - self.last_seen) <= self.params.expire_after

    def touch(self, now: float) -> None:
        """Record packet-arrival activity (offered, not forwarded —
        an all-red class is still active and keeps its reservations)."""
        if now > self.last_seen:
            self.last_seen = now

    def is_quiescent_at(self, t: float) -> bool:
        """The fluid lane's quiescence flag: judged with current state,
        a scheduling walk touching this class at time *t* is provably
        skip-only — nobody holds the update flag, no update can become
        due by *t* (``last_update`` only grows), and the class stays
        active through *t* under its current ``last_seen``. The same
        three conditions gate the fast handler's wakeup elision
        (:meth:`FlowValveNicApp.handle_fast`); here they also certify
        that the class's buckets evolve in closed form until *t*.
        """
        if self.updating:
            return False
        params = self.params
        if t - self.last_update >= params.update_interval:
            return False
        return (t - self.last_seen) <= params.expire_after

    # ------------------------------------------------------------------
    # the update subprocedure (one core at a time per class)
    # ------------------------------------------------------------------
    def try_begin_update(self, now: float) -> bool:
        """The try-lock gate: True when this caller should run the
        update (interval elapsed and no other core updating)."""
        if self.updating:
            return False
        if now - self.last_update < self.params.update_interval:
            return False
        self.updating = True
        return True

    def perform_update(self, now: float) -> None:
        """The update body (runs with :attr:`updating` held).

        1. expired-status removal (Subprocedure 3);
        2. roll Γ over the closing epoch (Eq. 3);
        3. recompute θ from the condition template;
        4. replenish the regular bucket at the new θ;
        5. *transfer* the epoch's unconsumed tokens into the shadow
           bucket ("the shadow bucket contains unconsumed tokens of a
           regular traffic class at each update epoch").

        The transfer in step 5 is a move, not a copy: a class's unused
        grant lives either in its own bucket (up to one epoch of
        working tokens) or in its shadow, never both — so the sum of
        all grants can never exceed the root rate, which is what makes
        borrowing safe against the shared FIFO Tx buffer. The lendable
        *rate* this produces equals Eq. 6's ``θ_C − Γ_C``; the shadow's
        ``rate_bps`` field publishes that value for observability.
        """
        if not self.is_active(now) and self.last_seen != -float("inf"):
            self.reset_status(now)
        raw_gamma = self.gamma.roll(now)
        alpha = self.params.gamma_alpha
        self.gamma_rate += alpha * (raw_gamma - self.gamma_rate)
        self.gamma_peak = max(raw_gamma, self.gamma_peak * self.params.gamma_peak_decay)
        theta = max(0.0, self.rule.compute(RuleContext(self, now)))
        self.theta = theta
        interval = self.params.update_interval
        working = theta * interval
        burst = max(self.params.min_burst_bits, working * self.params.burst_intervals)
        self.bucket.rate_bps = theta
        self.bucket.resize(burst)
        self.bucket.refill(now)
        self.shadow.resize(burst)
        excess = self.bucket.withdraw_excess(max(working, self.params.min_burst_bits))
        self.shadow.deposit(excess)
        # Published lendable rate (Eq. 6) — observability only; the
        # shadow is fed by transfers, not by its own refill clock.
        self.shadow.rate_bps = max(0.0, theta - self.gamma_rate)
        self.last_update = now
        self.updates += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                now,
                "core.sched",
                "rate_update",
                classid=self.classid,
                theta=theta,
                gamma=raw_gamma,
                gamma_rate=self.gamma_rate,
                shadow_transfer=excess,
                lendable_rate=self.shadow.rate_bps,
                epoch=self.updates,
            )

    def end_update(self) -> None:
        """Release the update try-lock."""
        self.updating = False

    def update(self, now: float) -> bool:
        """Convenience: the full gated update; True if it ran."""
        if not self.try_begin_update(now):
            return False
        try:
            self.perform_update(now)
        finally:
            self.end_update()
        return True

    def reset_status(self, now: float) -> None:
        """Restore expired status to initial values (Subprocedure 3)."""
        self.gamma.reset(now)
        self.gamma_rate = 0.0
        self.gamma_peak = 0.0
        self.shadow.drain()
        self.shadow.rate_bps = 0.0
        if self.tracer is not None:
            self.tracer.emit(now, "core.sched", "expire", classid=self.classid)

    # ------------------------------------------------------------------
    def count_forwarded(self, size_bits: float, observe_gamma: bool = True) -> None:
        """Add one forwarded packet's tokens to Γ and the counters.

        ``observe_gamma=False`` skips the Γ accumulation — used by
        ``gamma_mode="offered"``, where Γ was already counted at
        arrival and only the forwarded counters remain to update.
        """
        if observe_gamma:
            self.gamma.observe(size_bits)
        self.forwarded_packets += 1
        self.forwarded_bits += size_bits

    def leaf_descendants(self) -> List["ClassNode"]:
        """All leaf classes under this node (itself, if a leaf).

        Borrowing from an *interior* class queries these leaves' shadow
        buckets in order: the interior class's lendable bandwidth IS
        its subtree's unconsumed grants (Fig. 9), and draining the leaf
        shadows directly keeps the total granted bandwidth conserved —
        an interior shadow holding its own copy would let the same
        unused tokens be spent twice (once by the borrower, once later
        by the returning leaf).

        The result is memoised: the tree never changes shape after
        construction, and the borrow subprocedure asks on every red
        packet. Callers must not mutate the returned list.
        """
        cached = self._leaves
        if cached is not None:
            return cached
        if self.is_leaf:
            leaves: List[ClassNode] = [self]
        else:
            leaves = []
            stack = list(self.children)
            while stack:
                node = stack.pop(0)
                if node.is_leaf:
                    leaves.append(node)
                else:
                    stack.extend(node.children)
        self._leaves = leaves
        return leaves

    def path_from_root(self) -> List["ClassNode"]:
        """Root-first list of nodes down to (and including) this one."""
        path: List[ClassNode] = []
        cursor: Optional[ClassNode] = self
        while cursor is not None:
            path.append(cursor)
            cursor = cursor.parent
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else "interior"
        return f"<ClassNode {self.classid} {kind} θ={self.theta:.0f} Γ={self.gamma_rate:.0f}>"


class SchedulingTree:
    """The full class hierarchy, indexed by class id.

    Build it with :meth:`from_policy`; the front end
    (:mod:`repro.core.frontend`) does this after validation and then
    "populates the SmartNIC shared memory" — in the model, hands the
    tree object to the scheduling function.
    """

    def __init__(self, root: ClassNode, nodes: Dict[str, ClassNode], params: SchedulingParams):
        self.root = root
        self._nodes = nodes
        self.params = params

    @classmethod
    def from_policy(
        cls,
        policy: PolicyConfig,
        link_rate_bps: Optional[float] = None,
        params: Optional[SchedulingParams] = None,
    ) -> "SchedulingTree":
        """Construct the tree from a policy.

        ``link_rate_bps`` overrides/supplies the root rate when the
        policy's top class doesn't carry one (PRIO qdiscs have no rate;
        the physical line rate is the natural ceiling).
        """
        params = params if params is not None else SchedulingParams()
        qdisc = policy.root_qdisc()
        top_specs = policy.children_of(qdisc.handle)
        if not top_specs:
            raise PolicyError("policy defines no classes under the root qdisc")
        if len(top_specs) > 1:
            raise PolicyError(
                "policy must have a single top class under the root qdisc "
                f"(found {[c.classid for c in top_specs]})"
            )
        root_spec = top_specs[0]
        if link_rate_bps is not None and root_spec.ceil is None and root_spec.rate == 0:
            # Synthesise the root rate from the link.
            root_spec = ClassSpec(
                classid=root_spec.classid,
                parent=root_spec.parent,
                rate=link_rate_bps,
                ceil=link_rate_bps,
                weight=root_spec.weight,
                prio=root_spec.prio,
                guarantee=root_spec.guarantee,
                guarantee_threshold=root_spec.guarantee_threshold,
                borrow=root_spec.borrow,
            )
        nodes: Dict[str, ClassNode] = {}
        root = ClassNode(root_spec, None, params)
        nodes[root.classid] = root
        cls._attach_children(policy, root, nodes, params)
        tree = cls(root, nodes, params)
        tree.prime()
        return tree

    @classmethod
    def _attach_children(
        cls,
        policy: PolicyConfig,
        parent: ClassNode,
        nodes: Dict[str, ClassNode],
        params: SchedulingParams,
    ) -> None:
        for spec in policy.children_of(parent.classid):
            node = ClassNode(spec, parent, params)
            parent.children.append(node)
            nodes[node.classid] = node
            cls._attach_children(policy, node, nodes, params)

    # ------------------------------------------------------------------
    def node(self, classid: str) -> ClassNode:
        """Lookup by class id; raises :class:`UnknownClassError`."""
        try:
            return self._nodes[classid]
        except KeyError:
            raise UnknownClassError(classid) from None

    def __contains__(self, classid: str) -> bool:
        return classid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[ClassNode]:
        """All nodes, root first (breadth-first order)."""
        ordered: List[ClassNode] = []
        frontier = [self.root]
        while frontier:
            node = frontier.pop(0)
            ordered.append(node)
            frontier.extend(node.children)
        return ordered

    def leaves(self) -> List[ClassNode]:
        """All leaf classes."""
        return [n for n in self.nodes if n.is_leaf]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Point every class node at *tracer* for update-epoch events.

        A disabled tracer (``tracer.enabled`` false) detaches instead:
        nodes hold ``None`` and :meth:`ClassNode.perform_update` skips
        payload construction with a single identity check, keeping the
        per-epoch hot path free of observability cost by default.
        """
        active = tracer if (tracer is not None and tracer.enabled) else None
        for node in self.nodes:
            node.tracer = active

    def register_metrics(self, registry) -> None:
        """Register per-class probes (θ, Γ, lifetime counters) on an
        enabled :class:`~repro.stats.metrics.MetricsRegistry`."""
        if registry is None or not registry.enabled:
            return
        for node in self.nodes:
            prefix = f"sched.{node.classid}"
            registry.probe(f"{prefix}.theta_bps", lambda n=node: n.theta)
            registry.probe(f"{prefix}.gamma_bps", lambda n=node: n.gamma_rate)
            registry.probe(f"{prefix}.forwarded_packets", lambda n=node: n.forwarded_packets)
            registry.probe(f"{prefix}.borrowed_bits", lambda n=node: n.borrowed_bits)
            registry.probe(f"{prefix}.lent_bits", lambda n=node: n.lent_bits)
            registry.probe(f"{prefix}.updates", lambda n=node: n.updates)

    def prime(self, now: float = 0.0) -> None:
        """Initialise every θ top-down so the first packets see sane
        rates instead of zeros (the front end does this when pushing
        configuration to the NIC).

        Buckets start *empty*: tokens accrue from t=0 at θ. Starting
        full would admit every class's entire burst capacity in one
        line-overrunning lump the moment traffic arrives — a start-up
        transient that parks in the shared Tx FIFO.
        """
        for node in self.nodes:  # breadth-first: parents before children
            node.theta = max(0.0, node.rule.compute(RuleContext(node, now)))
            node.bucket.rate_bps = node.theta
            node.bucket.resize(
                max(
                    self.params.min_burst_bits,
                    node.theta * self.params.update_interval * self.params.burst_intervals,
                )
            )
            node.bucket.tokens = 0.0
            node.bucket.last_refill = now
            node.last_update = now

    def describe(self) -> str:
        """Indented text rendering of the tree with current rates."""
        lines: List[str] = []

        def walk(node: ClassNode, indent: int) -> None:
            pad = "  " * indent
            lines.append(
                f"{pad}{node.classid} θ={node.theta:.0f}bps Γ={node.gamma_rate:.0f}bps "
                f"rule={node.rule.describe()}"
            )
            for child in node.children:
                walk(child, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)
