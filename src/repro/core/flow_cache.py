"""Exact-match flow cache.

Observation 2 in the paper: the Netronome Exact Match Flow Cache uses
dedicated lookup engines to memoise per-flow actions, enlarging the
kernel flow-cache implementation "by 10 times". Here it memoises the
labeling function's classification result per ``(five-tuple, vf)`` key
so the rule walk only runs on a flow's first packet.

The cache is bounded with LRU eviction and supports idle expiry, so a
long experiment with flow churn stays at a fixed footprint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, List, Optional, Tuple, TypeVar

from ..errors import CapacityError

__all__ = ["ExactMatchCache", "PathCache"]

V = TypeVar("V")


class PathCache:
    """Memoised hierarchy-label → tree-path resolution.

    The scheduling function walks a packet's hierarchy class label
    root-to-leaf on every decision; resolving each class id through the
    tree's dict costs several lookups and a list build per packet. The
    number of *distinct* labels is just the number of leaf classes, so
    this cache turns the per-packet resolution into one dict hit.

    Hot path contract: readers access :attr:`entries` directly
    (``cache.entries.get(label)``) and call :meth:`resolve` only on a
    miss; the returned lists are shared and must not be mutated.
    """

    __slots__ = ("entries", "misses")

    def __init__(self) -> None:
        #: label tuple -> root-to-leaf list of ClassNode (shared).
        self.entries: dict = {}
        #: Slow-path resolutions performed (== distinct labels seen).
        self.misses = 0

    def resolve(self, tree, label: Tuple[str, ...]) -> List:
        """Slow path: resolve *label* through *tree* and memoise it."""
        path = [tree.node(classid) for classid in label]
        self.entries[label] = path
        self.misses += 1
        return path

    def clear(self) -> None:
        """Drop everything (tree reconfiguration)."""
        self.entries.clear()


class ExactMatchCache(Generic[V]):
    """A bounded LRU map with hit/miss statistics and idle expiry.

    Parameters
    ----------
    capacity: maximum entries (the EMC on the NFP is also finite).
    idle_timeout: entries untouched for this long are treated as
        misses and refreshed (0 disables expiry).
    """

    def __init__(self, capacity: int = 65536, idle_timeout: float = 0.0):
        if capacity <= 0:
            raise CapacityError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.idle_timeout = idle_timeout
        #: key -> [value, stored_at]. Entries are two-slot *lists*, not
        #: tuples: the hit-path refresh writes ``entry[1] = now`` in
        #: place instead of allocating a replacement pair per lookup —
        #: at 10⁶-entry churn the tuple realloc was the hottest
        #: allocation site in the megaflow profile.
        self._entries: "OrderedDict[Hashable, List]" = OrderedDict()
        #: Lookup statistics.
        self.hits = 0
        self.misses = 0
        #: Entries displaced by a *full* cache (capacity pressure).
        self.evictions = 0
        #: Entries reclaimed because they sat idle past the timeout —
        #: get()-time expiry, put()-time LRU-head reclaim, and
        #: :meth:`expire` sweeps all count here, never as evictions.
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, now: float = 0.0) -> Optional[V]:
        """The cached value, or ``None`` on miss/expired."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value = entry[0]
        if self.idle_timeout:
            if (now - entry[1]) > self.idle_timeout:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            entry[1] = now
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: V, now: float = 0.0) -> None:
        """Insert/refresh an entry, making room if the cache is full.

        Room is reclaimed from the LRU head: an idle-expired head
        counts as an expiration (the entry was dead either way — only
        :meth:`get` used to notice, so churn workloads pinned corpses
        at capacity and saw pure ``evictions``); a live head displaced
        by capacity pressure counts as an eviction.
        """
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            # Refresh in place — no realloc, no delete/reinsert.
            entry[0] = value
            entry[1] = now
            entries.move_to_end(key)
            return
        if len(entries) >= self.capacity:
            if self.idle_timeout:
                _, (_, stored_at) = next(iter(entries.items()))
                if (now - stored_at) > self.idle_timeout:
                    entries.popitem(last=False)
                    self.expirations += 1
                else:
                    entries.popitem(last=False)
                    self.evictions += 1
            else:
                entries.popitem(last=False)
                self.evictions += 1
        entries[key] = [value, now]

    def expire(self, now: float) -> int:
        """Sweep every idle-expired entry out; returns the count.

        Entries are LRU-ordered by last touch and the stored timestamp
        only grows toward the MRU end, so the sweep walks from the LRU
        head and stops at the first live entry — O(expired), not
        O(capacity).
        """
        if not self.idle_timeout:
            return 0
        entries = self._entries
        timeout = self.idle_timeout
        reclaimed = 0
        while entries:
            _, (_, stored_at) = next(iter(entries.items()))
            if (now - stored_at) <= timeout:
                break
            entries.popitem(last=False)
            reclaimed += 1
        self.expirations += reclaimed
        return reclaimed

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it existed. Policy changes call
        :meth:`clear` instead — labels derive from the filter table."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop everything (policy reconfiguration)."""
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
